"""``python -m repro`` -- alias for the ``repro`` command-line interface."""

import sys

from repro.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
