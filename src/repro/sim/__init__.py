"""Simulation engine: drive policies over traces and collect metrics.

The evaluation in the paper replays a trace of ~500k interleaved query and
update events against each policy and reports cumulative network traffic.
This package provides the event-driven engine that does the replay
(:mod:`repro.sim.engine`), the metric collectors that record cumulative and
per-mechanism traffic over the event sequence (:mod:`repro.sim.metrics`), a
results container with comparison helpers (:mod:`repro.sim.results`), a
multi-policy runner used by every experiment (:mod:`repro.sim.runner`), a
parallel sweep runner that fans experiment grids out over worker processes
(:mod:`repro.sim.sweep`), and a multi-cache engine that replays one trace
against a fleet of sites sharing a repository (:mod:`repro.sim.multicache`,
specified via :mod:`repro.topology`).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries
from repro.sim.multicache import MultiCacheEngine, run_topology
from repro.sim.results import ComparisonResult, RunResult
from repro.sim.runner import (
    PolicySpec,
    benefit_spec,
    compare_policies,
    default_policy_specs,
    nocache_spec,
    replica_spec,
    run_policy,
    soptimal_spec,
    vcover_spec,
)
from repro.sim.sweep import (
    InlineScenario,
    PointResult,
    SweepPoint,
    SweepResult,
    SweepRunner,
    derive_seed,
    load_artifacts,
    write_artifacts,
)

__all__ = [
    "SimulationEngine",
    "MultiCacheEngine",
    "run_topology",
    "CacheOccupancySeries",
    "TrafficTimeSeries",
    "ComparisonResult",
    "RunResult",
    "PolicySpec",
    "compare_policies",
    "default_policy_specs",
    "run_policy",
    "nocache_spec",
    "replica_spec",
    "benefit_spec",
    "vcover_spec",
    "soptimal_spec",
    "InlineScenario",
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "derive_seed",
    "load_artifacts",
    "write_artifacts",
]
