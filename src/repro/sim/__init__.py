"""Simulation engine: drive policies over traces and collect metrics.

The evaluation in the paper replays a trace of ~500k interleaved query and
update events against each policy and reports cumulative network traffic.
This package provides the event-driven engine that does the replay
(:mod:`repro.sim.engine`), the metric collectors that record cumulative and
per-mechanism traffic over the event sequence (:mod:`repro.sim.metrics`), a
results container with comparison helpers (:mod:`repro.sim.results`) and a
multi-policy runner used by every experiment (:mod:`repro.sim.runner`).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import TrafficTimeSeries
from repro.sim.results import ComparisonResult, RunResult
from repro.sim.runner import PolicySpec, compare_policies, run_policy

__all__ = [
    "SimulationEngine",
    "TrafficTimeSeries",
    "ComparisonResult",
    "RunResult",
    "PolicySpec",
    "compare_policies",
    "run_policy",
]
