"""The multi-cache simulation engine.

:class:`MultiCacheEngine` generalises :class:`repro.sim.engine.SimulationEngine`
from one cache on one link to a fleet of :class:`repro.topology.site.Site`\\ s
sharing a single repository:

1. every update event is ingested at the shared repository exactly once, then
   broadcast to every site's policy (any site may hold a resident copy),
2. every query event is routed to exactly one site by a
   :class:`repro.workload.partition.TracePartitioner` and handled by that
   site's policy,
3. per-site traffic, occupancy and a fleet-wide aggregate are sampled along
   the way on the same event grid as single-cache runs,
4. a :class:`repro.topology.results.TopologyResult` collects one
   :class:`repro.sim.results.RunResult` per site plus the aggregate.

The replay is deterministic: routing is a pure function of the partitioner,
sites are visited in site order, and each site's policy seeds its own RNG --
so the same spec, catalogue and trace always produce a byte-identical
:class:`TopologyResult`, in-process or in a sweep worker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.network.link import Mechanism, NetworkLink
from repro.perf import PHASE_METRICS, add_phase_time, phase_clock
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig
from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries
from repro.sim.results import RunResult
from repro.topology.results import TopologyResult
from repro.topology.site import Site, build_sites
from repro.topology.spec import TopologySpec
from repro.workload.partition import TracePartitioner
from repro.workload.trace import TraceStream


class _CombinedLink:
    """Read-only view summing several links (duck-types what sampling needs)."""

    def __init__(self, links: Sequence[NetworkLink]) -> None:
        self._links = list(links)

    @property
    def total_cost(self) -> float:
        return sum(link.total_cost for link in self._links)

    def total_by_mechanism(self) -> Dict[str, float]:
        totals = {mechanism: 0.0 for mechanism in Mechanism.ALL}
        for link in self._links:
            for mechanism, value in link.total_by_mechanism().items():
                totals[mechanism] += value
        return totals


class MultiCacheEngine:
    """Replays one trace against a fleet of sites sharing one repository."""

    def __init__(
        self,
        repository: Repository,
        sites: Sequence[Site],
        partitioner: TracePartitioner,
        config: Optional[EngineConfig] = None,
    ) -> None:
        if not sites:
            raise ValueError("a topology needs at least one site")
        if partitioner.site_count != len(sites):
            raise ValueError(
                f"partitioner splits {partitioner.site_count} ways "
                f"but the topology has {len(sites)} sites"
            )
        self._repository = repository
        self._sites = list(sites)
        self._partitioner = partitioner
        self._config = config or EngineConfig()

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @staticmethod
    def _sample_all(
        index: int,
        sites: Sequence[Site],
        aggregate_series: TrafficTimeSeries,
        site_series: Sequence[TrafficTimeSeries],
        site_occupancy: Sequence[Optional[CacheOccupancySeries]],
        aggregate_occupancy: Optional[CacheOccupancySeries],
    ) -> None:
        """Sample every traffic and occupancy series at ``index``."""
        aggregate_series.sample(index)
        used = capacity = 0.0
        resident = 0
        for position, site in enumerate(sites):
            site_series[position].sample(index)
            occupancy = site_occupancy[position]
            if occupancy is not None:
                store = site.policy.store
                occupancy.sample(index, store.used, store.capacity, len(store))
                used += store.used
                capacity += store.capacity
                resident += len(store)
        if aggregate_occupancy is not None:
            aggregate_occupancy.sample(index, used, capacity, resident)

    def run(self, trace: TraceStream, name: str = "topology") -> TopologyResult:
        """Replay ``trace`` against every site; returns the fleet result.

        ``trace`` may be any :class:`~repro.workload.trace.TraceStream`; the
        replay is one forward pass over ``iter_tagged()``, so generated
        sources are never materialised.
        """
        config = self._config
        sites = self._sites
        combined = _CombinedLink([site.link for site in sites])
        aggregate_series = TrafficTimeSeries(combined, sample_every=config.sample_every)
        site_series = [
            TrafficTimeSeries(site.link, sample_every=config.sample_every)
            for site in sites
        ]
        site_occupancy: List[Optional[CacheOccupancySeries]] = [
            CacheOccupancySeries(sample_every=config.sample_every)
            if hasattr(site.policy, "store")
            else None
            for site in sites
        ]
        all_stores = all(occ is not None for occ in site_occupancy)
        aggregate_occupancy = (
            CacheOccupancySeries(sample_every=config.sample_every) if all_stores else None
        )

        if config.allow_offline_preparation:
            for site in sites:
                site.policy.prepare(trace)

        site_warmup = [0.0] * len(sites)
        answered = [0] * len(sites)
        shipped = [0] * len(sites)
        total_events = len(trace)

        measure_from = config.measure_from
        sample_every = config.sample_every
        site_of_query = self._partitioner.site_of_query
        ingest_update = self._repository.ingest_update
        site_policies = [site.policy for site in sites]
        next_sample = sample_every
        index = 0
        updates_seen = 0
        for is_update, payload in trace.iter_tagged():
            if index == measure_from:
                for position, site in enumerate(sites):
                    site_warmup[position] = site.link.total_cost
            if is_update:
                updates_seen += 1
                ingest_update(payload)
                for policy in site_policies:
                    policy.on_update(payload)
            else:
                position = site_of_query(payload)
                outcome = site_policies[position].on_query(payload)
                if outcome.answered_at_cache:
                    answered[position] += 1
                else:
                    shipped[position] += 1
            index += 1

            # All series share the engine's grid, so the whole sampling block
            # is gated once here (the store reads are wasted work otherwise).
            # The end-of-run boundary is sampled in the epilogue below (after
            # finalize); sampling it here too used to record duplicate final
            # TrafficSamples whenever the trace length sat on the grid.
            if index == next_sample and index < total_events:
                next_sample += sample_every
                sample_start = phase_clock()
                self._sample_all(
                    index,
                    sites,
                    aggregate_series,
                    site_series,
                    site_occupancy,
                    aggregate_occupancy,
                )
                add_phase_time(PHASE_METRICS, phase_clock() - sample_start)

        for site in sites:
            site.policy.finalize()
        # End-of-run sample for every series, occupancy included -- the
        # occupancy series used to stop at the last grid point (or stay empty
        # for traces shorter than sample_every), asymmetric with the traffic
        # series.
        sample_start = phase_clock()
        self._sample_all(
            total_events,
            sites,
            aggregate_series,
            site_series,
            site_occupancy,
            aggregate_occupancy,
        )
        add_phase_time(PHASE_METRICS, phase_clock() - sample_start)
        if config.measure_from >= total_events:
            for position, site in enumerate(sites):
                site_warmup[position] = site.link.total_cost

        measure_warmup = config.measure_from > 0
        site_runs: List[RunResult] = []
        for position, site in enumerate(sites):
            stats: Dict[str, float] = {}
            if hasattr(site.policy, "stats"):
                stats = site.policy.stats()
            site_runs.append(
                RunResult(
                    policy_name=site.policy.name,
                    total_traffic=site.link.total_cost,
                    traffic_by_mechanism=site.link.total_by_mechanism(),
                    time_series=site_series[position],
                    queries_answered_at_cache=answered[position],
                    queries_shipped=shipped[position],
                    events_processed=updates_seen + answered[position] + shipped[position],
                    policy_stats=stats,
                    warmup_traffic=site_warmup[position] if measure_warmup else 0.0,
                    occupancy=site_occupancy[position],
                )
            )

        aggregate = RunResult(
            policy_name=name,
            total_traffic=combined.total_cost,
            traffic_by_mechanism=combined.total_by_mechanism(),
            time_series=aggregate_series,
            queries_answered_at_cache=sum(answered),
            queries_shipped=sum(shipped),
            events_processed=total_events,
            policy_stats=_fold_site_stats(site_runs),
            warmup_traffic=sum(site_warmup) if measure_warmup else 0.0,
            occupancy=aggregate_occupancy,
        )
        return TopologyResult(
            name=name,
            site_runs=site_runs,
            aggregate=aggregate,
            strategy=self._partitioner.strategy,
            partition=self._partitioner.describe(),
        )


def _fold_site_stats(site_runs: Sequence[RunResult]) -> Dict[str, float]:
    """Per-site headline figures as flat floats (survive sweep artifacts)."""
    stats: Dict[str, float] = {"site_count": float(len(site_runs))}
    for site, run in enumerate(site_runs):
        stats[f"site{site}_total_traffic"] = run.total_traffic
        stats[f"site{site}_measured_traffic"] = run.measured_traffic
        stats[f"site{site}_queries_answered_at_cache"] = float(
            run.queries_answered_at_cache
        )
        stats[f"site{site}_queries_shipped"] = float(run.queries_shipped)
        for mechanism, value in run.traffic_by_mechanism.items():
            stats[f"site{site}_traffic_{mechanism}"] = value
    return stats


def run_topology(
    spec: TopologySpec,
    catalog: ObjectCatalog,
    trace: TraceStream,
    engine_config: Optional[EngineConfig] = None,
) -> TopologyResult:
    """Run one topology over one trace with a fresh shared repository.

    The multi-site analogue of :func:`repro.sim.runner.run_policy`: builds
    the repository, the trace partitioner (region slices or affinity counts
    derived from the trace itself), and every site, then replays the trace.
    The shared repository skips server-side update history (no policy reads
    it), so fleet replays of generated streams stay constant-memory.
    """
    repository = Repository(catalog, keep_update_log=False)
    partitioner = TracePartitioner.for_trace(
        catalog.object_ids, spec.site_count, trace, strategy=spec.strategy
    )
    sites = build_sites(spec, repository)
    engine = MultiCacheEngine(repository, sites, partitioner, engine_config)
    return engine.run(trace, name=spec.name)
