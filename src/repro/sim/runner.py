"""Multi-policy experiment runner.

Every experiment in the paper compares several policies over the same trace.
:func:`compare_policies` does exactly that: for each policy it builds a fresh
repository (replaying updates mutates server-side object sizes, so policies
must not share one), a fresh network link, runs the simulation engine, and
collects the results into a :class:`repro.sim.results.ComparisonResult`.

Policies are described by :class:`PolicySpec` -- a name plus a factory -- so
experiments can parameterise policy construction (cache size, VCover/Benefit
configuration) without the runner knowing about any specific policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.core.policy import CachePolicy
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy, SOptimalPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.results import ComparisonResult, RunResult
from repro.workload.trace import Trace

#: Signature of a policy factory: (repository, capacity, link) -> policy.
PolicyFactory = Callable[[Repository, float, NetworkLink], CachePolicy]


@dataclass(frozen=True)
class PolicySpec:
    """A named policy constructor used by the runner."""

    name: str
    factory: PolicyFactory


def default_policy_specs(
    vcover_config: Optional[VCoverConfig] = None,
    benefit_config: Optional[BenefitConfig] = None,
    include: Sequence[str] = ("nocache", "replica", "benefit", "vcover", "soptimal"),
) -> List[PolicySpec]:
    """The paper's two algorithms plus three yardsticks.

    Parameters
    ----------
    vcover_config / benefit_config:
        Optional configuration overrides.
    include:
        Which policies to build specs for (in the returned order).
    """
    vcover_config = vcover_config or VCoverConfig()
    benefit_config = benefit_config or BenefitConfig()
    available: Dict[str, PolicySpec] = {
        "nocache": PolicySpec(
            "nocache", lambda repo, cap, link: NoCachePolicy(repo, cap, link)
        ),
        "replica": PolicySpec(
            "replica", lambda repo, cap, link: ReplicaPolicy(repo, cap, link)
        ),
        "benefit": PolicySpec(
            "benefit",
            lambda repo, cap, link: BenefitPolicy(repo, cap, link, benefit_config),
        ),
        "vcover": PolicySpec(
            "vcover",
            lambda repo, cap, link: VCoverPolicy(repo, cap, link, vcover_config),
        ),
        "soptimal": PolicySpec(
            "soptimal", lambda repo, cap, link: SOptimalPolicy(repo, cap, link)
        ),
    }
    unknown = [name for name in include if name not in available]
    if unknown:
        raise ValueError(f"unknown policy names {unknown}; known: {sorted(available)}")
    return [available[name] for name in include]


def run_policy(
    spec: PolicySpec,
    catalog: ObjectCatalog,
    trace: Trace,
    cache_capacity: float,
    engine_config: Optional[EngineConfig] = None,
) -> RunResult:
    """Run one policy over one trace with a fresh repository and link."""
    repository = Repository(catalog)
    link = NetworkLink()
    policy = spec.factory(repository, cache_capacity, link)
    engine = SimulationEngine(repository, engine_config)
    return engine.run(policy, trace, link)


def compare_policies(
    catalog: ObjectCatalog,
    trace: Trace,
    cache_fraction: float = 0.3,
    specs: Optional[Sequence[PolicySpec]] = None,
    engine_config: Optional[EngineConfig] = None,
    cache_capacity: Optional[float] = None,
) -> ComparisonResult:
    """Run several policies over the same trace and collect the results.

    Parameters
    ----------
    catalog:
        Object catalogue shared by all runs (each run gets its own
        repository built from it).
    trace:
        The event sequence.
    cache_fraction:
        Cache capacity as a fraction of the catalogue's total size (the
        paper's default is 0.3); ignored when ``cache_capacity`` is given.
    specs:
        Policies to run; defaults to the full paper set.
    engine_config:
        Engine configuration (sampling, measurement window).
    cache_capacity:
        Absolute cache capacity in MB, overriding ``cache_fraction``.
    """
    specs = list(specs) if specs is not None else default_policy_specs()
    if cache_capacity is None:
        cache_capacity = catalog.total_size * cache_fraction
    runs: Dict[str, RunResult] = {}
    for spec in specs:
        runs[spec.name] = run_policy(
            spec, catalog, trace, cache_capacity, engine_config=engine_config
        )
    return ComparisonResult(runs=runs, trace_description=trace.describe())
