"""Multi-policy experiment runner.

Every experiment in the paper compares several policies over the same trace.
:func:`compare_policies` does exactly that: for each policy it builds a fresh
repository (replaying updates mutates server-side object sizes, so policies
must not share one), a fresh network link, runs the simulation engine, and
collects the results into a :class:`repro.sim.results.ComparisonResult`.
With ``jobs > 1`` the per-policy runs are fanned out over worker processes
via :class:`repro.sim.sweep.SweepRunner`; results are identical either way.

Policies are described by :class:`PolicySpec` -- a name plus a factory -- so
experiments can parameterise policy construction (cache size, VCover/Benefit
configuration) without the runner knowing about any specific policy.  The
factories are built from module-level functions via :func:`functools.partial`
(never lambdas or closures) so that every spec can be pickled to a sweep
worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.adaptive import AdaptiveConfig, AdaptivePolicy
from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.core.policy import CachePolicy
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy, SOptimalPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.results import ComparisonResult, RunResult
from repro.workload.trace import TraceStream

#: Every policy name the runner can build, in canonical report order.  The
#: docs-drift lint rule (REG002) reads this tuple to keep docs/policies.md
#: in sync with the buildable set.
POLICY_NAMES = ("nocache", "replica", "benefit", "vcover", "soptimal", "adaptive")

#: Signature of a policy factory: (repository, capacity, link) -> policy.
PolicyFactory = Callable[[Repository, float, NetworkLink], CachePolicy]


@dataclass(frozen=True)
class PolicySpec:
    """A named policy constructor used by the runner.

    The factory must be picklable (a module-level function, or a
    :func:`functools.partial` over one) so the spec can cross a process
    boundary when a sweep runs with ``jobs > 1``.
    """

    name: str
    factory: PolicyFactory


# ----------------------------------------------------------------------
# Module-level factories (picklable; see PolicySpec docstring)
# ----------------------------------------------------------------------
def _build_nocache(
    repository: Repository, capacity: float, link: NetworkLink
) -> NoCachePolicy:
    return NoCachePolicy(repository, capacity, link)


def _build_replica(
    repository: Repository, capacity: float, link: NetworkLink
) -> ReplicaPolicy:
    return ReplicaPolicy(repository, capacity, link)


def _build_soptimal(
    repository: Repository, capacity: float, link: NetworkLink
) -> SOptimalPolicy:
    return SOptimalPolicy(repository, capacity, link)


def _build_benefit(
    repository: Repository,
    capacity: float,
    link: NetworkLink,
    config: Optional[BenefitConfig] = None,
) -> BenefitPolicy:
    return BenefitPolicy(repository, capacity, link, config or BenefitConfig())


def _build_vcover(
    repository: Repository,
    capacity: float,
    link: NetworkLink,
    config: Optional[VCoverConfig] = None,
) -> VCoverPolicy:
    return VCoverPolicy(repository, capacity, link, config or VCoverConfig())


def _build_adaptive(
    repository: Repository,
    capacity: float,
    link: NetworkLink,
    config: Optional[AdaptiveConfig] = None,
) -> AdaptivePolicy:
    return AdaptivePolicy(repository, capacity, link, config or AdaptiveConfig())


def nocache_spec(name: str = "nocache") -> PolicySpec:
    """Spec for the NoCache yardstick."""
    return PolicySpec(name, _build_nocache)


def replica_spec(name: str = "replica") -> PolicySpec:
    """Spec for the Replica yardstick."""
    return PolicySpec(name, _build_replica)


def soptimal_spec(name: str = "soptimal") -> PolicySpec:
    """Spec for the SOptimal hindsight yardstick."""
    return PolicySpec(name, _build_soptimal)


def benefit_spec(
    config: Optional[BenefitConfig] = None, name: str = "benefit"
) -> PolicySpec:
    """Spec for the Benefit baseline, optionally with a custom config."""
    return PolicySpec(name, partial(_build_benefit, config=config))


def vcover_spec(
    config: Optional[VCoverConfig] = None, name: str = "vcover"
) -> PolicySpec:
    """Spec for the VCover algorithm, optionally with a custom config."""
    return PolicySpec(name, partial(_build_vcover, config=config))


def adaptive_spec(
    config: Optional[AdaptiveConfig] = None, name: str = "adaptive"
) -> PolicySpec:
    """Spec for the adaptive meta-policy, optionally with a custom config."""
    return PolicySpec(name, partial(_build_adaptive, config=config))


def default_policy_specs(
    vcover_config: Optional[VCoverConfig] = None,
    benefit_config: Optional[BenefitConfig] = None,
    include: Sequence[str] = ("nocache", "replica", "benefit", "vcover", "soptimal"),
) -> List[PolicySpec]:
    """The paper's two algorithms plus three yardsticks.

    The adaptive meta-policy is buildable by name but not part of the
    default ``include`` set (the paper's comparisons are between static
    policies); its shadowed Benefit/VCover arms inherit the same
    configuration overrides as the standalone policies.

    Parameters
    ----------
    vcover_config / benefit_config:
        Optional configuration overrides.
    include:
        Which policies to build specs for (in the returned order).
    """
    adaptive_config = AdaptiveConfig(
        benefit_window=(benefit_config or BenefitConfig()).window_size,
        vcover=vcover_config,
    )
    available: Dict[str, PolicySpec] = {
        "nocache": nocache_spec(),
        "replica": replica_spec(),
        "benefit": benefit_spec(benefit_config),
        "vcover": vcover_spec(vcover_config),
        "soptimal": soptimal_spec(),
        "adaptive": adaptive_spec(adaptive_config),
    }
    unknown = [name for name in include if name not in available]
    if unknown:
        raise ValueError(f"unknown policy names {unknown}; known: {sorted(available)}")
    return [available[name] for name in include]


def run_policy(
    spec: PolicySpec,
    catalog: ObjectCatalog,
    trace: TraceStream,
    cache_capacity: float,
    engine_config: Optional[EngineConfig] = None,
) -> RunResult:
    """Run one policy over one trace with a fresh repository and link.

    ``trace`` may be any :class:`~repro.workload.trace.TraceStream`.  The
    repository skips server-side update history (no policy reads it), so the
    run's memory footprint is bounded by the cache state, not the trace
    length.
    """
    repository = Repository(catalog, keep_update_log=False)
    link = NetworkLink()
    policy = spec.factory(repository, cache_capacity, link)
    engine = SimulationEngine(repository, engine_config)
    return engine.run(policy, trace, link)


def compare_policies(
    catalog: Optional[ObjectCatalog],
    trace: Optional[TraceStream],
    cache_fraction: Optional[float] = None,
    specs: Optional[Sequence[PolicySpec]] = None,
    engine_config: Optional[EngineConfig] = None,
    cache_capacity: Optional[float] = None,
    jobs: int = 1,
    source: Optional[object] = None,
    streaming: bool = False,
) -> ComparisonResult:
    """Run several policies over the same trace and collect the results.

    Parameters
    ----------
    catalog:
        Object catalogue shared by all runs (each run gets its own
        repository built from it).  May be ``None`` when ``source`` is
        given (workers realise the catalogue themselves).
    trace:
        The event sequence.  May be ``None`` when ``source`` is given.
    cache_fraction:
        Cache capacity as a fraction of the catalogue's total size; defaults
        to :data:`repro.sim.sweep.DEFAULT_CACHE_FRACTION` (the paper's 0.3).
        Ignored when ``cache_capacity`` is given.
    specs:
        Policies to run; defaults to the full paper set.
    engine_config:
        Engine configuration (sampling, measurement window).
    cache_capacity:
        Absolute cache capacity in MB, overriding ``cache_fraction``.
    jobs:
        Worker processes to fan the per-policy runs out over (1 = serial).
        Each run is isolated either way, so the results are identical.
    source:
        Optional :class:`~repro.sim.sweep.ScenarioSource` handed to the
        workers instead of the prebuilt ``(catalog, trace)`` pair -- the
        recipe crosses the process boundary and each worker realises it
        (memoised per process).
    streaming:
        When ``True`` the per-policy runs replay the scenario's
        lazily-generated :class:`~repro.workload.trace.TraceStream`
        (realised via ``source.realise_stream()``) instead of a
        materialised trace.  Results are byte-identical either way.
    """
    # Imported here: sweep builds on this module, so the module-level import
    # goes sweep -> runner and only this function takes the reverse edge.
    from repro.sim.sweep import DEFAULT_SCENARIO, InlineScenario, SweepPoint, SweepRunner

    if source is None:
        if catalog is None or trace is None:
            raise ValueError("compare_policies needs either (catalog, trace) or a source")
        source = InlineScenario(catalog, trace)
    specs = list(specs) if specs is not None else default_policy_specs()
    points = [
        SweepPoint(
            key=spec.name,
            spec=spec,
            scenario=DEFAULT_SCENARIO,
            cache_fraction=cache_fraction,
            cache_capacity=cache_capacity,
            engine=engine_config or EngineConfig(),
            streaming=streaming,
        )
        for spec in specs
    ]
    sweep = SweepRunner(jobs=jobs).run(points, scenarios={DEFAULT_SCENARIO: source})
    runs: Dict[str, RunResult] = {
        result.point.spec.name: result.run for result in sweep.points
    }
    if trace is not None:
        description = trace.describe()
    else:
        description = sweep.points[0].trace_description if sweep.points else {}
    return ComparisonResult(runs=runs, trace_description=description)
