"""Result containers for simulation runs and policy comparisons.

:class:`RunResult` captures everything a single policy run produced: final
traffic, per-mechanism breakdown, the cumulative time series, query outcome
counts, and policy statistics.  :class:`ComparisonResult` collects runs of
several policies over the same trace and offers the ratios the paper quotes
(VCover vs NoCache, VCover vs Benefit, distance from SOptimal) plus simple
text tables for reports and benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries


@dataclass
class RunResult:
    """Outcome of replaying one trace against one policy."""

    policy_name: str
    total_traffic: float
    traffic_by_mechanism: Dict[str, float]
    time_series: TrafficTimeSeries
    queries_answered_at_cache: int
    queries_shipped: int
    events_processed: int
    policy_stats: Dict[str, float] = field(default_factory=dict)
    #: Traffic accumulated before the measurement window opened (warm-up).
    warmup_traffic: float = 0.0
    #: Cache occupancy samples over the run (None for store-less policies).
    occupancy: Optional[CacheOccupancySeries] = None
    #: Online-vs-offline regret summary (None unless the policy tracks it;
    #: see :class:`repro.core.regret.RegretTracker`).
    regret: Optional[Dict[str, float]] = None

    @property
    def measured_traffic(self) -> float:
        """Traffic inside the measurement window (total minus warm-up)."""
        return self.total_traffic - self.warmup_traffic

    @property
    def cache_answer_fraction(self) -> float:
        """Fraction of queries answered at the cache."""
        total = self.queries_answered_at_cache + self.queries_shipped
        if total == 0:
            return 0.0
        return self.queries_answered_at_cache / total

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and benchmark extra_info."""
        return {
            "total_traffic": self.total_traffic,
            "measured_traffic": self.measured_traffic,
            "cache_answer_fraction": self.cache_answer_fraction,
            **{f"traffic_{key}": value for key, value in self.traffic_by_mechanism.items()},
        }

    def as_payload(self) -> Dict[str, object]:
        """JSON-serialisable representation (used by sweep artifacts)."""
        payload: Dict[str, object] = {
            "policy_name": self.policy_name,
            "total_traffic": self.total_traffic,
            "warmup_traffic": self.warmup_traffic,
            "measured_traffic": self.measured_traffic,
            "traffic_by_mechanism": dict(self.traffic_by_mechanism),
            "queries_answered_at_cache": self.queries_answered_at_cache,
            "queries_shipped": self.queries_shipped,
            "cache_answer_fraction": self.cache_answer_fraction,
            "events_processed": self.events_processed,
            "time_series": [list(row) for row in self.time_series.as_rows()],
            "policy_stats": dict(self.policy_stats),
        }
        if self.occupancy is not None:
            payload["occupancy"] = [
                [index, fraction, resident]
                for index, fraction, resident in zip(
                    self.occupancy.event_indices,
                    self.occupancy.occupancy,
                    self.occupancy.resident_objects,
                    strict=True,
                )
            ]
        if self.regret is not None:
            payload["regret"] = dict(self.regret)
        return payload


@dataclass
class ComparisonResult:
    """Runs of several policies over the same trace."""

    runs: Dict[str, RunResult]
    trace_description: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, policy_name: str) -> RunResult:
        return self.runs[policy_name]

    def __contains__(self, policy_name: str) -> bool:
        return policy_name in self.runs

    def policy_names(self) -> List[str]:
        """Policies included in the comparison."""
        return list(self.runs)

    def traffic_of(self, policy_name: str, measured_only: bool = True) -> float:
        """Traffic of one policy (measurement window by default)."""
        run = self.runs[policy_name]
        return run.measured_traffic if measured_only else run.total_traffic

    def ratio(self, numerator: str, denominator: str, measured_only: bool = True) -> float:
        """Traffic ratio between two policies (e.g. nocache / vcover)."""
        denom = self.traffic_of(denominator, measured_only)
        if denom == 0:
            return float("inf")
        return self.traffic_of(numerator, measured_only) / denom

    def ranking(self, measured_only: bool = True) -> List[Tuple[str, float]]:
        """Policies sorted by traffic, cheapest first."""
        return sorted(
            ((name, self.traffic_of(name, measured_only)) for name in self.runs),
            key=lambda item: item[1],
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def as_table(self, measured_only: bool = True) -> str:
        """A fixed-width text table of per-policy traffic (for bench output)."""
        lines = [f"{'policy':<12} {'traffic (MB)':>14} {'cache answers':>14}"]
        for name, traffic in self.ranking(measured_only):
            run = self.runs[name]
            lines.append(
                f"{name:<12} {traffic:>14.1f} {run.cache_answer_fraction:>14.2%}"
            )
        return "\n".join(lines)

    def summary(self, measured_only: bool = True) -> Dict[str, float]:
        """Flat mapping of policy name to traffic (plus headline ratios)."""
        data = {
            f"traffic_{name}": self.traffic_of(name, measured_only) for name in self.runs
        }
        if "nocache" in self.runs and "vcover" in self.runs:
            data["nocache_over_vcover"] = self.ratio("nocache", "vcover", measured_only)
        if "benefit" in self.runs and "vcover" in self.runs:
            data["benefit_over_vcover"] = self.ratio("benefit", "vcover", measured_only)
        if "replica" in self.runs and "vcover" in self.runs:
            data["replica_over_vcover"] = self.ratio("replica", "vcover", measured_only)
        if "soptimal" in self.runs and "vcover" in self.runs:
            data["vcover_over_soptimal"] = self.ratio("vcover", "soptimal", measured_only)
        return data
