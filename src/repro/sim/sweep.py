"""Parallel sweep runner for multi-policy experiments.

Every experiment in the paper's evaluation -- the Figure 7/8 comparisons, the
ablations, the cache-size sweep -- replays the *same* trace against several
policies, or the same policy against several scenarios.  Each such
``(policy, cache size, workload, seed)`` combination is a *grid point*, and
the points are embarrassingly parallel: every run builds its own fresh
:class:`~repro.repository.server.Repository` and
:class:`~repro.network.link.NetworkLink`, so no state is shared between them.

This module exploits that.  A :class:`SweepRunner` fans a list of
:class:`SweepPoint`\\ s out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs=1`` degrades to a plain serial loop with identical results), collects
the per-point :class:`~repro.sim.results.RunResult`\\ s in grid order, and can
write one JSON artifact per point plus a manifest for offline analysis.

Scenarios are handed to workers as *sources* rather than built traces.  A
source is anything implementing the :class:`ScenarioSource` contract --
``realise() -> (catalog, trace)`` plus ``cache_key()``:

* :class:`InlineScenario` wraps an already-built catalogue + trace (used when
  the caller wants several policies over one trace it already has);
* declarative recipes -- e.g. :class:`repro.experiments.spec.ScenarioSpec` --
  are rebuilt inside the worker from their (cheap, picklable) knobs, memoised
  per process via ``cache_key()`` so a worker builds each distinct scenario
  at most once.

Determinism: a point's outcome depends only on the point itself (its spec,
scenario source and cache size), never on scheduling, so ``jobs=4`` produces
byte-identical results to ``jobs=1``.  :func:`derive_seed` provides stable,
``PYTHONHASHSEED``-independent per-point seeds for grids that sweep seeds.
"""

from __future__ import annotations

import abc
import json
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.repository.objects import ObjectCatalog
from repro.sim.engine import EngineConfig
from repro.sim.multicache import run_topology
from repro.sim.results import ComparisonResult, RunResult
from repro.sim.runner import PolicySpec, run_policy
from repro.topology.spec import TopologySpec
from repro.workload.trace import Trace, TraceStream

#: Name of the scenario used when a sweep has only one.
DEFAULT_SCENARIO = "default"

#: Cache size used when a point sets neither fraction nor capacity (the
#: paper's default: 30 % of the server).
DEFAULT_CACHE_FRACTION = 0.3

#: Manifest file written next to the per-point artifacts.
MANIFEST_NAME = "manifest.json"


def derive_seed(base: int, *components: object) -> int:
    """A stable per-point seed derived from a base seed and grid coordinates.

    Uses CRC-32 over the stringified components, so the result is identical
    across processes and interpreter runs (``hash()`` is randomised by
    ``PYTHONHASHSEED`` and must not be used for this).
    """
    text = ":".join(str(part) for part in (base, *components))
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


class ScenarioSource(abc.ABC):
    """Contract every sweep scenario source satisfies.

    A source must be picklable so it can cross the process boundary with the
    worker initialiser.  Workers call :meth:`realise` to obtain the catalogue
    and trace; :meth:`cache_key` lets a worker memoise the build so a source
    shared by many grid points is constructed at most once per process.
    """

    @abc.abstractmethod
    def realise(self) -> Tuple[ObjectCatalog, Trace]:
        """Build (or return) the scenario's catalogue and trace."""

    def realise_stream(self) -> Tuple[ObjectCatalog, TraceStream]:
        """The scenario as a (catalogue, lazy event source) pair.

        Sources that can generate events incrementally override this to
        return a constant-memory :class:`~repro.workload.trace.TraceStream`;
        the default falls back to the materialised :meth:`realise` (a
        :class:`Trace` satisfies the stream contract).
        """
        return self.realise()

    def cache_key(self) -> Optional[object]:
        """Hashable identity of the build recipe (``None`` = no memoisation)."""
        return None


@dataclass(frozen=True)
class InlineScenario(ScenarioSource):
    """A sweep scenario handed over as an already-built catalogue + trace.

    ``trace`` may also be any :class:`~repro.workload.trace.TraceStream`
    (e.g. a scenario model stream) when the caller wants streaming points
    without a declarative recipe.
    """

    catalog: ObjectCatalog
    trace: TraceStream

    def realise(self) -> Tuple[ObjectCatalog, Trace]:
        """Return the prebuilt catalogue and trace."""
        return self.catalog, self.trace

    def cache_key(self) -> None:
        """No memoisation key: the scenario is already built."""
        return None


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a policy over a scenario at a cache size.

    Parameters
    ----------
    key:
        Unique identifier within the sweep; also the artifact file stem.
    spec:
        The policy to run.  Must be picklable (see
        :func:`repro.sim.runner.default_policy_specs`).  For topology points
        this is the (uniform) site policy, so comparison slices keyed by
        policy name keep working.
    topology:
        Optional :class:`repro.topology.spec.TopologySpec`.  When set, the
        point runs a multi-cache replay via
        :func:`repro.sim.multicache.run_topology` instead of a single-cache
        run; the recorded result is the fleet aggregate, with per-site
        traffic folded into ``policy_stats`` (per-site cache sizes come from
        the topology spec, so ``cache_fraction``/``cache_capacity`` are
        ignored).
    scenario:
        Name of the scenario source this point runs on (a key into the
        ``scenarios`` mapping given to :meth:`SweepRunner.run`).
    cache_fraction / cache_capacity:
        Cache size, either as a fraction of the catalogue's total size or as
        an absolute capacity in MB (the absolute value wins if both are set).
    engine:
        Engine configuration (sampling grid, measurement window).
    seed:
        Per-point seed recorded in results and artifacts.  Grids that sweep
        seeds encode the seed in the scenario source; this field exists so
        the provenance survives into the artifact.
    tags:
        Grid coordinates as ``((name, value), ...)`` pairs, e.g.
        ``(("fraction", 0.3),)``; used to regroup results after the sweep.
    streaming:
        When ``True`` the worker realises the scenario through
        :meth:`ScenarioSource.realise_stream` and replays the lazy source
        directly, never materialising the event list.  Results are
        byte-identical to the materialised replay (the equivalence tests pin
        this); only the memory profile differs.
    """

    key: str
    spec: PolicySpec
    scenario: str = DEFAULT_SCENARIO
    cache_fraction: Optional[float] = None
    cache_capacity: Optional[float] = None
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 0
    tags: Tuple[Tuple[str, object], ...] = ()
    topology: Optional[TopologySpec] = None
    streaming: bool = False

    def tag(self, name: str, default: object = None) -> object:
        """The value of one grid coordinate (or ``default``)."""
        for tag_name, value in self.tags:
            if tag_name == name:
                return value
        return default

    def metadata(self) -> Dict[str, object]:
        """Flat point description used in artifacts and reports."""
        data: Dict[str, object] = {
            "key": self.key,
            "policy": self.spec.name,
            "scenario": self.scenario,
            "cache_fraction": self.cache_fraction,
            "cache_capacity": self.cache_capacity,
            "seed": self.seed,
            "tags": dict(self.tags),
        }
        if self.streaming:
            data["streaming"] = True
        if self.topology is not None:
            data["topology"] = self.topology.metadata()
        return data


@dataclass
class PointResult:
    """One grid point together with its completed run."""

    point: SweepPoint
    run: RunResult
    #: Statistics of the trace the point ran on (provenance).
    trace_description: Dict[str, float] = field(default_factory=dict)

    def payload(self) -> Dict[str, object]:
        """JSON-serialisable artifact content for this point."""
        return {
            **self.point.metadata(),
            "trace": dict(self.trace_description),
            "result": self.run.as_payload(),
        }


@dataclass
class SweepResult:
    """All grid points of one sweep, in grid order."""

    points: List[PointResult]
    #: Worker count the sweep ran with (1 = serial).
    jobs: int = 1
    #: Directory the per-point artifacts were written to (None = not written).
    artifact_dir: Optional[Path] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, key: str) -> PointResult:
        for result in self.points:
            if result.point.key == key:
                return result
        raise KeyError(key)

    def select(self, **tags: object) -> List[PointResult]:
        """Points whose tags match every given ``name=value`` pair."""
        return [
            result
            for result in self.points
            if all(result.point.tag(name) == value for name, value in tags.items())
        ]

    def comparison(
        self,
        trace_description: Optional[Dict[str, float]] = None,
        **tags: object,
    ) -> ComparisonResult:
        """A :class:`ComparisonResult` over the points matching ``tags``.

        Runs are keyed by policy name, so the selected points must contain
        each policy at most once (the usual one-scenario comparison slice).
        The trace description defaults to the one recorded with the selected
        points (they share a scenario in a valid slice).
        """
        selected = self.select(**tags)
        runs: Dict[str, RunResult] = {}
        for result in selected:
            name = result.point.spec.name
            if name in runs:
                raise ValueError(
                    f"tags {tags!r} select policy {name!r} more than once; "
                    "narrow the selection to one scenario slice"
                )
            runs[name] = result.run
        if trace_description is None:
            trace_description = selected[0].trace_description if selected else {}
        return ComparisonResult(runs=runs, trace_description=trace_description)

    def format_summary(self) -> str:
        """Fixed-width per-point summary table of the whole sweep."""
        lines = [
            f"sweep: {len(self.points)} points, jobs={self.jobs}",
            f"{'key':<28} {'policy':<12} {'traffic (MB)':>14} {'cache answers':>14}",
        ]
        for result in self.points:
            run = result.run
            lines.append(
                f"{result.point.key:<28} {run.policy_name:<12} "
                f"{run.measured_traffic:>14.1f} {run.cache_answer_fraction:>14.2%}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
#: Scenario sources for the sweep currently executing in this process.
_WORKER_SCENARIOS: Dict[str, object] = {}
#: Scenarios realised in this process, memoised by their cache key.
_REALISED: Dict[object, Tuple[ObjectCatalog, Trace]] = {}
#: Trace descriptions memoised per build recipe (streaming sources would
#: otherwise regenerate the whole event stream once per grid point just to
#: recompute the same five summary numbers).
_DESCRIBED: Dict[object, Dict[str, float]] = {}


def _init_worker(scenarios: Mapping[str, object]) -> None:
    """Install the sweep's scenario table in a freshly started worker."""
    _WORKER_SCENARIOS.clear()
    _WORKER_SCENARIOS.update(scenarios)
    _REALISED.clear()
    _DESCRIBED.clear()


def _realise(source: object, streaming: bool = False) -> Tuple[ObjectCatalog, TraceStream]:
    """Build (or fetch the memoised) catalogue + event source for one source.

    ``streaming=True`` realises through ``realise_stream()`` when the source
    provides it; streaming and materialised realisations are memoised under
    distinct keys (a stream is cheap state, a trace is the built events).
    """
    use_stream = streaming and hasattr(source, "realise_stream")
    build = source.realise_stream if use_stream else source.realise
    cache_key = source.cache_key() if hasattr(source, "cache_key") else None
    if cache_key is None:
        return build()
    cache_key = ("stream", cache_key) if use_stream else ("trace", cache_key)
    if cache_key not in _REALISED:
        _REALISED[cache_key] = build()
    return _REALISED[cache_key]


def _describe(source: object, trace: TraceStream) -> Dict[str, float]:
    """The trace's summary statistics, memoised per build recipe.

    Streaming and materialised realisations of one recipe describe
    identically (a pinned equivalence), so they share one memo entry; the
    description pass over a generated stream then runs once per worker
    instead of once per grid point.
    """
    cache_key = source.cache_key() if hasattr(source, "cache_key") else None
    if cache_key is None:
        return trace.describe()
    if cache_key not in _DESCRIBED:
        _DESCRIBED[cache_key] = trace.describe()
    return _DESCRIBED[cache_key]


def _run_point(
    index: int, point: SweepPoint
) -> Tuple[int, RunResult, Dict[str, float]]:
    """Execute one grid point (runs inside a worker process)."""
    source = _WORKER_SCENARIOS[point.scenario]
    catalog, trace = _realise(source, streaming=point.streaming)
    if point.topology is not None:
        topology_result = run_topology(
            point.topology, catalog, trace, engine_config=point.engine
        )
        return index, topology_result.aggregate, _describe(source, trace)
    capacity = point.cache_capacity
    if capacity is None:
        fraction = (
            DEFAULT_CACHE_FRACTION if point.cache_fraction is None else point.cache_fraction
        )
        capacity = catalog.total_size * fraction
    run = run_policy(point.spec, catalog, trace, capacity, engine_config=point.engine)
    return index, run, _describe(source, trace)


#: Progress callback signature: (points_done, points_total, finished point).
ProgressCallback = Callable[[int, int, PointResult], None]


class SweepRunner:
    """Fan grid points out over worker processes and collect the results.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs the points serially
        in-process; results are identical either way.
    output_dir:
        When given, one ``<point key>.json`` artifact is written per point,
        plus a ``manifest.json`` describing the sweep.
    progress:
        Optional callback invoked after every completed point with
        ``(done, total, point_result)``.  With ``jobs > 1`` it fires in
        completion order; the returned result list is always in grid order.
    """

    def __init__(
        self,
        jobs: int = 1,
        output_dir: Optional[Union[str, Path]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._jobs = jobs
        self._output_dir = Path(output_dir) if output_dir is not None else None
        self._progress = progress

    @property
    def jobs(self) -> int:
        """Configured worker count."""
        return self._jobs

    def run(
        self,
        points: Sequence[SweepPoint],
        scenarios: Mapping[str, object],
    ) -> SweepResult:
        """Execute every grid point and return the results in grid order.

        Parameters
        ----------
        points:
            The grid.  Keys must be unique; every ``point.scenario`` must
            name an entry in ``scenarios``.
        scenarios:
            Scenario sources by name (:class:`InlineScenario` or any object
            with ``realise()``/``cache_key()``).
        """
        points = list(points)
        self._validate(points, scenarios)
        completed: List[Optional[PointResult]] = [None] * len(points)
        done = 0

        def record(index: int, run: RunResult, description: Dict[str, float]) -> None:
            nonlocal done
            completed[index] = PointResult(points[index], run, description)
            done += 1
            if self._progress is not None:
                self._progress(done, len(points), completed[index])

        if self._jobs == 1 or len(points) <= 1:
            _init_worker(scenarios)
            try:
                for index, point in enumerate(points):
                    record(*_run_point(index, point))
            finally:
                _init_worker({})
        else:
            workers = min(self._jobs, len(points))
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(dict(scenarios),),
            ) as executor:
                futures = [
                    executor.submit(_run_point, index, point)
                    for index, point in enumerate(points)
                ]
                for future in as_completed(futures):
                    record(*future.result())

        result = SweepResult(points=list(completed), jobs=self._jobs)
        if self._output_dir is not None:
            result.artifact_dir = write_artifacts(result, self._output_dir)
        return result

    @staticmethod
    def _validate(points: Sequence[SweepPoint], scenarios: Mapping[str, object]) -> None:
        seen: Dict[str, int] = {}
        for point in points:
            if point.key in seen:
                raise ValueError(f"duplicate sweep point key {point.key!r}")
            seen[point.key] = 1
            if point.scenario not in scenarios:
                raise ValueError(
                    f"point {point.key!r} references unknown scenario "
                    f"{point.scenario!r}; known: {sorted(scenarios)}"
                )


# ----------------------------------------------------------------------
# JSON artifacts
# ----------------------------------------------------------------------
def write_artifacts(result: SweepResult, directory: Union[str, Path]) -> Path:
    """Write one JSON artifact per point plus a manifest; returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    keys = []
    for point_result in result.points:
        path = directory / f"{point_result.point.key}.json"
        path.write_text(
            json.dumps(point_result.payload(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        keys.append(point_result.point.key)
    manifest = {
        "points": keys,
        "jobs": result.jobs,
        "completed": len(keys),
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return directory


def load_artifacts(directory: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """Load a sweep's artifacts back as ``{point key: payload}``.

    Reads the manifest for the point list, so stray files in the directory
    are ignored and a truncated sweep is detected (missing files raise).
    """
    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text(encoding="utf-8"))
    payloads: Dict[str, Dict[str, object]] = {}
    for key in manifest["points"]:
        payloads[key] = json.loads(
            (directory / f"{key}.json").read_text(encoding="utf-8")
        )
    return payloads
