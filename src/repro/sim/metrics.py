"""Metric collection for simulation runs.

:class:`TrafficTimeSeries` samples a policy's cumulative traffic (total and
per mechanism) along the event sequence so the experiment harness can
reproduce the paper's cumulative-cost curves (Figures 7b and 8b) without
storing per-event data for half a million events: samples are taken every
``sample_every`` events plus once at the very end.

:class:`StreamingHistogram` is a fixed-bucket, log-spaced streaming
histogram: constant memory no matter how many values are recorded, with
percentile queries (p50/p99/p999) answered from the bucket boundaries.  The
served-mode load harness (:mod:`repro.serve.harness`) records per-request
latencies into one, and simulation-side consumers can use it for any
distribution sampled along a replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.link import Mechanism, NetworkLink


@dataclass(slots=True)
class TrafficSample:
    """One sample of cumulative traffic at a given event index."""

    event_index: int
    total: float
    by_mechanism: Dict[str, float]


class TrafficTimeSeries:
    """Cumulative-traffic samples along the event sequence."""

    def __init__(self, link: NetworkLink, sample_every: int = 1000) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self._link = link
        self._sample_every = sample_every
        self._samples: List[TrafficSample] = []

    def maybe_sample(self, event_index: int) -> None:
        """Record a sample if the event index falls on the sampling grid."""
        if event_index % self._sample_every == 0:
            self.sample(event_index)

    def sample(self, event_index: int) -> None:
        """Record a sample unconditionally."""
        self._samples.append(
            TrafficSample(
                event_index=event_index,
                total=self._link.total_cost,
                by_mechanism=self._link.total_by_mechanism(),
            )
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[TrafficSample]:
        """All samples in event order."""
        return list(self._samples)

    def event_indices(self) -> List[int]:
        """Event index of every sample."""
        return [sample.event_index for sample in self._samples]

    def totals(self) -> List[float]:
        """Cumulative total traffic at every sample."""
        return [sample.total for sample in self._samples]

    def series_for(self, mechanism: str) -> List[float]:
        """Cumulative traffic of one mechanism at every sample."""
        if mechanism not in Mechanism.ALL:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        return [sample.by_mechanism.get(mechanism, 0.0) for sample in self._samples]

    def final_total(self) -> float:
        """Cumulative traffic at the last sample (0 if never sampled)."""
        return self._samples[-1].total if self._samples else 0.0

    def as_rows(self) -> List[Tuple[int, float]]:
        """(event_index, cumulative_total) pairs, ready for tabulation."""
        return [(sample.event_index, sample.total) for sample in self._samples]


class StreamingHistogram:
    """A fixed-bucket, log-spaced streaming histogram.

    Values are folded into ``buckets_per_decade`` logarithmic buckets per
    decade between ``lower`` and ``upper``; anything below ``lower`` lands in
    the first bucket and anything above ``upper`` in the last, so memory is
    fixed at construction time regardless of how many values are recorded.
    Percentiles are answered with the *upper edge* of the bucket holding the
    requested rank -- a deterministic, slightly conservative estimate whose
    relative error is bounded by one bucket width (about 7% at the default
    resolution).

    The defaults (1 microsecond to 100 seconds) cover request latencies; pass
    different bounds for other distributions.
    """

    __slots__ = ("_lower", "_upper", "_per_decade", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        lower: float = 1e-6,
        upper: float = 100.0,
        buckets_per_decade: int = 32,
    ) -> None:
        if lower <= 0 or upper <= lower:
            raise ValueError("need 0 < lower < upper")
        if buckets_per_decade <= 0:
            raise ValueError("buckets_per_decade must be positive")
        self._lower = lower
        self._upper = upper
        self._per_decade = buckets_per_decade
        decades = math.log10(upper / lower)
        self._counts = [0] * (int(math.ceil(decades * buckets_per_decade)) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Fold one non-negative value into the histogram."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        self._counts[self._bucket_index(value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram with identical bucket layout into this one."""
        if (
            other._lower != self._lower
            or other._upper != self._upper
            or other._per_decade != self._per_decade
        ):
            raise ValueError("cannot merge histograms with different bucket layouts")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def _bucket_index(self, value: float) -> int:
        if value <= self._lower:
            return 0
        last = len(self._counts) - 1
        if value >= self._upper:
            return last
        index = int(math.log10(value / self._lower) * self._per_decade)
        return min(max(index, 0), last)

    def _bucket_upper_edge(self, index: int) -> float:
        return min(self._upper, self._lower * 10.0 ** ((index + 1) / self._per_decade))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of recorded values."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Exact minimum recorded value (0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact maximum recorded value (0 when empty)."""
        return self._max

    def percentile(self, quantile: float) -> float:
        """Upper bucket edge at ``quantile`` (0 < q <= 1); 0 when empty.

        The exact min/max are returned at the extremes so ``percentile(1.0)``
        never overshoots the observed maximum.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if self._count == 0:
            return 0.0
        rank = math.ceil(quantile * self._count)
        cumulative = 0
        last = len(self._counts) - 1
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == last:
                    # Overflow bucket: every value here is >= the top edge,
                    # so the observed maximum is the tighter (and honest)
                    # estimate.
                    return self._max
                return min(self._bucket_upper_edge(index), self._max)
        return self._max

    def percentiles(self, quantiles: Sequence[float]) -> List[float]:
        """The percentile estimate for each quantile, in the given order."""
        return [self.percentile(quantile) for quantile in quantiles]

    def summary(self) -> Dict[str, float]:
        """The standard latency summary (count, mean, extremes, p50/p99/p999)."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    # ------------------------------------------------------------------
    # Persistence (serve reports embed histograms in JSON payloads)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (sparse buckets; exact round trip)."""
        return {
            "lower": self._lower,
            "upper": self._upper,
            "buckets_per_decade": self._per_decade,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max,
            "buckets": {
                str(index): count for index, count in enumerate(self._counts) if count
            },
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "StreamingHistogram":
        """Rebuild a histogram previously serialised with :meth:`to_dict`."""
        histogram = StreamingHistogram(
            lower=float(payload["lower"]),  # type: ignore[arg-type]
            upper=float(payload["upper"]),  # type: ignore[arg-type]
            buckets_per_decade=int(payload["buckets_per_decade"]),  # type: ignore[arg-type]
        )
        buckets: Dict[str, int] = payload.get("buckets", {})  # type: ignore[assignment]
        for key, count in buckets.items():
            histogram._counts[int(key)] = int(count)
        histogram._count = int(payload["count"])  # type: ignore[arg-type]
        histogram._sum = float(payload["sum"])  # type: ignore[arg-type]
        raw_min: Optional[float] = payload.get("min")  # type: ignore[assignment]
        histogram._min = math.inf if raw_min is None else float(raw_min)
        histogram._max = float(payload["max"])  # type: ignore[arg-type]
        return histogram


@dataclass
class CacheOccupancySeries:
    """Samples of cache occupancy (fraction of capacity used) over the run."""

    sample_every: int = 1000
    event_indices: List[int] = field(default_factory=list)
    occupancy: List[float] = field(default_factory=list)
    resident_objects: List[int] = field(default_factory=list)

    def maybe_sample(self, event_index: int, used: float, capacity: float, count: int) -> None:
        """Record a sample if the event index falls on the sampling grid."""
        if event_index % self.sample_every != 0:
            return
        self.sample(event_index, used, capacity, count)

    def sample(self, event_index: int, used: float, capacity: float, count: int) -> None:
        """Record a sample unconditionally (callers that gate the grid themselves)."""
        self.event_indices.append(event_index)
        if capacity in (0.0, float("inf")):
            self.occupancy.append(0.0)
        else:
            self.occupancy.append(used / capacity)
        self.resident_objects.append(count)
