"""Metric collection for simulation runs.

:class:`TrafficTimeSeries` samples a policy's cumulative traffic (total and
per mechanism) along the event sequence so the experiment harness can
reproduce the paper's cumulative-cost curves (Figures 7b and 8b) without
storing per-event data for half a million events: samples are taken every
``sample_every`` events plus once at the very end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.network.link import Mechanism, NetworkLink


@dataclass(slots=True)
class TrafficSample:
    """One sample of cumulative traffic at a given event index."""

    event_index: int
    total: float
    by_mechanism: Dict[str, float]


class TrafficTimeSeries:
    """Cumulative-traffic samples along the event sequence."""

    def __init__(self, link: NetworkLink, sample_every: int = 1000) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self._link = link
        self._sample_every = sample_every
        self._samples: List[TrafficSample] = []

    def maybe_sample(self, event_index: int) -> None:
        """Record a sample if the event index falls on the sampling grid."""
        if event_index % self._sample_every == 0:
            self.sample(event_index)

    def sample(self, event_index: int) -> None:
        """Record a sample unconditionally."""
        self._samples.append(
            TrafficSample(
                event_index=event_index,
                total=self._link.total_cost,
                by_mechanism=self._link.total_by_mechanism(),
            )
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[TrafficSample]:
        """All samples in event order."""
        return list(self._samples)

    def event_indices(self) -> List[int]:
        """Event index of every sample."""
        return [sample.event_index for sample in self._samples]

    def totals(self) -> List[float]:
        """Cumulative total traffic at every sample."""
        return [sample.total for sample in self._samples]

    def series_for(self, mechanism: str) -> List[float]:
        """Cumulative traffic of one mechanism at every sample."""
        if mechanism not in Mechanism.ALL:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        return [sample.by_mechanism.get(mechanism, 0.0) for sample in self._samples]

    def final_total(self) -> float:
        """Cumulative traffic at the last sample (0 if never sampled)."""
        return self._samples[-1].total if self._samples else 0.0

    def as_rows(self) -> List[Tuple[int, float]]:
        """(event_index, cumulative_total) pairs, ready for tabulation."""
        return [(sample.event_index, sample.total) for sample in self._samples]


@dataclass
class CacheOccupancySeries:
    """Samples of cache occupancy (fraction of capacity used) over the run."""

    sample_every: int = 1000
    event_indices: List[int] = field(default_factory=list)
    occupancy: List[float] = field(default_factory=list)
    resident_objects: List[int] = field(default_factory=list)

    def maybe_sample(self, event_index: int, used: float, capacity: float, count: int) -> None:
        """Record a sample if the event index falls on the sampling grid."""
        if event_index % self.sample_every != 0:
            return
        self.sample(event_index, used, capacity, count)

    def sample(self, event_index: int, used: float, capacity: float, count: int) -> None:
        """Record a sample unconditionally (callers that gate the grid themselves)."""
        self.event_indices.append(event_index)
        if capacity in (0.0, float("inf")):
            self.occupancy.append(0.0)
        else:
            self.occupancy.append(used / capacity)
        self.resident_objects.append(count)
