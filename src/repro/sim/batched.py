"""Batched (vectorised) replay executors for the cheap yardstick policies.

The scalar engine loop costs a few microseconds of Python dispatch per event
regardless of how trivial the policy's decision is.  For the two yardsticks
whose decisions are *constant* -- NoCache ships every query, Replica ships
every update and answers every query -- the entire replay reduces to exact
bookkeeping arithmetic, which this module performs on whole event batches
using the columnar trace compilation
(:meth:`repro.workload.trace.Trace.columns`).

Batch boundaries are the engine's sampling grid (plus ``measure_from`` and
end-of-run), so every observable -- the traffic time series, occupancy
samples, warm-up capture, progress callbacks -- is produced at exactly the
same event indices as the scalar loop.  Within a batch the bookkeeping is
bit-exact by construction:

* integer counters (observer counts, repository counters, transfer counts,
  store versions/hits) advance by exact integer sums,
* float traffic totals are folded left-to-right via ``cumsum``
  (:meth:`repro.network.link.NetworkLink.charge_batch`) and per-object float
  growth via unbuffered ``np.add.at``
  (:meth:`repro.repository.server.Repository.ingest_update_columns`), both of
  which perform the identical sequence of IEEE additions as the scalar path.

The determinism fixtures therefore pin the batched path byte-for-byte
against the scalar one.

Eligibility is deliberately conservative (see
:func:`select_batched_executor`): exact policy types only (a subclass may
override hooks), materialised traces only (streams replay scalar in constant
memory), record-free links, history-free repositories, and vectorisable cost
models.  Everything else keeps the scalar loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.core.policy import CachePolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.link import Mechanism, NetworkLink
from repro.perf import PHASE_METRICS, add_phase_time, phase_clock
from repro.repository.server import Repository
from repro.workload.columns import COLUMNS_AVAILABLE, TraceColumns
from repro.workload.trace import Trace, TraceStream, TraceView

if TYPE_CHECKING:  # pragma: no cover - engine imports this module at runtime
    from repro.sim.engine import EngineConfig
    from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries

try:  # pragma: no cover - exercised implicitly by every batched test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

__all__ = ["select_batched_executor"]


class _BatchedExecutor:
    """Shared replay skeleton: batch walking, sampling, warm-up capture."""

    def __init__(
        self,
        policy: CachePolicy,
        columns: TraceColumns,
        repository: Repository,
        link: NetworkLink,
    ) -> None:
        self._policy = policy
        self._columns = columns
        self._repository = repository
        self._link = link

    def replay(
        self,
        config: "EngineConfig",
        series: "TrafficTimeSeries",
        occupancy: Optional["CacheOccupancySeries"],
        progress: Optional[Callable[[int, int], None]],
    ) -> Tuple[float, int, int]:
        """Process the whole trace in batches; returns the loop's outputs.

        The return value is ``(warmup_traffic, answered_at_cache, shipped)``
        -- exactly what the scalar loop accumulates.  The caller (the engine)
        owns the epilogue: finalize, the end-of-run sample and the final
        progress report.
        """
        columns = self._columns
        link = self._link
        store = getattr(self._policy, "store", None)
        total_events = len(columns)
        sample_every = config.sample_every
        measure_from = config.measure_from
        warmup_traffic = 0.0
        answered = 0
        shipped = 0
        position = 0
        next_sample = sample_every
        while position < total_events:
            if position == measure_from:
                warmup_traffic = link.total_cost
            edge = min(next_sample, total_events)
            if position < measure_from < edge:
                edge = measure_from
            batch_answered, batch_shipped = self._process(position, edge)
            answered += batch_answered
            shipped += batch_shipped
            position = edge
            if position == next_sample and position < total_events:
                next_sample += sample_every
                sample_start = phase_clock()
                series.sample(position)
                if occupancy is not None:
                    occupancy.sample(position, store.used, store.capacity, len(store))
                add_phase_time(PHASE_METRICS, phase_clock() - sample_start)
                if progress is not None:
                    progress(position, total_events)
        return warmup_traffic, answered, shipped

    def _process(self, start: int, stop: int) -> Tuple[int, int]:
        """Replay events ``[start, stop)``; returns (answered, shipped)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared per-batch slices
    # ------------------------------------------------------------------
    def _batch_ranges(self, start: int, stop: int) -> Tuple[int, int, int, int]:
        """Update and query subranges of the event window ``[start, stop)``."""
        prefix = self._columns.update_prefix
        update_start = int(prefix[start])
        update_stop = int(prefix[stop])
        return update_start, update_stop, start - update_start, stop - update_stop


class _NoCacheExecutor(_BatchedExecutor):
    """Batched NoCache: every query ships, updates only touch the server."""

    def _process(self, start: int, stop: int) -> Tuple[int, int]:
        columns = self._columns
        update_start, update_stop, query_start, query_stop = self._batch_ranges(
            start, stop
        )
        update_count = update_stop - update_start
        query_count = query_stop - query_start
        if update_count:
            self._repository.ingest_update_columns(
                columns.update_object_ids[update_start:update_stop],
                columns.update_rows[update_start:update_stop],
                columns.update_costs[update_start:update_stop],
            )
        if query_count:
            offsets = columns.query_object_offsets
            touched = columns.query_object_ids[
                int(offsets[query_start]) : int(offsets[query_stop])
            ]
            self._repository.answer_query_batch(touched, query_count)
            priced = self._link.cost_model.cost_array(
                columns.query_costs[query_start:query_stop]
            )
            self._link.charge_batch(Mechanism.QUERY_SHIPPING, priced)
        self._policy.observer.note_batch(
            queries=query_count, updates=update_count, shipped_queries=query_count
        )
        return 0, query_count


class _ReplicaExecutor(_BatchedExecutor):
    """Batched Replica: every update ships immediately, every query hits."""

    def _process(self, start: int, stop: int) -> Tuple[int, int]:
        columns = self._columns
        store = self._policy.store
        update_start, update_stop, query_start, query_stop = self._batch_ranges(
            start, stop
        )
        update_count = update_stop - update_start
        query_count = query_stop - query_start
        if update_count:
            object_ids = columns.update_object_ids[update_start:update_stop]
            self._repository.ingest_update_columns(
                object_ids,
                columns.update_rows[update_start:update_stop],
                columns.update_costs[update_start:update_stop],
            )
            priced = self._link.cost_model.cost_array(
                columns.update_costs[update_start:update_stop]
            )
            self._link.charge_batch(Mechanism.UPDATE_SHIPPING, priced)
            # Each update was shipped to the replica the moment it arrived,
            # so the resident copy tracks the server version exactly: advance
            # each record by its update count (scalar mark_fresh semantics).
            unique_ids, counts = _np.unique(object_ids, return_counts=True)
            for object_id, count in zip(unique_ids.tolist(), counts.tolist()):
                record = store.get(object_id)
                if record is None:
                    raise KeyError(f"object {object_id} is not resident")
                record.version += count
        if query_count:
            offsets = columns.query_object_offsets
            flat_start = int(offsets[query_start])
            flat_stop = int(offsets[query_stop])
            touched = columns.query_object_ids[flat_start:flat_stop]
            per_query = _np.diff(offsets[query_start : query_stop + 1])
            touched_at = _np.repeat(
                columns.query_timestamps[query_start:query_stop], per_query
            )
            # Hits accumulate per touch; last_hit_at is the timestamp of the
            # *last* touching query in event order (timestamps may tie within
            # the trace's 1e-9 ordering tolerance, so order -- not max --
            # decides).  The first occurrence in the reversed arrays is the
            # last occurrence forward.
            reversed_ids = touched[::-1]
            unique_ids, first_reversed, counts = _np.unique(
                reversed_ids, return_index=True, return_counts=True
            )
            reversed_at = touched_at[::-1]
            for object_id, index, count in zip(
                unique_ids.tolist(), first_reversed.tolist(), counts.tolist()
            ):
                record = store.get(object_id)
                if record is None:
                    raise KeyError(f"object {object_id} is not resident")
                record.hits += count
                record.last_hit_at = float(reversed_at[index])
        self._policy.observer.note_batch(
            queries=query_count, updates=update_count, cache_answers=query_count
        )
        return query_count, 0


def select_batched_executor(
    policy: CachePolicy,
    trace: TraceStream,
    repository: Repository,
    link: NetworkLink,
) -> Optional[_BatchedExecutor]:
    """The batched executor for this run, or ``None`` to keep the scalar loop.

    Eligibility is conservative on purpose; every condition protects a piece
    of scalar-path behaviour the batch cannot reproduce:

    * exact ``NoCachePolicy`` / ``ReplicaPolicy`` types (subclasses and
      wrappers like the serve recorder may override the per-event hooks),
    * a materialised :class:`Trace`/:class:`TraceView` (streams are replayed
      scalar so they keep their constant-memory guarantee),
    * a record-free link (per-transfer provenance needs per-event charging),
    * a history-free repository (the update log needs the update objects),
    * a cost model with a vectorised ``cost_array`` twin.
    """
    if not COLUMNS_AVAILABLE:
        return None
    executor_type = None
    if type(policy) is NoCachePolicy:
        executor_type = _NoCacheExecutor
    elif type(policy) is ReplicaPolicy:
        executor_type = _ReplicaExecutor
    if executor_type is None:
        return None
    if not isinstance(trace, (Trace, TraceView)):
        return None
    if link.keep_records or repository.keeps_update_log:
        return None
    if not hasattr(link.cost_model, "cost_array"):
        return None
    return executor_type(policy, trace.columns(), repository, link)
