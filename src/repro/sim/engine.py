"""The event-driven simulation engine.

:class:`SimulationEngine` replays one trace against one policy:

1. an optional offline preparation pass (used by SOptimal),
2. for every event in timestamp order: updates are ingested at the repository
   and the policy is notified; queries are handed to the policy, which must
   return an audited :class:`repro.core.decoupling.QueryOutcome`,
3. cumulative traffic and cache occupancy are sampled along the way,
4. a :class:`repro.sim.results.RunResult` summarises the run.

The engine also supports a *measurement window*: the paper excludes the
~250k-event warm-up period from its plots, so the engine records the traffic
accumulated before a configurable ``measure_from`` event index and reports it
separately.

The engine replays any :class:`repro.workload.trace.TraceStream` -- a
materialised :class:`~repro.workload.trace.Trace`, a zero-copy
:class:`~repro.workload.trace.TraceView`, or a lazily-generated source --
through one forward pass over ``iter_tagged()``.  It never materialises the
event list itself, so replaying a generated stream runs in constant memory
regardless of trace length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.policy import CachePolicy
from repro.network.link import NetworkLink
from repro.perf import PHASE_METRICS, add_phase_time, phase_clock
from repro.repository.server import Repository
from repro.sim.batched import select_batched_executor
from repro.sim.metrics import CacheOccupancySeries, TrafficTimeSeries
from repro.sim.results import RunResult
from repro.workload.trace import TraceStream


@dataclass(slots=True)
class EngineConfig:
    """Configuration of a simulation run."""

    #: Sample cumulative traffic every this many events.
    sample_every: int = 1000
    #: Event index at which the measurement window opens (0 = measure all).
    measure_from: int = 0
    #: Whether SOptimal-style policies get to see the trace up front.
    allow_offline_preparation: bool = True


class SimulationEngine:
    """Replays traces against policies."""

    __slots__ = ("_repository", "_config")

    def __init__(self, repository: Repository, config: Optional[EngineConfig] = None) -> None:
        self._repository = repository
        self._config = config or EngineConfig()

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    def run(
        self,
        policy: CachePolicy,
        trace: TraceStream,
        link: NetworkLink,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> RunResult:
        """Replay ``trace`` against ``policy``, charging traffic to ``link``.

        Parameters
        ----------
        policy:
            The decision policy (its internal link must be ``link``).
        trace:
            The event source to replay -- a materialised
            :class:`~repro.workload.trace.Trace` or any other
            :class:`~repro.workload.trace.TraceStream` (replayed without
            materialising it).
        link:
            The traffic ledger to sample (shared with the policy).
        progress:
            Optional callback ``(events_done, events_total)`` invoked at every
            sampling point, for long interactive runs.
        """
        config = self._config
        sample_every = config.sample_every
        measure_from = config.measure_from
        series = TrafficTimeSeries(link, sample_every=sample_every)
        store = getattr(policy, "store", None)
        occupancy: Optional[CacheOccupancySeries] = (
            CacheOccupancySeries(sample_every=sample_every) if store is not None else None
        )

        if config.allow_offline_preparation:
            policy.prepare(trace)

        warmup_traffic = 0.0
        answered_at_cache = 0
        shipped = 0
        total_events = len(trace)

        # Hot loop: the trace is replayed once per policy per experiment, so
        # the per-event work is kept to a dict-free minimum -- type-tagged
        # dispatch instead of isinstance checks, bound methods hoisted out of
        # the loop, and sampling gated by plain counter arithmetic instead of
        # a modulo on every event.
        batched = select_batched_executor(policy, trace, self._repository, link)
        if batched is not None:
            warmup_traffic, answered_at_cache, shipped = batched.replay(
                config, series, occupancy, progress
            )
        else:
            ingest_update = self._repository.ingest_update
            on_update = policy.on_update
            on_query = policy.on_query
            next_sample = sample_every
            index = 0
            for is_update, payload in trace.iter_tagged():
                if index == measure_from:
                    warmup_traffic = link.total_cost
                if is_update:
                    ingest_update(payload)
                    on_update(payload)
                else:
                    if on_query(payload).answered_at_cache:
                        answered_at_cache += 1
                    else:
                        shipped += 1
                index += 1
                # The end-of-run boundary is sampled once in the epilogue
                # below (after finalize) -- sampling it here too used to
                # record a duplicate final TrafficSample whenever the trace
                # length was a multiple of sample_every.
                if index == next_sample and index < total_events:
                    next_sample += sample_every
                    sample_start = phase_clock()
                    series.sample(index)
                    if occupancy is not None:
                        occupancy.sample(index, store.used, store.capacity, len(store))
                    add_phase_time(PHASE_METRICS, phase_clock() - sample_start)
                    if progress is not None:
                        progress(index, total_events)

        policy.finalize()
        sample_start = phase_clock()
        series.sample(total_events)
        if occupancy is not None:
            # Occupancy mirrors the traffic series: every run ends with a
            # sample at total_events, so traces shorter than sample_every no
            # longer produce an empty occupancy series.
            occupancy.sample(total_events, store.used, store.capacity, len(store))
        add_phase_time(PHASE_METRICS, phase_clock() - sample_start)
        if measure_from >= total_events:
            warmup_traffic = link.total_cost
        if progress is not None:
            progress(total_events, total_events)

        policy_stats: Dict[str, float] = {}
        if hasattr(policy, "stats"):
            policy_stats = policy.stats()
        # Policies that track online-vs-offline regret (the adaptive
        # meta-policy) expose it through this duck-typed hook.
        regret_hook = getattr(policy, "regret_summary", None)
        regret = regret_hook() if callable(regret_hook) else None

        return RunResult(
            policy_name=policy.name,
            total_traffic=link.total_cost,
            traffic_by_mechanism=link.total_by_mechanism(),
            time_series=series,
            queries_answered_at_cache=answered_at_cache,
            queries_shipped=shipped,
            events_processed=total_events,
            policy_stats=policy_stats,
            warmup_traffic=warmup_traffic if config.measure_from > 0 else 0.0,
            occupancy=occupancy,
            regret=regret,
        )
