"""The asyncio cache-middleware server.

:class:`CacheServer` wraps one policy + :class:`~repro.repository.server.Repository`
+ :class:`~repro.network.link.NetworkLink` stack behind a TCP front-end
speaking the :mod:`repro.serve.protocol` NDJSON format.

Design points:

* **Single writer.**  Every query/update frame is enqueued to one writer
  task; only that task touches the policy, the repository and the link, so
  concurrent clients can never interleave half-applied decisions.  The
  queue is bounded (per-server backpressure); per-connection backpressure
  comes from ``await writer.drain()`` on every response.
* **Sequence ordering.**  Frames stamped with a ``seq`` are applied in
  strictly increasing sequence order -- the writer buffers early arrivals --
  so the decision sequence is exactly the source trace order no matter how
  many clients the load harness fans events out over.  That is the property
  the sim-vs-served equivalence test and the deterministic-event-log
  guarantee both rest on.  Unstamped frames apply in arrival order.
* **Graceful shutdown.**  :meth:`stop` stops accepting connections, answers
  in-flight requests, flushes the writer queue (applying any
  sequence-stranded frames in order), and only then tears connections down.
* **Client cancellation safety.**  A client that disconnects or cancels
  mid-request abandons only its response future; the event itself is still
  applied exactly once and the writer loop never wedges.

The server is deterministic given the event sequence: it reads no wall
clock and draws no randomness (simulated time is the event timestamps).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.serve import protocol
from repro.sim.runner import PolicySpec
from repro.workload.trace import QueryEvent, event_from_dict

#: Default bound on queued-but-unapplied frames (per-server backpressure).
DEFAULT_MAX_PENDING = 1024


def install_uvloop() -> bool:
    """Install the uvloop event-loop policy if the ``[serve]`` extra is present.

    Returns whether uvloop is active.  The server is stdlib-only; uvloop is
    purely a throughput upgrade, so its absence is never an error.
    """
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True


class CacheServer:
    """One policy stack served over TCP behind a single-writer loop.

    Parameters
    ----------
    catalog:
        The object catalogue backing the repository.
    policy_spec:
        The policy to serve (a :class:`~repro.sim.runner.PolicySpec`).
        Offline policies (``soptimal``) are rejected: the served path has no
        future trace to prepare from.
    cache_capacity:
        Cache capacity in MB.
    host / port:
        Listen address; port 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    max_pending:
        Bound on queued-but-unapplied frames across all connections.
    """

    def __init__(
        self,
        catalog: ObjectCatalog,
        policy_spec: PolicySpec,
        cache_capacity: float,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if policy_spec.name == "soptimal":
            raise ValueError(
                "soptimal needs offline preparation over the full trace; "
                "the served path only sees events as they arrive -- serve an "
                "online policy (nocache, replica, benefit, vcover, adaptive)"
            )
        self._repository = Repository(catalog, keep_update_log=False)
        self._link = NetworkLink()
        self._policy = policy_spec.factory(self._repository, cache_capacity, self._link)
        self._policy_name = policy_spec.name
        self._host = host
        self._requested_port = port
        self._max_pending = max_pending

        self._server: Optional[asyncio.Server] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._queue: Optional[asyncio.Queue] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._next_seq = 0
        self._events_processed = 0
        self._answered_at_cache = 0
        self._shipped = 0
        self._decision_log: List[List[Any]] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The listen host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when requested as 0)."""
        return self._requested_port

    @property
    def policy_name(self) -> str:
        """The served policy's name."""
        return self._policy_name

    @property
    def decision_log(self) -> List[List[Any]]:
        """Decision signatures of every applied event, in application order."""
        return list(self._decision_log)

    def stats_snapshot(self) -> Dict[str, Any]:
        """Current counters (safe to read between events: single-threaded)."""
        return {
            "policy": self._policy_name,
            "events_processed": self._events_processed,
            "queries_answered_at_cache": self._answered_at_cache,
            "queries_shipped": self._shipped,
            "total_traffic": self._link.total_cost,
            "traffic_by_mechanism": self._link.total_by_mechanism(),
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listen socket and start the writer loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._idle = asyncio.Event()
        self._idle.set()
        self._writer_task = asyncio.create_task(self._writer_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._requested_port
        )
        self._requested_port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Gracefully shut down: drain in-flight requests, then tear down.

        New connections are refused immediately; frames already accepted are
        applied and answered.  ``drain_timeout`` bounds the wait for slow
        clients -- after it, remaining connections are closed anyway (their
        events, once enqueued, are still applied by the queue flush).
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        assert self._idle is not None and self._queue is not None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            pass
        await self._queue.put(None)
        if self._writer_task is not None:
            await self._writer_task
        for writer in list(self._connections):
            writer.close()
        self._server = None

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``repro serve`` CLI loop)."""
        if self._server is None:
            raise RuntimeError("server not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # The single-writer apply loop
    # ------------------------------------------------------------------
    async def _writer_loop(self) -> None:
        assert self._queue is not None
        buffered: Dict[int, Tuple[Dict[str, Any], asyncio.Future]] = {}
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                break
            seq, frame, future = item
            if seq is None:
                self._apply(frame, future)
            else:
                buffered[seq] = (frame, future)
                while self._next_seq in buffered:
                    pending_frame, pending_future = buffered.pop(self._next_seq)
                    self._next_seq += 1
                    self._apply(pending_frame, pending_future)
            self._queue.task_done()
        # Shutdown flush: a disconnected client may have left a hole in the
        # sequence; apply whatever remains in sequence order so accepted
        # events are never silently dropped.
        for seq in sorted(buffered):
            pending_frame, pending_future = buffered.pop(seq)
            self._next_seq = seq + 1
            self._apply(pending_frame, pending_future)

    def _apply(self, frame: Dict[str, Any], future: asyncio.Future) -> None:
        """Apply one query/update frame to the policy stack (writer task only)."""
        try:
            event = event_from_dict(frame["payload"])
            if isinstance(event, QueryEvent):
                outcome = self._policy.on_query(event.query)
                if outcome.answered_at_cache:
                    self._answered_at_cache += 1
                else:
                    self._shipped += 1
                self._decision_log.append(protocol.outcome_signature(outcome))
                result = protocol.outcome_to_dict(outcome)
            else:
                update = event.update
                self._repository.ingest_update(update)
                self._policy.on_update(update)
                self._decision_log.append(protocol.update_signature(update))
                result = {
                    "kind": "update",
                    "update_id": update.update_id,
                    "object_id": update.object_id,
                }
            self._events_processed += 1
        except Exception as exc:  # surface apply errors to the caller
            if not future.done():
                future.set_exception(
                    protocol.ProtocolError(f"event could not be applied: {exc}")
                )
            return
        if not future.done():
            future.set_result(result)

    # ------------------------------------------------------------------
    # Per-connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    response = await self._respond(line)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.encode_frame(protocol.error_frame(str(exc))))
                    await writer.drain()
                    break
                writer.write(protocol.encode_frame(response))
                # Per-connection backpressure: never buffer unboundedly for a
                # slow reader; the writer loop keeps serving other clients.
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _respond(self, line: bytes) -> Dict[str, Any]:
        """One request line -> one response frame (may raise ProtocolError)."""
        frame = protocol.decode_frame(line, expect=protocol.REQUEST_TYPES)
        seq = frame.get("seq")
        if frame["type"] == "stats":
            return protocol.stats_response_frame(self.stats_snapshot(), seq=seq)
        if self._draining:
            return protocol.error_frame("server is draining; not accepting events", seq=seq)
        assert self._queue is not None and self._idle is not None
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight += 1
        self._idle.clear()
        try:
            await self._queue.put((seq, frame, future))
            try:
                result = await future
            except protocol.ProtocolError as exc:
                return protocol.error_frame(str(exc), seq=seq)
            return protocol.result_frame(result, seq=seq)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
