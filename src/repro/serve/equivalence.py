"""Sim-vs-served equivalence: one trace, one policy, two execution paths.

The server wraps the *same* policy/Repository/NetworkLink classes the replay
engine drives, behind a single-writer loop that applies frames in trace
order.  So for any online policy, replaying a trace through
:class:`~repro.sim.engine.SimulationEngine` and serving it through
:class:`~repro.serve.server.CacheServer` must produce **byte-identical
decision logs** (every load, eviction and update shipment, in order) and
identical traffic counters.  This module provides the two instrumented
paths; ``tests/test_serve_equivalence.py`` pins the guarantee.

Scope: online policies only (``nocache``, ``replica``, ``benefit``,
``vcover``, and the ``adaptive`` meta-policy, whose decisions depend only on
events already seen).  ``soptimal`` prepares offline over the full future
trace, which a server that sees events one at a time cannot do by
construction.  One asymmetry to know about: the replay engine calls
``finalize()`` at end-of-trace (closing the adaptive policy's trailing
scoring epoch) while the server never does -- ``finalize`` books no decisions
and no real-link traffic, so the decision logs and traffic counters still
match exactly; only ``stats()`` epoch counters may differ between the paths.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Tuple

from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from repro.serve import protocol
from repro.serve.harness import run_load
from repro.serve.server import CacheServer
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.results import RunResult
from repro.sim.runner import PolicySpec
from repro.workload.trace import TraceStream


class RecordingPolicy:
    """A transparent policy wrapper recording decision signatures.

    Forwards everything to the wrapped policy (including ``store`` and
    ``stats``, which the engine probes with ``getattr``/``hasattr``) while
    appending one :func:`~repro.serve.protocol.outcome_signature` /
    :func:`~repro.serve.protocol.update_signature` row per event -- the same
    records the server keeps, so the two logs are directly comparable.
    """

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self.decisions: List[List[Any]] = []

    def on_query(self, query: Any) -> Any:
        outcome = self._inner.on_query(query)
        self.decisions.append(protocol.outcome_signature(outcome))
        return outcome

    def on_update(self, update: Any) -> None:
        self._inner.on_update(update)
        self.decisions.append(protocol.update_signature(update))

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def replay_with_log(
    spec: PolicySpec,
    catalog: ObjectCatalog,
    trace: TraceStream,
    cache_capacity: float,
) -> Tuple[RunResult, List[List[Any]]]:
    """Run one policy through the replay engine, recording its decisions."""
    repository = Repository(catalog, keep_update_log=False)
    link = NetworkLink()
    policy = RecordingPolicy(spec.factory(repository, cache_capacity, link))
    engine = SimulationEngine(repository, EngineConfig())
    result = engine.run(policy, trace, link)
    return result, policy.decisions


def serve_with_log(
    spec: PolicySpec,
    catalog: ObjectCatalog,
    trace: TraceStream,
    cache_capacity: float,
    clients: int = 2,
) -> Tuple[Dict[str, Any], List[List[Any]]]:
    """Serve the same trace through an in-process server, same instrumentation.

    Returns the server's final stats snapshot and its decision log.
    """

    async def _drive() -> Tuple[Dict[str, Any], List[List[Any]]]:
        server = CacheServer(catalog, spec, cache_capacity)
        await server.start()
        try:
            await run_load(trace, server.host, server.port, clients=clients)
        finally:
            await server.stop()
        return server.stats_snapshot(), server.decision_log

    return asyncio.run(_drive())


def logs_identical(sim_log: List[List[Any]], served_log: List[List[Any]]) -> bool:
    """Byte-identity of two decision logs (JSON-encoded, as persisted)."""
    return json.dumps(sim_log) == json.dumps(served_log)
