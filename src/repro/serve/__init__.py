"""``repro.serve``: the cache + policy stack stood up as a running service.

The paper's middleware is a *served* system -- queries arrive over a network,
the cache answers or forwards them, updates race the reads -- and this
package turns the single-process replay stack into exactly that shape:

* :mod:`repro.serve.protocol` -- the newline-delimited-JSON wire format
  (versioned query/update/stats frames reusing the trace event dicts);
* :mod:`repro.serve.server` -- an asyncio TCP front-end wrapping one
  engine/policy/Repository stack behind a single-writer event loop, so
  eviction decisions stay deterministic under concurrent clients;
* :mod:`repro.serve.client` -- a small async NDJSON client;
* :mod:`repro.serve.harness` -- the closed-loop load generator: any
  :class:`~repro.workload.trace.TraceStream` fanned out over N concurrent
  clients, per-request latency recorded into a
  :class:`~repro.sim.metrics.StreamingHistogram`, results emitted as a
  schema-valid ``repro.bench/v2`` payload;
* :mod:`repro.serve.equivalence` -- the sim-vs-served bridge: run the same
  trace + policy through the replay engine and through the server and prove
  the decision logs and traffic counters byte-identical.

The stack is stdlib-asyncio only; the optional ``[serve]`` extra installs
``uvloop``, which the server uses automatically when importable.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.equivalence import RecordingPolicy, replay_with_log, serve_with_log
from repro.serve.harness import LoadReport, loadgen_payload, run_load, run_loadgen
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.serve.server import CacheServer

__all__ = [
    "CacheServer",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecordingPolicy",
    "ServeClient",
    "ServeError",
    "decode_frame",
    "encode_frame",
    "loadgen_payload",
    "replay_with_log",
    "run_load",
    "run_loadgen",
    "serve_with_log",
]
