"""The ``repro.serve`` wire format: newline-delimited JSON, versioned frames.

One frame per line.  A request frame is::

    {"v": 1, "type": "query" | "update" | "stats", "seq": <int | null>,
     "payload": {...}}

where a query/update payload is exactly the event dict produced by
:func:`repro.workload.trace.event_to_dict` -- the same encoding the JSONL
trace files use, so a persisted trace line and a served frame payload can
never drift apart.  The server answers every request with one frame::

    {"v": 1, "type": "result" | "stats" | "error", "seq": <echoed>,
     "payload": {...}}

``seq`` is the client-stamped position of the event in the source trace.
The server applies ``seq``-stamped frames in strictly increasing sequence
order (buffering early arrivals), which is what makes eviction decisions
independent of how many concurrent clients the trace is fanned out over.
Frames without a ``seq`` (interactive clients) are applied in arrival order.

The module also defines the *decision signature* -- the canonical
JSON-serialisable record of one applied event (what was shipped, loaded,
evicted) -- shared by the served path and the sim-side
:class:`~repro.serve.equivalence.RecordingPolicy`, so the equivalence test
compares byte-identical artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.decoupling import QueryOutcome
from repro.repository.updates import Update

#: Version stamped into (and required of) every frame.
PROTOCOL_VERSION = 1

#: Frame types a client may send.
REQUEST_TYPES = ("query", "update", "stats")

#: Frame types the server may answer with.
RESPONSE_TYPES = ("result", "stats", "error")

#: Upper bound on one encoded frame; longer lines are a protocol error.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame violates the wire format."""


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as a compact JSON line (sorted keys, trailing newline)."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True) + "\n").encode("utf-8")


def decode_frame(line: bytes, expect: Optional[tuple] = None) -> Dict[str, Any]:
    """Parse and validate one frame line.

    ``expect`` optionally narrows the accepted frame types (the server passes
    :data:`REQUEST_TYPES`, clients pass :data:`RESPONSE_TYPES`).
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be an object, got {type(frame).__name__}")
    if frame.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {frame.get('v')!r}; "
            f"this endpoint speaks v{PROTOCOL_VERSION}"
        )
    kind = frame.get("type")
    allowed = expect if expect is not None else REQUEST_TYPES + RESPONSE_TYPES
    if kind not in allowed:
        raise ProtocolError(f"unknown frame type {kind!r}; expected one of {allowed}")
    seq = frame.get("seq")
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int) or seq < 0):
        raise ProtocolError(f"seq must be a non-negative integer or null, got {seq!r}")
    if kind != "stats" and not isinstance(frame.get("payload"), dict):
        raise ProtocolError(f"{kind} frame needs an object payload")
    return frame


# ----------------------------------------------------------------------
# Frame constructors
# ----------------------------------------------------------------------
def request_frame(
    kind: str, payload: Optional[Dict[str, Any]] = None, seq: Optional[int] = None
) -> Dict[str, Any]:
    """A request frame of the given kind (``query``/``update``/``stats``)."""
    if kind not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {kind!r}")
    return {"v": PROTOCOL_VERSION, "type": kind, "seq": seq, "payload": payload or {}}


def result_frame(payload: Dict[str, Any], seq: Optional[int] = None) -> Dict[str, Any]:
    """The server's answer to one applied query/update frame."""
    return {"v": PROTOCOL_VERSION, "type": "result", "seq": seq, "payload": payload}


def stats_response_frame(payload: Dict[str, Any], seq: Optional[int] = None) -> Dict[str, Any]:
    """The server's answer to a stats frame."""
    return {"v": PROTOCOL_VERSION, "type": "stats", "seq": seq, "payload": payload}


def error_frame(message: str, seq: Optional[int] = None) -> Dict[str, Any]:
    """An error response carrying a human-readable message."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "error",
        "seq": seq,
        "payload": {"message": message},
    }


# ----------------------------------------------------------------------
# Outcome encoding and decision signatures
# ----------------------------------------------------------------------
def outcome_to_dict(outcome: QueryOutcome) -> Dict[str, Any]:
    """A query outcome as the result-frame payload (JSON round-trippable)."""
    return {
        "kind": "query",
        "query_id": outcome.query_id,
        "action": outcome.action,
        "query_shipping_cost": outcome.query_shipping_cost,
        "update_shipping_cost": outcome.update_shipping_cost,
        "load_cost": outcome.load_cost,
        "loaded_objects": list(outcome.loaded_objects),
        "evicted_objects": list(outcome.evicted_objects),
        "shipped_updates": list(outcome.shipped_updates),
    }


def outcome_from_dict(payload: Dict[str, Any]) -> QueryOutcome:
    """Rebuild a query outcome from a result-frame payload."""
    return QueryOutcome(
        query_id=int(payload["query_id"]),
        action=str(payload["action"]),
        query_shipping_cost=float(payload["query_shipping_cost"]),
        update_shipping_cost=float(payload["update_shipping_cost"]),
        load_cost=float(payload["load_cost"]),
        loaded_objects=[int(oid) for oid in payload["loaded_objects"]],
        evicted_objects=[int(oid) for oid in payload["evicted_objects"]],
        shipped_updates=[int(uid) for uid in payload["shipped_updates"]],
    )


def outcome_signature(outcome: QueryOutcome) -> List[Any]:
    """The canonical decision record of one answered query.

    A flat, JSON-serialisable list covering everything the policy decided:
    the action, every cost component, and the exact load / eviction /
    update-shipping choices in the order they were made.  Two runs are
    decision-equivalent iff their signature sequences are byte-identical
    under ``json.dumps``.
    """
    return [
        "query",
        outcome.query_id,
        outcome.action,
        outcome.query_shipping_cost,
        outcome.update_shipping_cost,
        outcome.load_cost,
        list(outcome.loaded_objects),
        list(outcome.evicted_objects),
        list(outcome.shipped_updates),
    ]


def update_signature(update: Update) -> List[Any]:
    """The canonical record of one applied update (pins interleaving)."""
    return ["update", update.update_id, update.object_id]


def result_signature(payload: Dict[str, Any]) -> List[Any]:
    """The decision signature carried by one result-frame payload."""
    if payload.get("kind") == "update":
        return ["update", payload["update_id"], payload["object_id"]]
    return outcome_signature(outcome_from_dict(payload))
