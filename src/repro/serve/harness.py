"""The closed-loop load harness for the served cache.

:func:`run_load` adapts any :class:`~repro.workload.trace.TraceStream` --
flash crowds, update storms, fuzzed compositions, ingested logs -- into N
concurrent closed-loop clients (one outstanding request each).  Events are
assigned round-robin by trace position and stamped with their sequence
number, so the server applies them in exact trace order regardless of N;
per-request latency lands in a :class:`~repro.sim.metrics.StreamingHistogram`
(p50/p99/p999 in constant memory).

The recorded *event log* contains only deterministic fields (sequence number
plus the decision signature the server answered with), never timings, so it
is byte-identical across ``--clients N`` for a fixed scenario seed -- the
property the lifecycle tests pin.

:func:`run_loadgen` is the one-call form behind ``repro loadgen``: build the
scenario, boot an in-process server (or connect to an external one), drive
the load, and emit a schema-valid ``repro.bench/v2`` payload whose per-policy
row carries the measured latency percentiles -- side by side with the
:class:`~repro.network.latency.LatencyModel` predictions when a model is
given (the calibration sanity check).
"""

from __future__ import annotations

import asyncio
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig, build_scenario_stream
from repro.network.latency import LatencyModel
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.server import CacheServer
from repro.sim.metrics import StreamingHistogram
from repro.sim.runner import default_policy_specs
from repro.workload.trace import TraceStream, event_to_dict

#: Policies the served path supports (soptimal needs the future trace).
SERVABLE_POLICIES = ("nocache", "replica", "benefit", "vcover", "adaptive")


@dataclass
class LoadReport:
    """Everything one load run produced."""

    policy: str
    clients: int
    events: int
    #: Wall-clock of the load phase (connect to last response), seconds.
    wall_clock_s: float
    #: Wall-clock of scenario/stream construction, seconds.
    build_wall_clock_s: float
    #: Measured per-request latency distribution.
    histogram: StreamingHistogram
    #: Deterministic per-event log: ``[seq, *decision_signature]`` rows,
    #: sorted by seq.  Identical across client counts for a fixed scenario.
    event_log: List[List[Any]] = field(default_factory=list)
    #: The server's final stats snapshot.
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Model-predicted per-query response times (None without a model).
    predicted: Optional[StreamingHistogram] = None
    #: Workload model label (for payload case naming).
    workload_model: str = "evolving"


async def run_load(
    trace: TraceStream,
    host: str,
    port: int,
    clients: int = 4,
    latency_model: Optional[LatencyModel] = None,
) -> LoadReport:
    """Drive ``trace`` through a running server with N closed-loop clients.

    Raises :class:`~repro.serve.client.ServeError` if the server refuses an
    event (e.g. it started draining mid-load).
    """
    if clients < 1:
        raise ValueError("clients must be at least 1")
    events: List[Tuple[int, Dict[str, Any]]] = [
        (seq, event_to_dict(event)) for seq, event in enumerate(trace.iter_events())
    ]
    assignments = [events[index::clients] for index in range(clients)]
    histograms = [StreamingHistogram() for _ in range(clients)]
    predicted = [StreamingHistogram() for _ in range(clients)] if latency_model else None
    logs: List[List[List[Any]]] = [[] for _ in range(clients)]

    async def worker(index: int) -> None:
        client = await ServeClient.connect(host, port)
        try:
            for seq, payload in assignments[index]:
                kind = payload["kind"]
                started = time.perf_counter()
                if kind == "query":
                    result = await client.query(payload, seq=seq)
                else:
                    result = await client.update(payload, seq=seq)
                histograms[index].record(time.perf_counter() - started)
                logs[index].append([seq, *protocol.result_signature(result)])
                if latency_model is not None and kind == "query":
                    assert predicted is not None
                    predicted[index].record(
                        latency_model.response_time(protocol.outcome_from_dict(result))
                    )
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker(index) for index in range(clients)))
    wall = time.perf_counter() - started

    histogram = histograms[0]
    for other in histograms[1:]:
        histogram.merge(other)
    predicted_merged: Optional[StreamingHistogram] = None
    if predicted is not None:
        predicted_merged = predicted[0]
        for other in predicted[1:]:
            predicted_merged.merge(other)
    event_log = sorted((row for log in logs for row in log), key=lambda row: row[0])

    stats_client = await ServeClient.connect(host, port)
    try:
        stats = await stats_client.stats()
    finally:
        await stats_client.close()

    return LoadReport(
        policy=str(stats.get("policy", "")),
        clients=clients,
        events=len(events),
        wall_clock_s=wall,
        build_wall_clock_s=0.0,
        histogram=histogram,
        event_log=event_log,
        stats=stats,
        predicted=predicted_merged,
    )


def run_loadgen(
    config: Optional[ExperimentConfig] = None,
    policy: str = "vcover",
    clients: int = 4,
    connect: Optional[Tuple[str, int]] = None,
    latency_model: Optional[LatencyModel] = None,
) -> Tuple[LoadReport, Dict[str, Any]]:
    """Build a scenario, serve it, load it, and emit the bench payload.

    Without ``connect`` an in-process server is booted on an ephemeral port
    and gracefully stopped after the load; with ``connect=(host, port)`` the
    load is driven against an already-running ``repro serve`` process (whose
    catalogue must come from the same scenario config).

    Returns ``(report, payload)`` where ``payload`` validates against
    ``repro.bench/v2`` and carries the measured p50/p99/p999 (plus the
    model-predicted percentiles when ``latency_model`` is given).
    """
    if policy not in SERVABLE_POLICIES:
        raise ValueError(
            f"policy {policy!r} cannot be served; servable: {', '.join(SERVABLE_POLICIES)}"
        )
    config = config or ExperimentConfig()
    build_started = time.perf_counter()
    catalog, stream = build_scenario_stream(config)
    build_seconds = time.perf_counter() - build_started
    spec = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=(policy,),
    )[0]

    async def _drive() -> LoadReport:
        if connect is not None:
            return await run_load(
                stream, connect[0], connect[1], clients, latency_model=latency_model
            )
        server = CacheServer(
            catalog, spec, catalog.total_size * config.cache_fraction
        )
        await server.start()
        try:
            return await run_load(
                stream, server.host, server.port, clients, latency_model=latency_model
            )
        finally:
            await server.stop()

    report = asyncio.run(_drive())
    report.build_wall_clock_s = build_seconds
    report.workload_model = config.workload_model
    payload = loadgen_payload(report)
    return report, payload


def loadgen_payload(report: LoadReport, suite: str = "loadgen") -> Dict[str, Any]:
    """One load run as a schema-valid ``repro.bench/v2`` payload."""
    # Imported here to keep serve importable without dragging the bench
    # runner's process-pool machinery into the server path.
    from repro.bench.runner import current_git_sha, peak_rss_mb
    from repro.bench.schema import SCHEMA_ID, validate_payload

    wall = report.wall_clock_s
    events_per_s = report.events / wall if wall > 0 else 0.0
    latency: Dict[str, Any] = {
        "count": report.histogram.count,
        "mean": report.histogram.mean,
        "p50": report.histogram.percentile(0.50),
        "p99": report.histogram.percentile(0.99),
        "p999": report.histogram.percentile(0.999),
        "max": report.histogram.max,
    }
    if report.predicted is not None:
        latency["predicted_p50"] = report.predicted.percentile(0.50)
        latency["predicted_p99"] = report.predicted.percentile(0.99)
        latency["predicted_mean"] = report.predicted.mean
    case_name = f"loadgen-{report.workload_model}"
    payload: Dict[str, Any] = {
        "schema": SCHEMA_ID,
        "suite": suite,
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": report.clients,
        "peak_rss_mb": peak_rss_mb(),
        "totals": {
            "wall_clock_s": wall,
            "policy_runs": 1,
            "events": report.events,
            "events_per_s": events_per_s,
        },
        "cases": [
            {
                "name": case_name,
                "description": (
                    f"closed-loop served load, {report.clients} clients, "
                    f"{report.workload_model} workload"
                ),
                "events": report.events,
                "sites": 1,
                "repeats": 1,
                "build_wall_clock_s": report.build_wall_clock_s,
                "wall_clock_s": wall,
                "events_per_s": events_per_s,
                "peak_rss_mb": peak_rss_mb(),
                "policies": [
                    {
                        "policy": report.policy,
                        "wall_clock_s": wall,
                        "events": report.events,
                        "events_per_s": events_per_s,
                        "total_traffic_mb": float(report.stats.get("total_traffic", 0.0)),
                        "queries_answered_at_cache": int(
                            report.stats.get("queries_answered_at_cache", 0)
                        ),
                        "latency": latency,
                    }
                ],
            }
        ],
    }
    validate_payload(payload)
    return payload


def format_load_report(report: LoadReport) -> str:
    """Human-readable summary: throughput, traffic, measured vs predicted."""
    rate = (
        f" ({report.events / report.wall_clock_s:.0f}/s)"
        if report.wall_clock_s > 0
        else ""
    )
    lines = [
        f"policy            : {report.policy}",
        f"clients           : {report.clients}",
        f"events served     : {report.events}{rate}",
        f"total traffic     : {float(report.stats.get('total_traffic', 0.0)):.1f} MB",
        f"cache answers     : {int(report.stats.get('queries_answered_at_cache', 0))}",
        f"queries shipped   : {int(report.stats.get('queries_shipped', 0))}",
        "",
        f"{'latency':<12} {'measured':>12}" + (
            f" {'predicted':>12}" if report.predicted is not None else ""
        ),
    ]
    rows = [
        ("p50", report.histogram.percentile(0.50), 0.50),
        ("p99", report.histogram.percentile(0.99), 0.99),
        ("p999", report.histogram.percentile(0.999), 0.999),
        ("max", report.histogram.max, None),
    ]
    for label, measured, quantile in rows:
        line = f"{label:<12} {measured * 1e3:>10.3f}ms"
        if report.predicted is not None:
            value = (
                report.predicted.max
                if quantile is None
                else report.predicted.percentile(quantile)
            )
            line += f" {value * 1e3:>10.3f}ms"
        lines.append(line)
    return "\n".join(lines)
