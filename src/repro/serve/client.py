"""A small async client for the ``repro.serve`` NDJSON protocol.

One request, one response, in order, over one TCP connection -- exactly the
closed-loop shape the load harness drives.  The client never pipelines;
callers that want concurrency open more clients (as the harness does).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """The server answered a request with an error frame."""


class ServeClient:
    """One NDJSON connection to a :class:`~repro.serve.server.CacheServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and return the decoded response frame.

        Raises :class:`ServeError` when the server answers with an error
        frame, and :class:`~repro.serve.protocol.ProtocolError` when the
        response does not parse.
        """
        self._writer.write(protocol.encode_frame(frame))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = protocol.decode_frame(line, expect=protocol.RESPONSE_TYPES)
        if response["type"] == "error":
            raise ServeError(response["payload"]["message"])
        return response

    async def query(
        self, payload: Dict[str, Any], seq: Optional[int] = None
    ) -> Dict[str, Any]:
        """Send one query event dict; returns the result payload."""
        response = await self.request(protocol.request_frame("query", payload, seq=seq))
        return response["payload"]

    async def update(
        self, payload: Dict[str, Any], seq: Optional[int] = None
    ) -> Dict[str, Any]:
        """Send one update event dict; returns the result payload."""
        response = await self.request(protocol.request_frame("update", payload, seq=seq))
        return response["payload"]

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's stats snapshot."""
        response = await self.request(protocol.request_frame("stats"))
        return response["payload"]

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
