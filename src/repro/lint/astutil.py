"""Shared AST analysis helpers for the lint rules.

Two pieces of static knowledge recur across the determinism rules:

* :class:`ImportMap` -- resolving a call expression such as
  ``np.random.default_rng(...)`` back to its fully-qualified dotted target
  (``numpy.random.default_rng``) through the module's ``import`` /
  ``from ... import`` statements, including aliases;
* :class:`SetTracker` -- deciding whether an expression is *statically
  known* to be a ``set``/``frozenset`` value (literals, constructor calls,
  set comprehensions, set algebra, names and ``self.*`` attributes bound to
  such expressions).

Both deliberately stop at what the syntax proves: no type inference is
attempted, so an attribute of unknown type is never treated as a set.  The
rules therefore under-report rather than guess -- the right trade-off for a
gating check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

#: ``set``-returning builtins: calls to these are set-valued.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Order-preserving converters: applied to a set-valued argument, the result
#: still carries the set's arbitrary iteration order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Set-algebra operators whose result is a set when either operand is.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local name -> fully-qualified dotted path, from a module's imports.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from numpy.random import default_rng as rng`` maps ``rng`` to
    ``numpy.random.default_rng``.  :meth:`resolve_call` rewrites a call's
    target through the map, so rules can match on canonical dotted names
    regardless of how the module spelled its imports.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted path of a Name/Attribute chain, or None.

        The chain's root name is rewritten through the import aliases; a
        root that was never imported resolves to the chain as written (so
        builtins and locals still produce a matchable name).
        """
        chain = dotted_name(node)
        if chain is None:
            return None
        root, _, rest = chain.partition(".")
        target = self._aliases.get(root)
        if target is None:
            return chain
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """The canonical dotted target of a call, or None for dynamic calls."""
        return self.resolve(call.func)


class SetTracker:
    """Statically-known set-valued expressions within one scope.

    The tracker is seeded per function (or module) scope: a single pass over
    the scope's assignments records names -- and, given class-level
    knowledge, ``self.X`` attributes -- bound to set-valued expressions.
    :meth:`is_set_valued` then answers for arbitrary expressions.

    Only *stable* bindings are tracked: a name rebound to anything that is
    not set-valued anywhere in the scope is dropped, so shadowing a set
    with a sorted list is recognised as laundering the order correctly.
    """

    def __init__(
        self,
        scope: ast.AST,
        set_attributes: Optional[Set[str]] = None,
    ) -> None:
        #: Attribute names (``self.X``) known to be set-valued class state.
        self._set_attributes = set_attributes or set()
        self._set_names: Set[str] = set()
        rebound_elsewhere: Set[str] = set()
        for node in self._scope_statements(scope):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            is_set = self.is_set_valued(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    if is_set:
                        self._set_names.add(target.id)
                    else:
                        rebound_elsewhere.add(target.id)
        self._set_names -= rebound_elsewhere

    @staticmethod
    def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
        """All statements of ``scope`` without descending into nested defs."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def is_set_valued(self, node: ast.AST) -> bool:
        """Whether ``node`` is statically known to evaluate to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.Attribute):
            # Only `self.X` attributes registered by class-level analysis.
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self._set_attributes
            )
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _SET_CONSTRUCTORS:
                return True
            if name in _ORDER_PRESERVING and node.args:
                # list(S) etc. preserve the set's arbitrary order.
                return self.is_set_valued(node.args[0])
            if isinstance(node.func, ast.Attribute):
                # S.union(...), S.difference(...), S.copy() stay sets.
                method = node.func.attr
                if method in {
                    "union", "intersection", "difference", "symmetric_difference", "copy"
                }:
                    return self.is_set_valued(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_valued(node.body) and self.is_set_valued(node.orelse)
        return False


def set_valued_attributes(klass: ast.ClassDef) -> Set[str]:
    """Names of ``self.X`` attributes assigned set values anywhere in a class.

    An attribute also assigned a non-set value somewhere is excluded, the
    same stability rule :class:`SetTracker` applies to names.
    """
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    probe = SetTracker(ast.Module(body=[], type_ignores=[]))
    for node in ast.walk(klass):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if probe.is_set_valued(value):
                    assigned_set.add(target.attr)
                else:
                    assigned_other.add(target.attr)
    return assigned_set - assigned_other
