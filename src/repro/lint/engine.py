"""The ``repro lint`` driver: path collection, parsing, rule dispatch.

The engine is deliberately boring: gather ``*.py`` files under the
requested paths, parse each once, hand the ASTs to every registered rule
whose scope matches, filter findings through the file's suppression
directives, and fold the survivors into a :class:`~repro.lint.findings.
LintReport`.  All interesting logic lives in the rules.

Determinism note: the linter holds itself to its own standard.  Files are
visited in sorted order, rules run in registration order, and findings are
sorted before reporting -- two runs over the same tree produce
byte-identical output.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.engine_types import ModuleContext, ProjectContext
from repro.lint.findings import Finding, LintInputError, LintReport
from repro.lint.rules import (
    ModuleRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)
from repro.lint.suppressions import scan_suppressions

#: Pseudo-rule id for files that fail to parse.  Not suppressible: a file
#: the linter cannot read is a file no rule has vetted.
PARSE_RULE = "PARSE001"

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".mypy_cache",
    ".ruff_cache", "build", "dist", ".eggs", ".venv", "venv",
})


def find_project_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` containing ``pyproject.toml``.

    Falls back to ``start`` itself (or its parent for files) so the linter
    still runs on loose files outside any project.
    """
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` file under ``paths``, deduplicated and sorted.

    Raises :class:`LintInputError` for a path that does not exist -- the
    CLI maps that to exit code 2 rather than silently linting nothing.
    """
    seen: Dict[Path, None] = {}
    for path in paths:
        if not path.exists():
            raise LintInputError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


def _package_path(rel_path: str) -> str:
    """Strip a leading ``src/`` so rule scopes use import-like paths."""
    if rel_path.startswith("src/"):
        return rel_path[len("src/"):]
    return rel_path


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_module(
    path: Path, root: Path
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    """Parse one file into a context, or a PARSE finding on failure."""
    rel_path = _relativize(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(
            rule=PARSE_RULE,
            path=rel_path,
            line=1,
            col=0,
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            rule=PARSE_RULE,
            path=rel_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
    return (
        ModuleContext(
            path=path,
            rel_path=rel_path,
            package_path=_package_path(rel_path),
            source=source,
            tree=tree,
            suppressions=scan_suppressions(source),
        ),
        None,
    )


class Linter:
    """One lint run: a root, a rule set, and the modules parsed so far."""

    def __init__(self, root: Path, rules: Optional[Sequence[Rule]] = None) -> None:
        self.root = root
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self._modules: Dict[str, ModuleContext] = {}

    # -- parsing -------------------------------------------------------
    def load(self, rel_path: str) -> Optional[ModuleContext]:
        """The parsed module at ``rel_path`` (project-relative), or None.

        Used by project rules to pull in artifacts outside the linted
        path set; parse failures are reported as None here (the file's
        own lint run surfaces the PARSE finding).
        """
        cached = self._modules.get(rel_path)
        if cached is not None:
            return cached
        target = self.root / rel_path
        if not target.is_file():
            return None
        module, _ = _parse_module(target, self.root)
        if module is not None:
            self._modules[module.rel_path] = module
        return module

    # -- checking ------------------------------------------------------
    def run(self, files: Iterable[Path]) -> LintReport:
        """Lint ``files`` (already collected) and build the report."""
        findings: List[Finding] = []
        suppressed = 0
        checked: List[ModuleContext] = []

        for path in files:
            module, parse_finding = _parse_module(path, self.root)
            if parse_finding is not None:
                findings.append(parse_finding)
                continue
            assert module is not None
            self._modules[module.rel_path] = module
            checked.append(module)

        for module in checked:
            for rule in self.rules:
                if not isinstance(rule, ModuleRule):
                    continue
                if not rule.applies_to(module.package_path):
                    continue
                for finding in rule.check_module(module):
                    if module.suppressions.is_suppressed(finding.rule, finding.line):
                        suppressed += 1
                    else:
                        findings.append(finding)

        project = ProjectContext(
            root=self.root,
            modules=self._modules,
            _loader=self.load,
        )
        for rule in self.rules:
            if not isinstance(rule, ProjectRule):
                continue
            for finding in rule.check_project(project):
                anchor = self._modules.get(finding.path)
                if anchor is not None and anchor.suppressions.is_suppressed(
                    finding.rule, finding.line
                ):
                    suppressed += 1
                else:
                    findings.append(finding)

        return LintReport(
            findings=tuple(sorted(findings, key=Finding.sort_key)),
            files_checked=len(checked),
            rules=tuple(rule.id for rule in self.rules),
            suppressed=suppressed,
        )


def run_lint(
    paths: Sequence[object],
    *,
    rule: Optional[str] = None,
    root: Optional[object] = None,
) -> LintReport:
    """Lint ``paths`` and return the report (the ``api.run_lint`` surface).

    ``paths`` accepts strings or :class:`~pathlib.Path` objects; ``rule``
    narrows the run to one rule id; ``root`` overrides project-root
    detection (normally derived by walking up from the first path to the
    nearest ``pyproject.toml``).

    Raises :class:`~repro.lint.findings.LintInputError` for unknown rules
    or missing paths -- callers wanting CLI semantics map that to exit 2.
    """
    resolved = [Path(p) for p in paths]
    if not resolved:
        raise LintInputError("no paths given")
    files = collect_files(resolved)
    project_root = Path(root) if root is not None else find_project_root(resolved[0])
    rules: Optional[List[Rule]] = None
    if rule is not None:
        rules = [get_rule(rule)]
    return Linter(project_root, rules=rules).run(files)


#: Loader signature, for documentation purposes.
LoaderFn = Callable[[str], Optional[ModuleContext]]
