"""Context objects handed to lint rules by the engine.

Split out of :mod:`repro.lint.engine` so the rule modules can import the
context types without importing the engine (which imports the rules --
the usual registry cycle).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.lint.astutil import ImportMap
from repro.lint.suppressions import SuppressionIndex


@dataclass
class ModuleContext:
    """One parsed source file, as the module rules see it.

    ``rel_path`` is relative to the project root (POSIX form) and is what
    findings carry; ``package_path`` additionally strips a leading ``src/``
    so rules scope on import-like paths (``repro/sim/engine.py``).
    """

    path: Path
    rel_path: str
    package_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    _imports: Optional[ImportMap] = field(default=None, repr=False)

    @property
    def imports(self) -> ImportMap:
        """The module's import-alias map (built lazily, cached)."""
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports


@dataclass
class ProjectContext:
    """What a project-level rule sees: the root and a module loader."""

    root: Path
    #: Modules already parsed for this run, keyed by project-relative path.
    modules: Dict[str, ModuleContext]
    #: The engine's parser, so project rules can pull in artifacts that were
    #: not part of the linted path set (e.g. ``tests/strategies.py`` when
    #: only ``src`` was linted).  Returns None when the file is absent or
    #: does not parse.
    _loader: object = field(default=None, repr=False)

    def module(self, rel_path: str) -> Optional[ModuleContext]:
        """The parsed module at ``rel_path``, loading it on demand."""
        existing = self.modules.get(rel_path)
        if existing is not None:
            return existing
        if self._loader is None:
            return None
        return self._loader(rel_path)  # type: ignore[operator]

    def read_text(self, rel_path: str) -> Optional[str]:
        """Raw text of a project file (for non-Python artifacts), or None."""
        target = self.root / rel_path
        try:
            return target.read_text(encoding="utf-8")
        except OSError:
            return None
