"""ASYNC001: blocking calls inside ``async def`` bodies in serve code.

The serve subsystem's headline property is that one event loop multiplexes
every connection; a single synchronous ``time.sleep``, blocking socket
operation, ``requests`` call or file ``open`` inside a coroutine stalls the
*whole* server -- every client, not just the offending one.  The failure is
silent (throughput craters, nothing errors), which is exactly the kind of
regression a static rule catches better than a test.

Flagged inside any ``async def`` under ``src/repro/serve/``:

* ``time.sleep`` (use ``await asyncio.sleep``);
* the synchronous :mod:`socket` API (use asyncio streams);
* ``requests.*`` / ``urllib.request.urlopen`` / ``http.client`` (use an
  async client, or push the call into ``asyncio.to_thread``);
* ``subprocess.*`` and ``os.system`` (use ``asyncio.create_subprocess_*``);
* blocking file I/O via the ``open``/``io.open`` builtins and ``input``.

Calls *referenced* but not made (e.g. ``asyncio.to_thread(time.sleep, 1)``)
are not flagged.  The usual suppression directives apply.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine_types import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import ModuleRule, register_rule

#: Exact dotted targets that block the event loop, with the async fix.
_BLOCKING_CALLS = {
    "time.sleep": "use 'await asyncio.sleep(...)'",
    "urllib.request.urlopen": "use an async client or asyncio.to_thread(...)",
    "os.system": "use asyncio.create_subprocess_shell(...)",
    "open": "file I/O blocks the loop; do it outside the coroutine "
            "or via asyncio.to_thread(...)",
    "io.open": "file I/O blocks the loop; do it outside the coroutine "
               "or via asyncio.to_thread(...)",
    "input": "terminal reads block the loop; use asyncio streams",
}

#: Dotted prefixes whose entire API is synchronous, with the async fix.
_BLOCKING_PREFIXES = (
    ("socket.", "use asyncio streams (open_connection/start_server)"),
    ("requests.", "use an async client or asyncio.to_thread(...)"),
    ("http.client.", "use an async client or asyncio.to_thread(...)"),
    ("subprocess.", "use asyncio.create_subprocess_exec(...)"),
)


def _blocking_advice(target: str) -> Optional[str]:
    """The fix hint when ``target`` is a blocking call, else None."""
    advice = _BLOCKING_CALLS.get(target)
    if advice is not None:
        return advice
    for prefix, hint in _BLOCKING_PREFIXES:
        if target.startswith(prefix):
            return hint
    return None


@register_rule
class BlockingCallInAsync(ModuleRule):
    """ASYNC001: no synchronous blocking calls inside serve coroutines."""

    id = "ASYNC001"
    title = "blocking call inside async def in serve code"
    scope = ("repro/serve/",)

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in self._calls_in_coroutine(node):
                target = imports.resolve_call(call)
                if target is None:
                    continue
                advice = _blocking_advice(target)
                if advice is not None:
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"{target}() blocks the event loop inside "
                        f"'async def {node.name}'; {advice}",
                    )

    @staticmethod
    def _calls_in_coroutine(coroutine: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls made directly in the coroutine's body.

        Nested function definitions are skipped: a nested ``def``'s body
        only runs when called, and a nested ``async def`` is visited by the
        outer walk in its own right.
        """
        stack = list(ast.iter_child_nodes(coroutine))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))
