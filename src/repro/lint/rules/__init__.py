"""Rule registry of the ``repro lint`` static analyser.

A rule is a small class declaring an id, a severity and a scope, plus one
of two check hooks:

* :class:`ModuleRule` -- checked once per linted file against its parsed
  AST (:class:`~repro.lint.engine.ModuleContext`);
* :class:`ProjectRule` -- checked once per lint run against the whole
  project (:class:`~repro.lint.engine.ProjectContext`); used for
  cross-artifact consistency checks that no single file can answer.

Rules self-register via the :func:`register_rule` decorator at import time;
importing this package loads every built-in rule module, mirroring how the
experiment registry populates itself.  ``repro lint --rule ID`` narrows a
run to one rule; :func:`get_rule` / :func:`all_rules` are the lookup
surface the engine and the docs generator use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type, TypeVar

from repro.lint.engine_types import ModuleContext, ProjectContext
from repro.lint.findings import Finding, LintInputError


class Rule:
    """Base class: identity, severity, and the path scope of one rule."""

    #: Stable rule identifier (``DET001``); what suppressions name.
    id: str = ""
    #: One-line summary shown by ``repro lint --list-rules`` and the docs.
    title: str = ""
    #: ``error`` findings gate (exit 1); ``warning`` findings only report.
    severity: str = "error"
    #: Package-relative path prefixes the rule applies to (empty = all).
    scope: tuple = ()
    #: Package-relative path prefixes exempt from the rule.
    allowlist: tuple = ()

    def applies_to(self, package_path: str) -> bool:
        """Whether the rule checks the module at ``package_path``.

        ``package_path`` is the path inside the source tree with any
        leading ``src/`` stripped (``repro/sim/engine.py``,
        ``tests/test_sim.py``), always POSIX-separated.
        """
        if any(package_path.startswith(prefix) for prefix in self.allowlist):
            return False
        if not self.scope:
            return True
        return any(package_path.startswith(prefix) for prefix in self.scope)

    def finding(
        self, module: "ModuleContext", line: int, col: int, message: str
    ) -> Finding:
        """A finding of this rule anchored in ``module``."""
        return Finding(
            rule=self.id,
            path=module.rel_path,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
        )


class ModuleRule(Rule):
    """A rule checked file by file against each module's AST."""

    def check_module(self, module: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: "ModuleContext") -> Iterator[Finding]:
        """Dispatch helper so the engine treats rule kinds uniformly."""
        return self.check_module(module)


class ProjectRule(Rule):
    """A rule checked once per run against cross-file project artifacts."""

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


#: The registry, in registration (import) order.
_RULES: Dict[str, Rule] = {}

R = TypeVar("R", bound=Type[Rule])


def register_rule(cls: R) -> R:
    """Class decorator adding a rule to the registry (one instance per id)."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule class {cls.__name__} declares no id")
    if instance.id in _RULES:
        raise ValueError(f"rule {instance.id!r} is already registered")
    _RULES[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(_RULES.values())


def rule_ids() -> List[str]:
    """The registered rule ids, in registration order."""
    return list(_RULES)


def get_rule(rule_id: str) -> Rule:
    """The rule registered under ``rule_id`` (case-insensitive lookup).

    Raises :class:`~repro.lint.findings.LintInputError` for unknown ids --
    the CLI maps that to exit code 2.
    """
    rule = _RULES.get(rule_id) or _RULES.get(rule_id.upper())
    if rule is None:
        raise LintInputError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(_RULES)}"
        )
    return rule


# Import the built-in rule modules for their registration side effects.
from repro.lint.rules import (  # noqa: E402,F401
    asyncio_rules,
    consistency,
    contracts,
    determinism,
)
