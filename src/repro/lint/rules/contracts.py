"""Contract rules: PICK001 (picklability) and SLOT001 (hot-path slots).

PICK001 pins the sweep subsystem's process-boundary contract: anything
submitted to a :class:`concurrent.futures.ProcessPoolExecutor` -- directly
or via a :class:`~repro.sim.runner.PolicySpec` factory -- must be a
module-level callable, because lambdas and nested functions do not pickle.

SLOT001 pins PR 4's hot-path optimisation: the record classes replayed
millions of times per run stay ``__slots__``-declared, so an innocent
refactor cannot quietly re-grow per-instance ``__dict__``\\ s and give the
1.9x speedup back.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.astutil import ImportMap
from repro.lint.engine_types import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import ModuleRule, register_rule

#: Constructor names that create a process pool.
_EXECUTOR_CONSTRUCTORS = frozenset({
    "ProcessPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
})

#: Methods of an executor that ship their callable to a worker process.
_SHIPPING_METHODS = frozenset({"submit", "map"})


def _is_executor_constructor(node: ast.AST, imports: ImportMap) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = imports.resolve_call(node)
    return target in _EXECUTOR_CONSTRUCTORS


@register_rule
class NonPicklableSubmission(ModuleRule):
    """PICK001: callables crossing a process boundary must be module-level."""

    id = "PICK001"
    title = "lambda or nested function shipped to a worker process"
    # Applies everywhere, tests included: a test that submits a lambda will
    # pass under fork and fail under spawn, the worst kind of flake.
    scope = ()

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        imports = module.imports
        executor_names = self._executor_bound_names(module.tree, imports)
        yield from self._check_scope(
            module, module.tree, executor_names, nested_defs=set()
        )

    def _executor_bound_names(self, tree: ast.Module, imports: ImportMap) -> Set[str]:
        """Names bound to a process pool via ``with ... as`` or assignment."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    if _is_executor_constructor(item.context_expr, imports) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if _is_executor_constructor(node.value, imports):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _check_scope(
        self,
        module: ModuleContext,
        scope: ast.AST,
        executor_names: Set[str],
        nested_defs: Set[str],
    ) -> Iterator[Finding]:
        """Walk one scope; recurse into nested functions with their defs."""
        inner_defs = set(nested_defs)
        is_function = isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        # Pass 1: collect the scope's own statements and its nested defs,
        # so a call site is always checked with the full def set in view
        # (a submit() above the def it names would otherwise slip through).
        children: List[ast.AST] = list(ast.iter_child_nodes(scope))
        body_functions: List[ast.AST] = []
        own_nodes: List[ast.AST] = []
        while children:
            node = children.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_function:
                    inner_defs.add(node.name)
                body_functions.append(node)
                continue
            if isinstance(node, ast.ClassDef):
                body_functions.extend(
                    child
                    for child in node.body
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                continue
            own_nodes.append(node)
            children.extend(ast.iter_child_nodes(node))
        # Pass 2: check every call in this scope.
        for node in own_nodes:
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, executor_names, inner_defs)
        for function in body_functions:
            yield from self._check_scope(
                module,
                function,
                executor_names,
                inner_defs if is_function else set(),
            )

    def _check_call(
        self,
        module: ModuleContext,
        call: ast.Call,
        executor_names: Set[str],
        nested_defs: Set[str],
    ) -> Iterator[Finding]:
        imports = module.imports
        callable_arg: Optional[ast.AST] = None
        context: Optional[str] = None
        if isinstance(call.func, ast.Attribute) and call.func.attr in _SHIPPING_METHODS:
            receiver = call.func.value
            is_executor = (
                isinstance(receiver, ast.Name) and receiver.id in executor_names
            ) or _is_executor_constructor(receiver, imports)
            if is_executor and call.args:
                callable_arg = call.args[0]
                context = f"executor.{call.func.attr}()"
        else:
            target = imports.resolve_call(call)
            if target is not None and target.rpartition(".")[2] == "PolicySpec":
                context = "PolicySpec"
                for keyword in call.keywords:
                    if keyword.arg == "factory":
                        callable_arg = keyword.value
                if callable_arg is None and len(call.args) >= 2:
                    callable_arg = call.args[1]
        if callable_arg is None or context is None:
            return
        if isinstance(callable_arg, ast.Lambda):
            yield self.finding(
                module,
                callable_arg.lineno,
                callable_arg.col_offset,
                f"lambda passed to {context} cannot pickle; "
                "use a module-level function",
            )
        elif isinstance(callable_arg, ast.Name) and callable_arg.id in nested_defs:
            yield self.finding(
                module,
                callable_arg.lineno,
                callable_arg.col_offset,
                f"nested function {callable_arg.id!r} passed to {context} cannot "
                "pickle; move it to module level",
            )


#: Modules whose classes PR 4 slotted for the hot path.
_HOT_PATH_SCOPE = (
    "repro/sim/engine.py",
    "repro/flow/",
    "repro/cache/store.py",
    "repro/repository/",
)

#: Base-class name suffixes exempting a class (no instance-state concerns).
_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")

#: Exact base-class names exempting a class (slots are incompatible or moot).
_EXEMPT_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "Protocol", "ABC"})


def _declares_slots(klass: ast.ClassDef) -> bool:
    for node in klass.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in node.targets
            ):
                return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(klass: ast.ClassDef) -> bool:
    for decorator in klass.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        name_node = call.func if call is not None else decorator
        name = name_node.attr if isinstance(name_node, ast.Attribute) else (
            name_node.id if isinstance(name_node, ast.Name) else None
        )
        if name != "dataclass":
            continue
        if call is None:
            return False
        for keyword in call.keywords:
            if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
    return False


def _is_exempt(klass: ast.ClassDef) -> bool:
    for base in klass.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if name is None:
            continue
        if name in _EXEMPT_BASES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    return False


@register_rule
class HotPathSlots(ModuleRule):
    """SLOT001: hot-path classes must declare ``__slots__``.

    Satisfied by a literal ``__slots__`` in the class body or by
    ``@dataclass(slots=True)``.  Exception/Enum/Protocol subclasses are
    exempt (slots are moot or incompatible there).
    """

    id = "SLOT001"
    title = "hot-path class without __slots__"
    scope = _HOT_PATH_SCOPE

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt(node) or _declares_slots(node) or _dataclass_with_slots(node):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"class {node.name!r} lives in a hot-path module but declares "
                "no __slots__; add __slots__ (or @dataclass(slots=True)) to "
                "keep per-instance dicts out of the replay loop",
            )
