"""Determinism rules: DET001 (seeds), DET002 (wall clock), DET003 (set order).

The reproduction's headline guarantee is byte-identical replay: ``jobs=1``
vs ``jobs=N`` sweeps, streaming vs materialised pipelines, and the recorded
determinism fixtures all assume that nothing in the simulation path draws
entropy from outside the scenario seed.  These rules encode the three ways
that guarantee has historically been (or nearly been) broken.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.astutil import SetTracker, set_valued_attributes
from repro.lint.engine_types import ModuleContext
from repro.lint.findings import Finding
from repro.lint.rules import ModuleRule, register_rule

#: Modules that emit events, traffic or decisions -- the paths where an
#: arbitrary iteration order becomes an output difference.
EMITTER_SCOPE = (
    "repro/workload/",
    "repro/sim/",
    "repro/topology/",
    "repro/core/",
    "repro/flow/",
    "repro/cache/",
    "repro/sky/",
    "repro/repository/",
)

#: numpy.random constructors that are deterministic *iff* given a seed.
_NUMPY_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
})

#: numpy.random names that are fine without arguments (not entropy sources).
_NUMPY_ALLOWED = frozenset({"numpy.random.Generator"})

#: Wall-clock, environment and entropy reads that vary run to run.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
})


def _call_is_seeded(call: ast.Call) -> bool:
    """Whether a RNG constructor call passes an explicit seed."""
    if call.args and not any(isinstance(arg, ast.Starred) for arg in call.args[:1]):
        return True
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True  # cannot see inside *args; give the benefit of the doubt
    return any(kw.arg == "seed" or kw.arg is None for kw in call.keywords)


@register_rule
class UnseededRandomness(ModuleRule):
    """DET001: randomness must come from an explicitly seeded generator.

    Module-level :mod:`random` functions share one ambient, OS-seeded
    generator; ``random.Random()`` and ``numpy.random.default_rng()``
    without arguments seed from OS entropy.  Any of them inside the
    package makes two identical runs diverge.
    """

    id = "DET001"
    title = "unseeded randomness in library code"
    scope = ("repro/",)

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node)
            if target is None:
                continue
            message = self._violation(target, node)
            if message is not None:
                yield self.finding(module, node.lineno, node.col_offset, message)

    @staticmethod
    def _violation(target: str, call: ast.Call) -> Optional[str]:
        if target == "random.Random" or target == "random.SystemRandom":
            if target == "random.SystemRandom":
                return "random.SystemRandom draws OS entropy; use a seeded random.Random"
            if not _call_is_seeded(call):
                return "random.Random() without a seed draws OS entropy; pass a seed"
            return None
        if target.startswith("random."):
            name = target.partition(".")[2]
            return (
                f"random.{name}() uses the shared module-level generator; "
                "use an explicitly seeded random.Random instance"
            )
        if target in _NUMPY_ALLOWED:
            return None
        if target in _NUMPY_SEEDED_CONSTRUCTORS:
            if not _call_is_seeded(call):
                short = target.rpartition(".")[2]
                return f"numpy.random.{short}() without a seed draws OS entropy; pass a seed"
            return None
        if target.startswith("numpy.random."):
            name = target.partition("numpy.random.")[2]
            return (
                f"numpy.random.{name}() uses the legacy global RandomState; "
                "use an explicitly seeded numpy.random.default_rng(seed)"
            )
        return None


@register_rule
class WallClockRead(ModuleRule):
    """DET002: no wall-clock / environment entropy in replay code.

    Simulated time is the event sequence position; reading host time (or
    uuid/urandom entropy) inside sim, workload, flow or decision code makes
    outputs depend on the machine, not the scenario.  ``repro/bench/`` is
    allowlisted -- measuring wall-clock is its entire point -- as is the
    CLI layer, which merely reports.
    """

    id = "DET002"
    title = "wall-clock or entropy read in replay code"
    scope = EMITTER_SCOPE
    allowlist = ("repro/bench/",)

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve_call(node)
            if target in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{target}() is nondeterministic across runs; replay code "
                    "must derive time from event positions and entropy from seeds",
                )


#: Callables whose consumption of a set is order-insensitive.  ``sum`` is
#: deliberately absent (float addition is not associative); ``math.fsum``
#: is error-free and therefore order-independent, so it qualifies.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "set", "frozenset", "len", "any", "all", "max", "min", "sorted", "fsum"
})


@register_rule
class UnorderedSetIteration(ModuleRule):
    """DET003: iterating a set in event-emitting code needs ``sorted()``.

    Set iteration order is an implementation detail (and, for str-keyed
    sets, changes across processes under hash randomisation).  In modules
    that emit events or traffic, a bare ``for``/comprehension over a
    statically-known set value silently bakes that order into outputs --
    the exact bug class behind VCover's stale-vertex pruning fix in PR 2.
    Wrap the iterable in ``sorted(...)``, or suppress with a comment when
    the loop provably folds into an order-insensitive result.
    """

    id = "DET003"
    title = "unordered set iteration in event-emitting code"
    scope = EMITTER_SCOPE
    allowlist = ("repro/bench/",)

    def check_module(self, module: ModuleContext) -> Iterator[Finding]:
        # Class-level knowledge first: which self.* attributes hold sets.
        class_attrs = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                class_attrs[node] = set_valued_attributes(node)
        yield from self._check_scope(module, module.tree, set())
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = self._owning_class(module.tree, node)
                attrs = class_attrs.get(owner, set()) if owner is not None else set()
                yield from self._check_scope(module, node, attrs)

    @staticmethod
    def _owning_class(tree: ast.Module, func: ast.AST) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return node
        return None

    def _check_scope(
        self, module: ModuleContext, scope: ast.AST, set_attrs: Set[str]
    ) -> Iterator[Finding]:
        tracker = SetTracker(scope, set_attributes=set_attrs)
        for node, parent in self._walk_with_parents(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                continue
            if isinstance(node, ast.For) and tracker.is_set_valued(node.iter):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "for-loop iterates a set in arbitrary order; wrap the "
                    "iterable in sorted(...) or suppress if provably order-free",
                )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if isinstance(node, ast.GeneratorExp) and self._consumer_is_order_insensitive(
                    parent
                ):
                    continue
                for generator in node.generators:
                    if tracker.is_set_valued(generator.iter):
                        kind = {
                            ast.ListComp: "list comprehension",
                            ast.DictComp: "dict comprehension",
                            ast.GeneratorExp: "generator",
                        }[type(node)]
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"{kind} iterates a set in arbitrary order; wrap the "
                            "iterable in sorted(...) or build an order-free value",
                        )
                        break

    @staticmethod
    def _consumer_is_order_insensitive(parent: Optional[ast.AST]) -> bool:
        """A generator fed straight into set()/len()/fsum()/... is order-free."""
        if not isinstance(parent, ast.Call):
            return False
        func = parent.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _ORDER_INSENSITIVE_CONSUMERS

    @staticmethod
    def _walk_with_parents(
        scope: ast.AST,
    ) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
        """(node, parent) pairs, not descending into nested function defs."""
        stack: list = [(child, scope) for child in ast.iter_child_nodes(scope)]
        while stack:
            node, parent = stack.pop()
            yield node, parent
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend((child, node) for child in ast.iter_child_nodes(node))
