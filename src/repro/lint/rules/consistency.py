"""REG001/REG002: cross-artifact consistency of the project registries.

Several registries in this repository have documentation (or test) shadows
that used to be kept honest only at runtime:

* every ``@register_experiment`` name must appear in ``docs/experiments.md``
  (the table is generated, but regeneration is a manual step -- a new
  experiment merged without the doc update ships an undocumented surface);
* the scenario-model registry ``STREAM_CLASSES`` in
  ``repro/workload/fuzz.py`` must agree with ``MODEL_NAMES`` in
  ``repro/workload/scenarios.py`` *and* with the per-model hypothesis knob
  strategies ``MODEL_KNOB_STRATEGIES`` in ``tests/strategies.py`` -- and
  every strategy knob must name a real constructor field of the model's
  stream class.  This used to be a bare ``assert`` at test-import time;
  as a lint rule it fails with a file/line before the test suite even runs.
* (REG002) every policy a user can name -- the engine policies listed in
  ``POLICY_NAMES`` in ``repro/sim/runner.py`` plus the eviction policies
  registered with ``registry.register(...)`` in ``repro/cache`` -- must be
  documented in ``docs/policies.md``.  A policy merged without its doc
  entry (or a doc page deleted out from under the roster) fails the lint,
  not a reader.

The rules read the artifacts through the AST (no imports), so they work on
a checkout whose dependencies are not installed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine_types import ModuleContext, ProjectContext
from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, register_rule

#: Project-relative artifact paths the rule stitches together.
_EXPERIMENTS_DIR = "src/repro/experiments"
_DOCS_PATH = "docs/experiments.md"
_FUZZ_PATH = "src/repro/workload/fuzz.py"
_SCENARIOS_PATH = "src/repro/workload/scenarios.py"
_STRATEGIES_PATH = "tests/strategies.py"

#: Stream fields supplied by composition plumbing, never by segment knobs
#: (mirrors ``repro.workload.fuzz._RESERVED_FIELDS``).
_RESERVED_FIELDS = frozenset(
    {"catalog", "query_count", "update_count", "mean_query_cost",
     "mean_update_cost", "seed"}
)


def _find_assignment(tree: ast.Module, name: str) -> Optional[ast.expr]:
    """The value expression of a module-level ``name = ...`` assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return node.value
    return None


def _string_keys(node: ast.expr) -> List[Tuple[str, int, int]]:
    """(key, line, col) for every constant-string key of a dict literal."""
    keys: List[Tuple[str, int, int]] = []
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append((key.value, key.lineno, key.col_offset))
    return keys


class _ClassFields:
    """Dataclass-style field names per class of one module (AST only)."""

    def __init__(self, tree: ast.Module) -> None:
        self._own: Dict[str, Set[str]] = {}
        self._bases: Dict[str, List[str]] = {}
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            fields = {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
            self._own[node.name] = fields
            self._bases[node.name] = [
                base.id for base in node.bases if isinstance(base, ast.Name)
            ]

    def fields_of(self, class_name: str) -> Optional[Set[str]]:
        """Own plus (module-local) inherited field names, or None if unknown."""
        if class_name not in self._own:
            return None
        fields: Set[str] = set()
        stack = [class_name]
        seen: Set[str] = set()
        while stack:
            name = stack.pop()
            if name in seen or name not in self._own:
                continue
            seen.add(name)
            fields.update(self._own[name])
            stack.extend(self._bases.get(name, ()))
        return fields


@register_rule
class RegistryConsistency(ProjectRule):
    """REG001: registries and their documentation/test shadows must agree."""

    id = "REG001"
    title = "experiment/model registry out of sync with docs or strategies"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        yield from self._check_experiment_docs(project)
        yield from self._check_model_knobs(project)

    # ------------------------------------------------------------------
    # Experiments vs docs/experiments.md
    # ------------------------------------------------------------------
    def _check_experiment_docs(self, project: ProjectContext) -> Iterator[Finding]:
        registrations = self._registered_experiments(project)
        if not registrations:
            return
        docs = project.read_text(_DOCS_PATH)
        if docs is None:
            first_path, first_line = registrations[0][1], registrations[0][2]
            yield Finding(
                rule=self.id,
                path=first_path,
                line=first_line,
                col=0,
                message=(
                    f"experiments are registered but {_DOCS_PATH} does not "
                    "exist; document the registry"
                ),
            )
            return
        for name, rel_path, line in registrations:
            if f"`{name}`" not in docs:
                yield Finding(
                    rule=self.id,
                    path=rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"experiment {name!r} is registered here but missing "
                        f"from {_DOCS_PATH}; regenerate the table with "
                        "'repro experiment list --markdown'"
                    ),
                )

    def _registered_experiments(
        self, project: ProjectContext
    ) -> List[Tuple[str, str, int]]:
        """(name, rel_path, line) of every ``register_experiment`` call."""
        registrations: List[Tuple[str, str, int]] = []
        experiments_dir = project.root / _EXPERIMENTS_DIR
        if not experiments_dir.is_dir():
            return registrations
        for path in sorted(experiments_dir.glob("*.py")):
            rel = f"{_EXPERIMENTS_DIR}/{path.name}"
            module = project.module(rel)
            if module is None:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                func_name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if func_name != "register_experiment":
                    continue
                for keyword in node.keywords:
                    if (
                        keyword.arg == "name"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                    ):
                        registrations.append((keyword.value.value, rel, node.lineno))
        return registrations

    # ------------------------------------------------------------------
    # STREAM_CLASSES vs MODEL_NAMES vs MODEL_KNOB_STRATEGIES
    # ------------------------------------------------------------------
    def _check_model_knobs(self, project: ProjectContext) -> Iterator[Finding]:
        fuzz = project.module(_FUZZ_PATH)
        if fuzz is None:
            return
        stream_classes = _find_assignment(fuzz.tree, "STREAM_CLASSES")
        if not isinstance(stream_classes, ast.Dict):
            return
        model_to_class: Dict[str, str] = {}
        model_lines: Dict[str, int] = {}
        for key, value in zip(
            stream_classes.keys, stream_classes.values, strict=True
        ):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            model_lines[key.value] = key.lineno
            if isinstance(value, ast.Name):
                model_to_class[key.value] = value.id
        models = set(model_lines)

        scenarios = project.module(_SCENARIOS_PATH)
        if scenarios is not None:
            yield from self._check_model_names(fuzz, scenarios, models, model_lines)

        strategies = project.module(_STRATEGIES_PATH)
        if strategies is None:
            return
        knob_dict = _find_assignment(strategies.tree, "MODEL_KNOB_STRATEGIES")
        if not isinstance(knob_dict, ast.Dict):
            return

        strategy_models: Dict[str, Tuple[int, ast.expr]] = {}
        for key, value in zip(knob_dict.keys, knob_dict.values, strict=True):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            strategy_models[key.value] = (key.lineno, value)

        for model in sorted(models - set(strategy_models)):
            yield Finding(
                rule=self.id,
                path=fuzz.rel_path,
                line=model_lines[model],
                col=0,
                message=(
                    f"model {model!r} is in STREAM_CLASSES but has no entry in "
                    f"{_STRATEGIES_PATH} MODEL_KNOB_STRATEGIES; property tests "
                    "will never draw it"
                ),
            )
        for model in sorted(set(strategy_models) - models):
            yield Finding(
                rule=self.id,
                path=strategies.rel_path,
                line=strategy_models[model][0],
                col=0,
                message=(
                    f"MODEL_KNOB_STRATEGIES names unknown model {model!r}; "
                    f"STREAM_CLASSES in {_FUZZ_PATH} does not register it"
                ),
            )

        if scenarios is None:
            return
        class_fields = _ClassFields(scenarios.tree)
        for model, (line, value) in sorted(strategy_models.items()):
            if model not in model_to_class:
                continue
            fields = class_fields.fields_of(model_to_class[model])
            if fields is None:
                continue
            valid = fields - _RESERVED_FIELDS
            for knob, knob_line, _ in _string_keys(value):
                if knob not in valid:
                    yield Finding(
                        rule=self.id,
                        path=strategies.rel_path,
                        line=knob_line,
                        col=0,
                        message=(
                            f"knob {knob!r} for model {model!r} is not a "
                            f"constructor field of {model_to_class[model]} "
                            f"(valid: {', '.join(sorted(valid))})"
                        ),
                    )

    def _check_model_names(
        self,
        fuzz: ModuleContext,
        scenarios: ModuleContext,
        models: Set[str],
        model_lines: Dict[str, int],
    ) -> Iterator[Finding]:
        names_node = _find_assignment(scenarios.tree, "MODEL_NAMES")
        if not isinstance(names_node, (ast.Tuple, ast.List)):
            return
        declared = {
            element.value
            for element in names_node.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        }
        for model in sorted(models - declared):
            yield Finding(
                rule=self.id,
                path=fuzz.rel_path,
                line=model_lines[model],
                col=0,
                message=(
                    f"model {model!r} is in STREAM_CLASSES but missing from "
                    f"MODEL_NAMES in {_SCENARIOS_PATH}"
                ),
            )
        for model in sorted(declared - models):
            yield Finding(
                rule=self.id,
                path=scenarios.rel_path,
                line=names_node.lineno,
                col=0,
                message=(
                    f"MODEL_NAMES declares {model!r} but STREAM_CLASSES in "
                    f"{_FUZZ_PATH} does not register it"
                ),
            )


#: REG002 artifact paths.
_RUNNER_PATH = "src/repro/sim/runner.py"
_CACHE_DIR = "src/repro/cache"
_POLICY_DOCS_PATH = "docs/policies.md"


@register_rule
class PolicyDocsConsistency(ProjectRule):
    """REG002: every registered policy name must appear in docs/policies.md."""

    id = "REG002"
    title = "policy roster out of sync with docs/policies.md"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        policies = self._registered_policies(project)
        if not policies:
            return
        docs = project.read_text(_POLICY_DOCS_PATH)
        if docs is None:
            name, rel_path, line = policies[0]
            yield Finding(
                rule=self.id,
                path=rel_path,
                line=line,
                col=0,
                message=(
                    f"policies are registered but {_POLICY_DOCS_PATH} does "
                    "not exist; document the policy roster"
                ),
            )
            return
        for name, rel_path, line in policies:
            if f"`{name}`" not in docs:
                yield Finding(
                    rule=self.id,
                    path=rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"policy {name!r} is registered here but missing from "
                        f"{_POLICY_DOCS_PATH}; add it to the policy roster"
                    ),
                )

    def _registered_policies(
        self, project: ProjectContext
    ) -> List[Tuple[str, str, int]]:
        """(name, rel_path, line) of every user-nameable policy.

        Two registries feed the roster: the engine policies enumerated by
        ``POLICY_NAMES`` in the sweep runner, and the eviction policies
        registered against the :mod:`repro.cache` registry.
        """
        policies: List[Tuple[str, str, int]] = []
        runner = project.module(_RUNNER_PATH)
        if runner is not None:
            names_node = _find_assignment(runner.tree, "POLICY_NAMES")
            if isinstance(names_node, (ast.Tuple, ast.List)):
                policies.extend(
                    (element.value, runner.rel_path, element.lineno)
                    for element in names_node.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
        cache_dir = project.root / _CACHE_DIR
        if cache_dir.is_dir():
            for path in sorted(cache_dir.glob("*.py")):
                rel = f"{_CACHE_DIR}/{path.name}"
                module = project.module(rel)
                if module is None:
                    continue
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute) and func.attr == "register"
                    ):
                        continue
                    if (
                        node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                    ):
                        policies.append((node.args[0].value, rel, node.lineno))
        return policies


#: REG003 artifact paths.
_BENCH_RUNNER_PATH = "src/repro/bench/runner.py"
_BENCH_SCHEMA_PATH = "src/repro/bench/schema.py"


def _string_tuple(node: Optional[ast.expr]) -> Optional[List[Tuple[str, int]]]:
    """(value, line) for every constant-string element of a tuple/list."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    return [
        (element.value, element.lineno)
        for element in node.elts
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


@register_rule
class BenchPhaseConsistency(ProjectRule):
    """REG003: the bench runner's phase names must match the schema's table.

    The runner stamps every case with a ``phases`` wall-clock breakdown
    keyed by ``PHASE_KEYS``; the schema validator accepts exactly the names
    in ``PHASE_NAMES``.  If the two tables drift -- a phase timer added to
    the runner without widening the schema, or a schema phase the runner
    never emits -- every ``run_suite`` call would start failing validation
    at runtime.  This rule fails the build first, with a file and line.
    """

    id = "REG003"
    title = "bench runner phase names out of sync with the payload schema"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        runner = project.module(_BENCH_RUNNER_PATH)
        schema = project.module(_BENCH_SCHEMA_PATH)
        if runner is None or schema is None:
            return
        keys_node = _find_assignment(runner.tree, "PHASE_KEYS")
        names_node = _find_assignment(schema.tree, "PHASE_NAMES")
        if names_node is None:
            return
        if keys_node is None:
            yield Finding(
                rule=self.id,
                path=runner.rel_path,
                line=1,
                col=0,
                message=(
                    f"{_BENCH_SCHEMA_PATH} declares PHASE_NAMES but "
                    f"{_BENCH_RUNNER_PATH} has no PHASE_KEYS table; the "
                    "runner must emit exactly the schema's phases"
                ),
            )
            return
        keys = _string_tuple(keys_node) or []
        names = _string_tuple(names_node) or []
        key_set = {value for value, _ in keys}
        name_set = {value for value, _ in names}
        for value, line in keys:
            if value not in name_set:
                yield Finding(
                    rule=self.id,
                    path=runner.rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"runner phase {value!r} is not in the schema's "
                        f"PHASE_NAMES ({_BENCH_SCHEMA_PATH}); payloads "
                        "emitting it will fail validation"
                    ),
                )
        for value, line in names:
            if value not in key_set:
                yield Finding(
                    rule=self.id,
                    path=schema.rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"schema phase {value!r} is never emitted by the "
                        f"runner's PHASE_KEYS ({_BENCH_RUNNER_PATH}); drop it "
                        "or record it"
                    ),
                )
        if key_set == name_set and [v for v, _ in keys] != [v for v, _ in names]:
            yield Finding(
                rule=self.id,
                path=runner.rel_path,
                line=keys[0][1] if keys else 1,
                col=0,
                message=(
                    "PHASE_KEYS and PHASE_NAMES list the same phases in "
                    "different orders; keep the tables identical"
                ),
            )
