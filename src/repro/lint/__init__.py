"""``repro.lint``: an AST-based determinism and contract checker.

A self-hosted static analyser that encodes this repository's invariants
as lint rules -- seeded randomness only (DET001), no wall-clock reads in
replay code (DET002), no bare set iteration in event-emitting modules
(DET003), module-level callables across process boundaries (PICK001),
``__slots__`` on hot-path classes (SLOT001), and registry/doc/test
consistency (REG001).  Run it via ``repro lint [PATHS]`` or
:func:`repro.api.run_lint`.

Built entirely on :mod:`ast` and :mod:`tokenize` -- no third-party
dependencies -- so it runs on any checkout the package itself runs on.
"""

from __future__ import annotations

from repro.lint.engine import Linter, collect_files, find_project_root, run_lint
from repro.lint.findings import Finding, LintInputError, LintReport
from repro.lint.rules import Rule, all_rules, get_rule, rule_ids

__all__ = [
    "Finding",
    "LintInputError",
    "LintReport",
    "Linter",
    "Rule",
    "all_rules",
    "collect_files",
    "find_project_root",
    "get_rule",
    "rule_ids",
    "run_lint",
]
