"""Finding and report types of the ``repro lint`` static analyser.

A :class:`Finding` is one rule violation anchored to a file and line; a
:class:`LintReport` is the result of one lint run -- the findings plus the
run's scope -- and owns the two output encodings the CLI exposes:

* ``text`` -- one ``path:line:col: RULE message`` line per finding (the
  classic compiler format, so editors and CI annotations pick it up);
* ``json`` -- a schema-tagged payload (:data:`SCHEMA_ID`) that round-trips
  through :meth:`LintReport.to_dict` / :meth:`LintReport.from_dict`.

The payload layout is part of the tool's contract (CI consumes it), so the
schema id is bumped on incompatible changes, exactly like
:mod:`repro.bench.schema` does for benchmark payloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Identifier embedded in every JSON report; bumped on incompatible changes.
SCHEMA_ID = "repro.lint/v1"

#: The two severities a rule may assign.  ``error`` findings fail the run
#: (CLI exit code 1); ``warning`` findings are reported but do not gate.
SEVERITIES = ("error", "warning")


class LintInputError(ValueError):
    """Bad lint input: unknown rule id, missing path, malformed payload.

    The CLI maps this to exit code 2 (usage error), keeping it distinct
    from exit code 1 (findings present).
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``path`` is stored relative to the linted project root, in POSIX form,
    so reports are machine-independent and diffable across checkouts.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise LintInputError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def format(self) -> str:
        """The classic ``path:line:col: RULE message`` compiler line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: by path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        try:
            return cls(
                rule=str(data["rule"]),
                severity=str(data.get("severity", "error")),
                path=str(data["path"]),
                line=int(data["line"]),
                col=int(data["col"]),
                message=str(data["message"]),
            )
        except KeyError as exc:
            raise LintInputError(f"finding payload missing field {exc.args[0]!r}") from None


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run: scope, findings, suppression count.

    ``files_checked`` and ``suppressed`` make a clean report auditable: a
    report with zero findings over zero files is vacuous, and a spike in
    suppressions is as reviewable as a spike in findings.
    """

    findings: Tuple[Finding, ...]
    files_checked: int
    rules: Tuple[str, ...]
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when no ``error``-severity finding survived suppression."""
        return not any(f.severity == "error" for f in self.findings)

    def counts_by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id (only rules that fired)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        """The JSON payload (schema-tagged; ``from_dict`` round-trips it)."""
        return {
            "schema": SCHEMA_ID,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "findings": len(self.findings),
                "by_rule": self.counts_by_rule(),
                "ok": self.ok,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        """Rebuild a report from :meth:`to_dict` output (schema-checked)."""
        schema = data.get("schema")
        if schema != SCHEMA_ID:
            raise LintInputError(
                f"report schema mismatch: expected {SCHEMA_ID!r}, got {schema!r}"
            )
        raw = data.get("findings")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise LintInputError("report payload field 'findings' must be a list")
        return cls(
            findings=tuple(Finding.from_dict(item) for item in raw),
            files_checked=int(data.get("files_checked", 0)),
            rules=tuple(str(rule) for rule in data.get("rules", ())),
            suppressed=int(data.get("suppressed", 0)),
        )

    def format_text(self) -> str:
        """The human-readable report the CLI prints by default."""
        lines = [finding.format() for finding in self.findings]
        counts = self.counts_by_rule()
        tally = ", ".join(f"{rule} x{count}" for rule, count in counts.items())
        lines.append(
            f"checked {self.files_checked} file(s): "
            + (f"{len(self.findings)} finding(s) ({tally})" if self.findings else "clean")
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        """The machine-readable report (pretty, stable key order)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
