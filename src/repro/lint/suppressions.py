"""Suppression comments understood by ``repro lint``.

Two comment forms opt a deliberate violation out of a rule, both carrying
the rule ids so a suppression can never silence more than it names:

* ``# repro-lint: disable=RULE[,RULE...]`` -- suppresses findings that
  those rules report *on the same physical line* (put it on the line the
  finding is anchored to -- for multi-line statements that is the line the
  statement starts on);
* ``# repro-lint: disable-file=RULE[,RULE...]`` -- suppresses the named
  rules for the whole file (conventionally placed at the top).

``disable=all`` / ``disable-file=all`` suppress every rule; use sparingly.
Comments are discovered with :mod:`tokenize`, so a ``repro-lint:`` marker
inside a string literal is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

#: Matches the directive inside a comment token.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: The wildcard rule name accepted by both directive kinds.
ALL = "all"


@dataclass
class SuppressionIndex:
    """Per-file suppression state: file-wide rules plus per-line rules."""

    #: Rules disabled for the whole file (may contain :data:`ALL`).
    file_rules: FrozenSet[str] = frozenset()
    #: Line number -> rules disabled on that line (may contain :data:`ALL`).
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed for a finding anchored at ``line``."""
        if ALL in self.file_rules or rule in self.file_rules:
            return True
        at_line = self.line_rules.get(line)
        if at_line is None:
            return False
        return ALL in at_line or rule in at_line


def scan_suppressions(source: str) -> SuppressionIndex:
    """Extract every suppression directive from ``source``.

    Unparseable sources (tokenize errors) yield an empty index -- the file
    will already be reported as a parse failure, and a suppression inside a
    broken file cannot be trusted anyway.
    """
    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            if match.group("kind") == "disable-file":
                file_rules.update(rules)
            else:
                line_rules.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return SuppressionIndex()
    return SuppressionIndex(
        file_rules=frozenset(file_rules),
        line_rules={line: frozenset(rules) for line, rules in line_rules.items()},
    )
