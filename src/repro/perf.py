"""Process-local phase timers for the benchmark harness.

The bench runner wants to localise a regression: did a slow case spend its
time compiling the trace, dispatching events, solving covers, or sampling
metrics?  The replay and flow layers record wall-clock into the accumulators
here; :mod:`repro.bench.runner` resets them around each policy run and folds
the deltas into the ``repro.bench/v2`` per-phase breakdown.

These timers are *observability only*.  They never feed back into simulation
state, ``RunResult`` payloads, or policy decisions -- wall-clock must stay out
of anything the determinism fixtures pin.  The accumulators are plain module
globals: each bench case runs start-to-finish inside one process (serial or
one ``ProcessPoolExecutor`` worker), so no locking is needed.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

#: Time spent inside max-flow solves (:func:`repro.flow.maxflow.solve_max_flow`).
PHASE_COVER_SOLVE = "cover_solve"

#: Time spent sampling the traffic/occupancy series in the engines.
PHASE_METRICS = "metrics"

_totals: Dict[str, float] = {}


def phase_clock() -> float:
    """Current wall-clock, for bracketing a phase measurement.

    This is the one sanctioned wall-clock read in replay-adjacent code: the
    value is only ever subtracted from a later read and fed to
    :func:`add_phase_time`, so it can never influence simulation results.
    """
    return perf_counter()  # repro-lint: disable=DET002


def add_phase_time(phase: str, seconds: float) -> None:
    """Accumulate ``seconds`` of wall-clock against ``phase``."""
    _totals[phase] = _totals.get(phase, 0.0) + seconds


def reset_phase_times() -> None:
    """Zero every accumulator (the bench runner calls this per policy run)."""
    _totals.clear()


def snapshot_phase_times() -> Dict[str, float]:
    """A copy of the accumulated per-phase seconds."""
    return dict(_totals)
