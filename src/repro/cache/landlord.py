"""Landlord eviction (generalised Greedy-Dual-Size).

Landlord (Young 1998) generalises GDS: every resident object holds *credit*;
on eviction pressure, rent proportional to each object's size is charged until
some object's credit reaches zero, and that object is evicted.  On a hit the
object's credit is restored to any value up to its retrieval cost.  With the
restore-to-full rule Landlord is k-competitive for weighted caching.

The implementation below uses the standard lazy formulation with a global
rent offset so that charging rent is O(1): an object's effective credit is
``credit - rent_offset * size``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError, registry


class Landlord(EvictionPolicy):
    """Landlord / generalised GDS eviction policy."""

    def __init__(self, refresh_fraction: float = 1.0) -> None:
        if not 0.0 <= refresh_fraction <= 1.0:
            raise ValueError("refresh_fraction must lie in [0, 1]")
        #: Fraction of the full cost restored on a hit (1.0 == classic GDS-like).
        self._refresh_fraction = refresh_fraction
        self._credits: Dict[int, float] = {}
        self._sizes: Dict[int, float] = {}
        self._costs: Dict[int, float] = {}
        self._rent_offset = 0.0

    def _effective_credit(self, object_id: int) -> float:
        return self._credits[object_id] - self._rent_offset * self._sizes[object_id]

    def on_load(self, object_id: int, size: float, cost: float, timestamp: float) -> None:
        if size <= 0:
            raise ValueError(f"object {object_id} has non-positive size {size!r}")
        self._sizes[object_id] = size
        self._costs[object_id] = cost
        self._credits[object_id] = cost + self._rent_offset * size

    def on_hit(self, object_id: int, timestamp: float) -> None:
        if object_id not in self._credits:
            raise KeyError(f"object {object_id} is not tracked by Landlord")
        full = self._costs[object_id] + self._rent_offset * self._sizes[object_id]
        current = self._credits[object_id]
        self._credits[object_id] = current + self._refresh_fraction * (full - current)

    def on_evict(self, object_id: int) -> None:
        self._credits.pop(object_id, None)
        self._sizes.pop(object_id, None)
        self._costs.pop(object_id, None)

    def victim(self, resident: Iterable[int]) -> Optional[int]:
        candidates = [oid for oid in resident if oid in self._credits]
        if not candidates:
            return None
        # Charge rent until the minimum credit-per-size hits zero; the object
        # achieving the minimum is the victim.
        victim = min(
            candidates, key=lambda oid: self._effective_credit(oid) / self._sizes[oid]
        )
        rent = self._effective_credit(victim) / self._sizes[victim]
        if rent > 0:
            self._rent_offset += rent
        return victim

    def priority(self, object_id: int) -> float:
        try:
            return self._effective_credit(object_id)
        except KeyError:
            raise PolicyIntrospectionError(
                f"Landlord does not track object {object_id}"
            ) from None

    def boost_cost(self, object_id: int, extra_cost: float) -> None:
        """Increase an object's cost term (parallel of GDS.boost_cost)."""
        if object_id not in self._costs:
            raise KeyError(f"object {object_id} is not tracked by Landlord")
        self._costs[object_id] += extra_cost
        self.on_hit(object_id, 0.0)

    def reset(self) -> None:
        self._credits.clear()
        self._sizes.clear()
        self._costs.clear()
        self._rent_offset = 0.0


registry.register("landlord", Landlord)
