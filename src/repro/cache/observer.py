"""The observation half of the observe/decide policy contract.

A cache policy does two separable things on every event: it *observes* the
workload (queries seen, updates seen, cache answers, traffic charged) and it
*decides* (ship, load, evict).  Historically both lived tangled inside
:class:`repro.core.policy.BaseCachePolicy` as bare counters; this module
factors the observation half into an explicit :class:`PolicyObserver` so that

* concrete policies keep only decision logic (they report events through the
  base class, which forwards here),
* meta-policies -- :class:`repro.core.adaptive.AdaptivePolicy` -- can read a
  candidate's behaviour per *epoch* (a fixed-length slice of events) without
  reaching into its internals: :meth:`PolicyObserver.close_epoch` returns an
  immutable :class:`EpochSnapshot` of everything that happened since the
  previous boundary,
* future vectorised batching can swap the observation layer without touching
  any decision code.

The observer is strictly passive: it never charges the link and never
influences a decision, so threading it through
:class:`~repro.core.policy.BaseCachePolicy` leaves every policy's behaviour
byte-identical (the determinism fixtures pin this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.updates import Update

__all__ = ["EpochSnapshot", "PolicyObserver"]


@dataclass(frozen=True)
class EpochSnapshot:
    """What one policy did during one observation epoch.

    All fields are deltas over the epoch (not running totals); an epoch is
    whatever slice of events lies between two ``close_epoch`` calls.
    """

    #: Zero-based index of the closed epoch.
    index: int
    #: Events observed during the epoch (queries plus updates).
    events: int
    #: Queries observed during the epoch.
    queries: int
    #: Updates observed during the epoch.
    updates: int
    #: Queries the policy answered at the cache during the epoch.
    cache_answers: int
    #: Queries the policy shipped to the server during the epoch.
    shipped_queries: int
    #: Traffic the policy charged to its link during the epoch (MB).
    traffic: float
    #: The epoch's traffic split by mechanism (query/update shipping, loads).
    traffic_by_mechanism: Mapping[str, float]

    @property
    def update_intensity(self) -> float:
        """Updates per event in the epoch -- the update-storm signal."""
        if self.events == 0:
            return 0.0
        return self.updates / self.events

    @property
    def hit_fraction(self) -> float:
        """Fraction of the epoch's queries answered at the cache."""
        if self.queries == 0:
            return 0.0
        return self.cache_answers / self.queries


class PolicyObserver:
    """Passive per-policy workload statistics with epoch snapshots.

    Parameters
    ----------
    link:
        The policy's traffic ledger; epoch traffic is read from it as deltas
        between boundaries, so the observer never double-books a charge.
    """

    __slots__ = (
        "_link",
        "_queries_seen",
        "_updates_seen",
        "_cache_answers",
        "_shipped_queries",
        "_epochs_closed",
        "_epoch_queries_mark",
        "_epoch_updates_mark",
        "_epoch_answers_mark",
        "_epoch_shipped_mark",
        "_epoch_traffic_mark",
    )

    def __init__(self, link: NetworkLink) -> None:
        self._link = link
        self._queries_seen = 0
        self._updates_seen = 0
        self._cache_answers = 0
        self._shipped_queries = 0
        self._epochs_closed = 0
        self._epoch_queries_mark = 0
        self._epoch_updates_mark = 0
        self._epoch_answers_mark = 0
        self._epoch_shipped_mark = 0
        self._epoch_traffic_mark: Dict[str, float] = link.total_by_mechanism()

    # ------------------------------------------------------------------
    # Observation hooks (called by BaseCachePolicy)
    # ------------------------------------------------------------------
    def note_query(self, query: Query) -> None:
        """Record one query arrival."""
        self._queries_seen += 1

    def note_update(self, update: Update) -> None:
        """Record one update arrival."""
        self._updates_seen += 1

    def note_cache_answer(self, query: Query) -> None:
        """Record a query answered from the cache."""
        self._cache_answers += 1

    def note_shipped_query(self, query: Query) -> None:
        """Record a query shipped to the server."""
        self._shipped_queries += 1

    def note_batch(
        self,
        queries: int = 0,
        updates: int = 0,
        cache_answers: int = 0,
        shipped_queries: int = 0,
    ) -> None:
        """Record a whole event batch at once (the batched replay path).

        All counters are plain integers, so batch increments are exactly
        equivalent to the per-event hooks above.
        """
        self._queries_seen += queries
        self._updates_seen += updates
        self._cache_answers += cache_answers
        self._shipped_queries += shipped_queries

    # ------------------------------------------------------------------
    # Reading the totals
    # ------------------------------------------------------------------
    @property
    def queries_seen(self) -> int:
        """Total queries observed over the whole run."""
        return self._queries_seen

    @property
    def updates_seen(self) -> int:
        """Total updates observed over the whole run."""
        return self._updates_seen

    @property
    def cache_answers(self) -> int:
        """Total queries answered at the cache over the whole run."""
        return self._cache_answers

    @property
    def shipped_queries(self) -> int:
        """Total queries shipped to the server over the whole run."""
        return self._shipped_queries

    @property
    def epochs_closed(self) -> int:
        """Number of epochs closed so far."""
        return self._epochs_closed

    # ------------------------------------------------------------------
    # Epoch boundaries
    # ------------------------------------------------------------------
    def close_epoch(self) -> EpochSnapshot:
        """Close the current epoch and return its snapshot.

        The next epoch starts empty at the current counter and ledger
        positions.  Closing an epoch with no observed events is legal and
        yields an all-zero snapshot.
        """
        totals = self._link.total_by_mechanism()
        by_mechanism = {
            mechanism: totals[mechanism] - self._epoch_traffic_mark.get(mechanism, 0.0)
            for mechanism in totals
        }
        queries = self._queries_seen - self._epoch_queries_mark
        updates = self._updates_seen - self._epoch_updates_mark
        snapshot = EpochSnapshot(
            index=self._epochs_closed,
            events=queries + updates,
            queries=queries,
            updates=updates,
            cache_answers=self._cache_answers - self._epoch_answers_mark,
            shipped_queries=self._shipped_queries - self._epoch_shipped_mark,
            traffic=sum(by_mechanism.values()),
            traffic_by_mechanism=by_mechanism,
        )
        self._epochs_closed += 1
        self._epoch_queries_mark = self._queries_seen
        self._epoch_updates_mark = self._updates_seen
        self._epoch_answers_mark = self._cache_answers
        self._epoch_shipped_mark = self._shipped_queries
        self._epoch_traffic_mark = totals
        return snapshot
