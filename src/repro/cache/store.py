"""The space-constrained object store at the middleware cache.

:class:`CacheStore` tracks which data objects are resident, how much capacity
they occupy, which server version each resident copy corresponds to, and
whether the copy is currently marked stale (an update arrived at the server
that has not been shipped).  It enforces the capacity constraint but does not
*choose* what to evict -- that is the job of an
:class:`repro.cache.base.EvictionPolicy`.

All sizes and capacities are in MB, consistent with the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set


@dataclass(slots=True)
class CachedObject:
    """Book-keeping record for one resident data object."""

    object_id: int
    #: Size the object occupies in the cache (its size at load time).
    size: float
    #: Server version the resident copy corresponds to.
    version: int
    #: Event time at which the object was loaded.
    loaded_at: float
    #: Whether the server has updates this copy has not seen.
    stale: bool = False
    #: Number of queries answered (fully) from this resident copy.
    hits: int = 0
    #: Event time of the most recent hit.
    last_hit_at: Optional[float] = None


class CacheCapacityError(RuntimeError):
    """Raised when an insert would exceed capacity and no eviction freed room."""


class CacheStore:
    """Capacity-enforcing store of whole data objects.

    Parameters
    ----------
    capacity:
        Total capacity in MB.  ``float('inf')`` models the unbounded cache the
        Replica yardstick assumes.
    """

    __slots__ = ("_capacity", "_objects", "_used", "_loads", "_evictions")

    def __init__(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity!r}")
        self._capacity = capacity
        self._objects: Dict[int, CachedObject] = {}
        self._used = 0.0
        self._loads = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> float:
        """Total capacity in MB."""
        return self._capacity

    @property
    def used(self) -> float:
        """Capacity currently occupied, in MB."""
        return self._used

    @property
    def free(self) -> float:
        """Remaining capacity, in MB."""
        return self._capacity - self._used

    def fits(self, size: float) -> bool:
        """Whether an object of ``size`` MB fits without any eviction."""
        return size <= self.free + 1e-9

    def can_ever_fit(self, size: float) -> bool:
        """Whether an object of ``size`` MB could fit even in an empty cache."""
        return size <= self._capacity + 1e-9

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[int]:
        return iter(self._objects)

    def get(self, object_id: int) -> Optional[CachedObject]:
        """Return the record for a resident object, or ``None``."""
        return self._objects.get(object_id)

    def resident_ids(self) -> Set[int]:
        """Identifiers of all resident objects."""
        return set(self._objects)

    def records(self) -> List[CachedObject]:
        """All residency records (no particular order)."""
        return list(self._objects.values())

    def contains_all(self, object_ids: Iterable[int]) -> bool:
        """Whether every object in ``object_ids`` is resident."""
        return all(object_id in self._objects for object_id in object_ids)

    def missing(self, object_ids: Iterable[int]) -> Set[int]:
        """The subset of ``object_ids`` that is not resident."""
        return {object_id for object_id in object_ids if object_id not in self._objects}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, object_id: int, size: float, version: int, timestamp: float) -> CachedObject:
        """Insert (load) an object into the cache.

        The caller must have made room first; raises
        :class:`CacheCapacityError` if the object does not fit, and
        ``ValueError`` if it is already resident.
        """
        if object_id in self._objects:
            raise ValueError(f"object {object_id} is already resident")
        if not self.fits(size):
            raise CacheCapacityError(
                f"object {object_id} ({size:.1f}MB) does not fit in free {self.free:.1f}MB"
            )
        record = CachedObject(object_id=object_id, size=size, version=version, loaded_at=timestamp)
        self._objects[object_id] = record
        self._used += size
        self._loads += 1
        return record

    def evict(self, object_id: int) -> CachedObject:
        """Remove an object from the cache and return its record."""
        record = self._objects.pop(object_id, None)
        if record is None:
            raise KeyError(f"object {object_id} is not resident")
        self._used -= record.size
        if self._used < 1e-9:
            self._used = 0.0
        self._evictions += 1
        return record

    def mark_stale(self, object_id: int) -> bool:
        """Mark a resident object stale; returns ``False`` if not resident."""
        record = self._objects.get(object_id)
        if record is None:
            return False
        record.stale = True
        return True

    def mark_fresh(self, object_id: int, version: int) -> None:
        """Mark a resident object fresh at the given server version."""
        record = self._objects.get(object_id)
        if record is None:
            raise KeyError(f"object {object_id} is not resident")
        record.stale = False
        record.version = version

    def record_hit(self, object_id: int, timestamp: float) -> None:
        """Record that a query was answered from this object."""
        record = self._objects.get(object_id)
        if record is None:
            raise KeyError(f"object {object_id} is not resident")
        record.hits += 1
        record.last_hit_at = timestamp

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def load_count(self) -> int:
        """Number of inserts performed over the store's lifetime."""
        return self._loads

    @property
    def eviction_count(self) -> int:
        """Number of evictions performed over the store's lifetime."""
        return self._evictions

    def occupancy(self) -> float:
        """Fraction of capacity in use (0 for an unbounded empty cache)."""
        if self._capacity == 0 or self._capacity == float("inf"):
            return 0.0 if self._used == 0 else self._used / self._capacity
        return self._used / self._capacity

    def stats(self) -> Dict[str, float]:
        """Summary counters for reports and tests."""
        return {
            "capacity": self._capacity,
            "used": self._used,
            "resident_objects": float(len(self._objects)),
            "loads": float(self._loads),
            "evictions": float(self._evictions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStore(used={self._used:.1f}/{self._capacity:.1f}MB, "
            f"objects={len(self._objects)})"
        )
