"""Cache substrate: space-constrained object store and eviction policies.

The middleware cache in Delta holds whole data objects subject to a capacity
limit.  Which objects to keep is delegated to an *object caching algorithm*
(``A_obj`` in the paper's LoadManager pseudocode); the paper uses
Greedy-Dual-Size wrapped in a "lazy" admission layer.  This package provides:

* :mod:`repro.cache.store` -- the capacity-enforcing object store with
  per-object freshness/version bookkeeping shared by every policy,
* :mod:`repro.cache.base` -- the eviction-policy interface,
* :mod:`repro.cache.gds` -- Greedy-Dual-Size (Cao & Irani 1997),
* :mod:`repro.cache.lazy` -- the lazy admission wrapper from Section 4,
* :mod:`repro.cache.lru` / :mod:`repro.cache.lfu` -- classic baselines used
  in ablations,
* :mod:`repro.cache.landlord` -- the Landlord generalisation of GDS.
"""

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError
from repro.cache.gds import GreedyDualSize
from repro.cache.landlord import Landlord
from repro.cache.lazy import LazyAdmission
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.store import CacheStore, CachedObject

__all__ = [
    "EvictionPolicy",
    "PolicyIntrospectionError",
    "GreedyDualSize",
    "Landlord",
    "LazyAdmission",
    "LFUPolicy",
    "LRUPolicy",
    "CacheStore",
    "CachedObject",
]
