"""Greedy-Dual-Size (GDS) eviction.

GDS (Cao & Irani, USENIX 1997) is the object-caching algorithm the paper's
LoadManager builds on.  Each resident object ``o`` carries a credit

    H(o) = L + cost(o) / size(o)

where ``L`` is a global inflation value equal to the credit of the most
recently evicted object.  On a hit the credit is refreshed to the current
``L + cost/size``; the eviction victim is always the object with the smallest
credit.  The inflation term is what gives GDS its recency behaviour without
explicit timestamps, while the ``cost/size`` term prefers keeping objects that
are expensive to re-fetch per byte of cache they occupy.

For Delta the retrieval cost of an object equals its size (loading transfers
the whole object), so the ``cost/size`` ratio is 1 and GDS degenerates towards
LRU; the LoadManager, however, feeds *attributed query shipping cost* as the
cost term, which restores the cost-awareness (see
:class:`repro.core.load_manager.LoadManager`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError, registry


class GreedyDualSize(EvictionPolicy):
    """Greedy-Dual-Size eviction policy.

    Implementation notes: credits are kept in a dict and a lazily filtered
    heap (entries are invalidated rather than removed, the standard idiom for
    priority queues with updatable keys).
    """

    def __init__(self) -> None:
        self._inflation = 0.0
        self._credits: Dict[int, float] = {}
        self._costs: Dict[int, float] = {}
        self._sizes: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    def on_load(self, object_id: int, size: float, cost: float, timestamp: float) -> None:
        if size <= 0:
            raise ValueError(f"object {object_id} has non-positive size {size!r}")
        self._sizes[object_id] = size
        self._costs[object_id] = cost
        self._refresh(object_id)

    def on_hit(self, object_id: int, timestamp: float) -> None:
        if object_id not in self._sizes:
            raise KeyError(f"object {object_id} is not tracked by GDS")
        self._refresh(object_id)

    def on_evict(self, object_id: int) -> None:
        credit = self._credits.pop(object_id, None)
        self._sizes.pop(object_id, None)
        self._costs.pop(object_id, None)
        if credit is not None:
            # Inflate L to the evicted object's credit (never decrease).
            self._inflation = max(self._inflation, credit)

    def victim(self, resident: Iterable[int]) -> Optional[int]:
        resident_set = set(resident)
        if not resident_set:
            return None
        # Pop stale heap entries until a currently valid, resident one is found.
        while self._heap:
            credit, _, object_id = self._heap[0]
            current = self._credits.get(object_id)
            if current is None or abs(current - credit) > 1e-12 or object_id not in resident_set:
                heapq.heappop(self._heap)
                continue
            return object_id
        # Heap exhausted (all entries stale); fall back to a linear scan.
        # Sorted so equal-credit ties break on object id, not set order.
        candidates = [oid for oid in sorted(resident_set) if oid in self._credits]
        if not candidates:
            return None
        return min(candidates, key=lambda oid: self._credits[oid])

    def priority(self, object_id: int) -> float:
        try:
            return self._credits[object_id]
        except KeyError:
            raise PolicyIntrospectionError(
                f"GDS does not track object {object_id}"
            ) from None

    def reset(self) -> None:
        self._inflation = 0.0
        self._credits.clear()
        self._costs.clear()
        self._sizes.clear()
        self._heap.clear()

    # ------------------------------------------------------------------
    # Extra hooks used by the LoadManager
    # ------------------------------------------------------------------
    def boost_cost(self, object_id: int, extra_cost: float) -> None:
        """Increase the cost term of a tracked object and refresh its credit.

        The LoadManager uses this to credit an object with the shipping cost
        of queries that had to go to the server because the object was
        missing or newly loaded.
        """
        if object_id not in self._costs:
            raise KeyError(f"object {object_id} is not tracked by GDS")
        self._costs[object_id] += extra_cost
        self._refresh(object_id)

    @property
    def inflation(self) -> float:
        """Current value of the global inflation term ``L``."""
        return self._inflation

    def tracked_ids(self) -> List[int]:
        """Object ids currently tracked (resident from the policy's view)."""
        return list(self._credits)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh(self, object_id: int) -> None:
        credit = self._inflation + self._costs[object_id] / self._sizes[object_id]
        self._credits[object_id] = credit
        heapq.heappush(self._heap, (credit, next(self._counter), object_id))


registry.register("gds", GreedyDualSize)
