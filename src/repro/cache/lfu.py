"""Least-Frequently-Used eviction (ablation baseline).

LFU keeps a hit counter per object and evicts the least-used one, breaking
ties by least-recent use.  Like LRU it ignores sizes and costs; it is included
purely as an ablation point.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError, registry


class LFUPolicy(EvictionPolicy):
    """Classic LFU with LRU tie-breaking."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._last_used: Dict[int, float] = {}

    def on_load(self, object_id: int, size: float, cost: float, timestamp: float) -> None:
        self._counts[object_id] = 0
        self._last_used[object_id] = timestamp

    def on_hit(self, object_id: int, timestamp: float) -> None:
        if object_id not in self._counts:
            raise KeyError(f"object {object_id} is not tracked by LFU")
        self._counts[object_id] += 1
        self._last_used[object_id] = timestamp

    def on_evict(self, object_id: int) -> None:
        self._counts.pop(object_id, None)
        self._last_used.pop(object_id, None)

    def victim(self, resident: Iterable[int]) -> Optional[int]:
        candidates = [oid for oid in resident if oid in self._counts]
        if not candidates:
            return None
        return min(candidates, key=lambda oid: (self._counts[oid], self._last_used[oid]))

    def priority(self, object_id: int) -> float:
        try:
            return float(self._counts[object_id])
        except KeyError:
            raise PolicyIntrospectionError(
                f"LFU does not track object {object_id}"
            ) from None

    def reset(self) -> None:
        self._counts.clear()
        self._last_used.clear()


registry.register("lfu", LFUPolicy)
