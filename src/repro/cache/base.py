"""Eviction-policy interface.

The LoadManager in VCover delegates "which objects should be resident" to an
object caching algorithm (``A_obj`` in the pseudocode), which the paper
instantiates with Greedy-Dual-Size.  We define a small interface so that GDS,
LRU, LFU and Landlord are interchangeable (used by the ablation experiments),
and so the lazy admission wrapper can compose with any of them.

A policy never talks to the network; it only ranks resident objects for
eviction and is notified of loads, hits and evictions so it can maintain its
internal bookkeeping.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List, Optional


class PolicyIntrospectionError(KeyError):
    """An introspection query (e.g. :meth:`EvictionPolicy.priority`) failed.

    Raised when a policy is asked about an object it is not currently
    tracking.  Subclasses ``KeyError`` so existing ``except KeyError``
    call sites keep working.
    """


class EvictionPolicy(abc.ABC):
    """Ranks resident objects for eviction.

    Implementations keep whatever per-object metadata they need (GDS credits,
    LRU timestamps, LFU counters) keyed by object id.  All costs and sizes are
    in MB.
    """

    @abc.abstractmethod
    def on_load(self, object_id: int, size: float, cost: float, timestamp: float) -> None:
        """Notify the policy that an object was loaded into the cache.

        ``cost`` is the retrieval (load) cost of the object, which for Delta
        equals its size; the two are passed separately because Landlord-style
        policies distinguish them.
        """

    @abc.abstractmethod
    def on_hit(self, object_id: int, timestamp: float) -> None:
        """Notify the policy that a query was answered from this object."""

    @abc.abstractmethod
    def on_evict(self, object_id: int) -> None:
        """Notify the policy that the object has been evicted."""

    @abc.abstractmethod
    def victim(self, resident: Iterable[int]) -> Optional[int]:
        """Choose the next eviction victim among ``resident`` object ids.

        Returns ``None`` when the policy has no opinion (e.g. nothing is
        resident).  The caller is responsible for actually evicting the object
        from the store and then calling :meth:`on_evict`.
        """

    def priority(self, object_id: int) -> float:
        """Current eviction priority of an object (lower = evicted sooner).

        Contract: every concrete policy implements this for the objects it
        tracks (GDS credits, LRU timestamps, LFU counters, Landlord
        effective credit) and raises :class:`PolicyIntrospectionError` for an
        object it is not tracking.  Exposed so tests and reports can inspect
        policy state; the returned scale is policy-specific and only
        comparable within one policy instance.
        """
        raise PolicyIntrospectionError(
            f"{type(self).__name__} does not implement priority introspection"
        )

    def reset(self) -> None:
        """Forget all per-object state (used between experiment repetitions)."""
        raise NotImplementedError


class PolicyRegistry:
    """Registry mapping policy names to factories, used by experiment configs."""

    def __init__(self) -> None:
        self._factories: Dict[str, type] = {}

    def register(self, name: str, factory: type) -> None:
        """Register a policy class under ``name``."""
        if name in self._factories:
            raise ValueError(f"policy {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, **kwargs: Any) -> EvictionPolicy:
        """Instantiate a registered policy."""
        try:
            factory = self._factories[name]
        except KeyError as exc:
            raise ValueError(
                f"unknown policy {name!r}; known: {sorted(self._factories)}"
            ) from exc
        return factory(**kwargs)

    def names(self) -> List[str]:
        """All registered policy names."""
        return sorted(self._factories)


#: Global registry populated by the concrete policy modules on import.
registry = PolicyRegistry()
