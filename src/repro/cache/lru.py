"""Least-Recently-Used eviction (ablation baseline).

LRU ignores object size and retrieval cost entirely; it is included so the
ablation experiments can show how much of VCover's advantage comes from the
cost/size awareness of Greedy-Dual-Size versus the decoupling framework
itself.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.cache.base import EvictionPolicy, PolicyIntrospectionError, registry


class LRUPolicy(EvictionPolicy):
    """Classic LRU over object ids."""

    def __init__(self) -> None:
        self._order: "OrderedDict[int, float]" = OrderedDict()

    def on_load(self, object_id: int, size: float, cost: float, timestamp: float) -> None:
        self._order.pop(object_id, None)
        self._order[object_id] = timestamp

    def on_hit(self, object_id: int, timestamp: float) -> None:
        if object_id not in self._order:
            raise KeyError(f"object {object_id} is not tracked by LRU")
        self._order.move_to_end(object_id)
        self._order[object_id] = timestamp

    def on_evict(self, object_id: int) -> None:
        self._order.pop(object_id, None)

    def victim(self, resident: Iterable[int]) -> Optional[int]:
        resident_set = set(resident)
        for object_id in self._order:
            if object_id in resident_set:
                return object_id
        return None

    def priority(self, object_id: int) -> float:
        try:
            return self._order[object_id]
        except KeyError:
            raise PolicyIntrospectionError(
                f"LRU does not track object {object_id}"
            ) from None

    def reset(self) -> None:
        self._order.clear()


registry.register("lru", LRUPolicy)
