"""Query template shapes.

The SDSS trace contains several kinds of queries -- range (cone) searches,
spatial self-joins, simple selections, aggregations and the occasional
full-sky scan -- with no single template dominating (Section 1 and 6.1).  The
decision framework only ever sees a query's object footprint and result cost,
so a template here is a small recipe for drawing those two quantities:

* how many objects the query touches (footprint breadth),
* how its result size scales with the total size of the touched objects
  (selectivity), and
* an illustrative SQL skeleton for examples and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.repository.queries import QueryTemplate


@dataclass(frozen=True)
class TemplateShape:
    """Statistical recipe for one query template.

    Attributes
    ----------
    name:
        One of :class:`repro.repository.queries.QueryTemplate`.
    min_objects / max_objects:
        Range of footprint sizes (number of objects accessed).
    selectivity_log_mean / selectivity_log_sigma:
        Parameters of the log-normal selectivity: the query's result cost is
        ``selectivity * total size of the touched objects`` where selectivity
        is drawn log-normally and clipped to ``max_selectivity``.
    max_selectivity:
        Hard cap on the selectivity (1.0 = the query may return everything).
    weight:
        Relative frequency of this template in the mix.
    sql_skeleton:
        Illustrative SQL with ``{predicate}`` placeholders.
    """

    name: str
    min_objects: int
    max_objects: int
    selectivity_log_mean: float
    selectivity_log_sigma: float
    max_selectivity: float
    weight: float
    sql_skeleton: str

    def draw_footprint_size(self, rng: np.random.Generator) -> int:
        """Number of objects the query touches."""
        return int(rng.integers(self.min_objects, self.max_objects + 1))

    def draw_selectivity(self, rng: np.random.Generator) -> float:
        """Fraction of the touched data returned as the result."""
        value = float(rng.lognormal(self.selectivity_log_mean, self.selectivity_log_sigma))
        return min(value, self.max_selectivity)


#: The default template mix, loosely calibrated to the SkyServer traffic
#: reports: selections and cone-search ranges dominate both the query count
#: and the result bytes (most astronomy traffic asks for objects in a small
#: sky region), spatial self-joins contribute a meaningful share of bytes
#: over slightly wider footprints, and wide scans are rare.
DEFAULT_TEMPLATES: Tuple[TemplateShape, ...] = (
    TemplateShape(
        name=QueryTemplate.SELECTION,
        min_objects=1,
        max_objects=2,
        selectivity_log_mean=-6.0,
        selectivity_log_sigma=1.2,
        max_selectivity=0.1,
        weight=0.45,
        sql_skeleton=(
            "SELECT objID, ra, dec, u, g, r, i, z FROM PhotoObj "
            "WHERE {predicate}"
        ),
    ),
    TemplateShape(
        name=QueryTemplate.RANGE,
        min_objects=1,
        max_objects=3,
        selectivity_log_mean=-5.2,
        selectivity_log_sigma=1.0,
        max_selectivity=0.25,
        weight=0.32,
        sql_skeleton=(
            "SELECT p.* FROM PhotoObj p JOIN dbo.fGetNearbyObjEq({ra}, {dec}, {radius}) n "
            "ON p.objID = n.objID"
        ),
    ),
    TemplateShape(
        name=QueryTemplate.SPATIAL_JOIN,
        min_objects=2,
        max_objects=4,
        selectivity_log_mean=-5.5,
        selectivity_log_sigma=1.0,
        max_selectivity=0.25,
        weight=0.12,
        sql_skeleton=(
            "SELECT p1.objID, p2.objID FROM PhotoObj p1 JOIN PhotoObj p2 "
            "ON p1.htmID BETWEEN p2.htmID - 10 AND p2.htmID + 10 WHERE {predicate}"
        ),
    ),
    TemplateShape(
        name=QueryTemplate.AGGREGATION,
        min_objects=1,
        max_objects=5,
        selectivity_log_mean=-9.0,
        selectivity_log_sigma=0.8,
        max_selectivity=0.01,
        weight=0.09,
        sql_skeleton=(
            "SELECT COUNT(*), AVG(r) FROM PhotoObj WHERE {predicate} GROUP BY run"
        ),
    ),
    TemplateShape(
        name=QueryTemplate.FULL_SCAN,
        min_objects=3,
        max_objects=10,
        selectivity_log_mean=-5.0,
        selectivity_log_sigma=0.8,
        max_selectivity=0.15,
        weight=0.02,
        sql_skeleton="SELECT * FROM PhotoObj WHERE {predicate}",
    ),
)


#: Memoised normalised weight vectors keyed by the raw weight tuple.  The
#: normalisation is a pure function of the weights, yet it used to run once
#: per generated query; the cache makes repeat calls O(1) without changing
#: the returned values (callers must not mutate the cached array).
_NORMALIZED_WEIGHTS_CACHE: Dict[Tuple[float, ...], np.ndarray] = {}


def normalized_weights(templates: Sequence[TemplateShape]) -> np.ndarray:
    """Template weights normalised to sum to 1."""
    raw = tuple(template.weight for template in templates)
    cached = _NORMALIZED_WEIGHTS_CACHE.get(raw)
    if cached is not None:
        return cached
    weights = np.array(raw, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ValueError("template weights must sum to a positive value")
    weights /= total
    weights.setflags(write=False)
    _NORMALIZED_WEIGHTS_CACHE[raw] = weights
    return weights


def choose_template(
    templates: Sequence[TemplateShape], rng: np.random.Generator
) -> TemplateShape:
    """Draw one template according to the (normalised) weights."""
    weights = normalized_weights(templates)
    index = int(rng.choice(len(templates), p=weights))
    return templates[index]


def template_mix_summary(templates: Sequence[TemplateShape]) -> Dict[str, float]:
    """Mapping of template name to normalised weight, for reports."""
    weights = normalized_weights(templates)
    return {template.name: float(weight) for template, weight in zip(templates, weights, strict=True)}
