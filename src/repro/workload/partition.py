"""Partitioning one trace across a fleet of middleware caches.

The multi-cache topology (:mod:`repro.topology`) replays one interleaved
trace against N cooperating sites that share a single backend repository.
Queries are *split*: each query is routed to exactly one site, the one that
owns most of the objects it touches.  Updates are *broadcast*: every site's
policy observes every update, because any site may hold a resident copy of
the updated object (the repository itself ingests each update only once).

:class:`TracePartitioner` owns the object-to-site assignment and the query
routing.  Two assignment strategies are provided:

* ``"region"`` -- contiguous sky slices
  (:func:`repro.sky.partition.contiguous_sky_slices`): object ids are
  contiguous over the sky, so each site serves a spatially compact region,
  the deployment shape of per-continent mirror sites;
* ``"affinity"`` -- hotspot affinity: objects are ranked by how many queries
  touch them and greedily assigned to the least-loaded site, spreading the
  hot objects evenly, the shape of a load-balanced cache fleet.

Both strategies are deterministic functions of the trace and the site count,
so a partitioned replay is as reproducible as a single-cache one.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.repository.queries import Query
from repro.sky.partition import contiguous_sky_slices
from repro.workload.trace import QueryEvent, Trace, TraceStream, UpdateEvent

#: Known object-to-site assignment strategies.
PARTITION_STRATEGIES = ("region", "affinity")


class TracePartitioner:
    """Assigns objects to sites and routes queries to their site.

    Parameters
    ----------
    object_ids:
        Every object id the trace may touch (typically the catalogue's ids).
    site_count:
        Number of sites to split across (>= 1).
    strategy:
        ``"region"`` or ``"affinity"`` (see module docstring).
    query_counts:
        Per-object query-touch counts, required by the ``"affinity"``
        strategy (use :meth:`for_trace` to compute them from a trace).
    """

    def __init__(
        self,
        object_ids: Sequence[int],
        site_count: int,
        strategy: str = "region",
        query_counts: Optional[Mapping[int, int]] = None,
    ) -> None:
        if site_count < 1:
            raise ValueError("site_count must be at least 1")
        if strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; "
                f"known: {PARTITION_STRATEGIES}"
            )
        self._site_count = site_count
        self._strategy = strategy
        if strategy == "region":
            slices = contiguous_sky_slices(object_ids, site_count)
            self._assignment = {
                object_id: site
                for site, ids in enumerate(slices)
                for object_id in ids
            }
        else:
            if not query_counts:
                # Without counts every load stays 0 and the greedy assignment
                # degenerates to "everything on site 0" -- refuse loudly.
                raise ValueError(
                    "the affinity strategy needs per-object query counts; "
                    "use TracePartitioner.for_trace(...) or pass query_counts"
                )
            self._assignment = _affinity_assignment(
                object_ids, site_count, dict(query_counts)
            )

    @classmethod
    def for_trace(
        cls,
        object_ids: Sequence[int],
        site_count: int,
        trace: TraceStream,
        strategy: str = "region",
    ) -> "TracePartitioner":
        """Build a partitioner for a trace (computes affinity counts).

        ``trace`` may be any :class:`~repro.workload.trace.TraceStream`; the
        ``affinity`` strategy makes one streaming pass over its queries.
        """
        counts: Dict[int, int] = {}
        if strategy == "affinity":
            for query in trace.queries():
                for object_id in query.object_ids:
                    counts[object_id] = counts.get(object_id, 0) + 1
        return cls(object_ids, site_count, strategy=strategy, query_counts=counts)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def site_count(self) -> int:
        """Number of sites."""
        return self._site_count

    @property
    def strategy(self) -> str:
        """The assignment strategy."""
        return self._strategy

    @property
    def assignment(self) -> Dict[int, int]:
        """Object id to site index mapping (a copy)."""
        return dict(self._assignment)

    def objects_of_site(self, site: int) -> List[int]:
        """Sorted object ids owned by one site."""
        return sorted(
            object_id for object_id, owner in self._assignment.items() if owner == site
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def site_of_query(self, query: Query) -> int:
        """The site a query is routed to.

        Majority vote over the objects the query touches (footprints are
        spatially coherent, so under the region strategy this is almost
        always unanimous); ties break to the lowest site index so routing is
        deterministic.
        """
        votes = [0] * self._site_count
        for object_id in query.object_ids:
            site = self._assignment.get(object_id)
            if site is not None:
                votes[site] += 1
        best = 0
        for site in range(1, self._site_count):
            if votes[site] > votes[best]:
                best = site
        return best

    def split(self, trace: Trace) -> List[Trace]:
        """Per-site traces: every update, plus the site's own queries.

        A convenience view for replaying one site in isolation with the
        single-cache engine; :class:`repro.sim.multicache.MultiCacheEngine`
        routes over the shared stream instead (one repository ingest per
        update).
        """
        per_site: List[List] = [[] for _ in range(self._site_count)]
        for event in trace:
            if isinstance(event, UpdateEvent):
                for events in per_site:
                    events.append(event)
            elif isinstance(event, QueryEvent):
                per_site[self.site_of_query(event.query)].append(event)
        return [Trace(events) for events in per_site]

    def describe(self) -> Dict[str, float]:
        """Summary statistics (objects per site) for reports."""
        data: Dict[str, float] = {
            "site_count": float(self._site_count),
            "objects": float(len(self._assignment)),
        }
        for site in range(self._site_count):
            data[f"site{site}_objects"] = float(len(self.objects_of_site(site)))
        return data


def _affinity_assignment(
    object_ids: Sequence[int], site_count: int, query_counts: Mapping[int, int]
) -> Dict[int, int]:
    """Greedy load-balanced assignment: hottest objects first, least-loaded site.

    Objects are ranked by query-touch count (ties by id, so the result is
    deterministic); each is assigned to the site with the smallest
    accumulated count (ties to the lowest site index).
    """
    ranked = sorted(object_ids, key=lambda oid: (-query_counts.get(oid, 0), oid))
    load = [0] * site_count
    assignment: Dict[int, int] = {}
    for object_id in ranked:
        site = min(range(site_count), key=lambda s: (load[s], s))
        assignment[object_id] = site
        load[site] += query_counts.get(object_id, 0)
    return assignment
