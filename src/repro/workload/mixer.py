"""Interleaving query and update streams into a single trace.

The simulator consumes one time-ordered event stream.  The mixer takes a
query stream and an update stream (each in its own order), assigns them
interleaved integer timestamps and emits :class:`repro.workload.trace`
events.  Two faces are provided:

* :func:`iter_interleaved` -- the streaming face: consumes the two streams
  lazily and yields re-stamped events one at a time, so workloads can be
  mixed without ever materialising either side (the
  :class:`repro.workload.trace.TraceStream` pipeline builds on this);
* :func:`interleave` -- the materialised face: the same merge collected into
  a :class:`repro.workload.trace.Trace`.  It is a thin wrapper over the
  streaming generator, so the two can never drift apart.

Two interleaving modes are provided:

* ``uniform`` -- events from the two streams are merged so that they are
  spread evenly across the whole trace (the default; matches the paper's
  roughly 1:1 query:update event mix).  The schedule is computed
  incrementally in O(1) per event.
* ``random`` -- the merge order is a random shuffle (seeded), which keeps
  the relative order within each stream but randomises the interleaving.
  This mode holds one boolean per event (a NumPy bool array, 1 byte/event)
  while streaming.

Both modes preserve the internal order of each stream, which is what the
generators' hotspot/scan evolution assumes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Literal, Sequence

import numpy as np

from repro.repository.queries import Query
from repro.repository.updates import Update
from repro.workload.trace import QueryEvent, Trace, TraceEvent, UpdateEvent


def _restamp_query(query: Query, timestamp: float) -> Query:
    return Query(
        query_id=query.query_id,
        object_ids=query.object_ids,
        cost=query.cost,
        timestamp=timestamp,
        tolerance=query.tolerance,
        template=query.template,
        sql=query.sql,
    )


def _restamp_update(update: Update, timestamp: float) -> Update:
    return Update(
        update_id=update.update_id,
        object_id=update.object_id,
        cost=update.cost,
        timestamp=timestamp,
        kind=update.kind,
        rows=update.rows,
    )


def iter_schedule(
    query_count: int,
    update_count: int,
    mode: Literal["uniform", "random"] = "uniform",
    seed: int = 99,
) -> Iterator[bool]:
    """Yield the merge schedule (True = query slot) one position at a time."""
    if mode == "uniform":
        yield from _iter_uniform_schedule(query_count, update_count)
    elif mode == "random":
        rng = np.random.default_rng(seed)
        # One byte per event (shuffle consumes the RNG identically however
        # the array was built, so this matches the historical list form).
        schedule = np.zeros(query_count + update_count, dtype=bool)
        schedule[:query_count] = True
        rng.shuffle(schedule)
        for slot in schedule:
            yield bool(slot)
    else:
        raise ValueError(f"unknown interleave mode {mode!r}")


def iter_interleaved(
    queries: Iterable[Query],
    updates: Iterable[Update],
    query_count: int,
    update_count: int,
    mode: Literal["uniform", "random"] = "uniform",
    seed: int = 99,
) -> Iterator[TraceEvent]:
    """Merge two event streams lazily into one re-stamped event stream.

    Timestamps are consecutive integers starting at 1, one per event, so that
    event-sequence position and simulated time coincide (the paper's x-axes
    are event-sequence positions).  The streams are consumed one element at a
    time; nothing is materialised beyond the ``random``-mode schedule.

    Parameters
    ----------
    queries / updates:
        The two streams; internal order is preserved.  They must produce
        exactly ``query_count`` / ``update_count`` elements.
    query_count / update_count:
        Stream lengths (needed up front to build the schedule).
    mode:
        ``"uniform"`` spreads each stream evenly over the trace;
        ``"random"`` shuffles the merge order (seeded).
    seed:
        RNG seed for ``"random"`` mode.
    """
    query_iter = iter(queries)
    update_iter = iter(updates)
    queries_taken = 0
    updates_taken = 0
    position = 0
    for take_query in iter_schedule(query_count, update_count, mode=mode, seed=seed):
        timestamp = float(position + 1)
        position += 1
        if take_query and queries_taken < query_count:
            yield QueryEvent(_restamp_query(next(query_iter), timestamp))
            queries_taken += 1
        elif updates_taken < update_count:
            yield UpdateEvent(_restamp_update(next(update_iter), timestamp))
            updates_taken += 1
        else:
            yield QueryEvent(_restamp_query(next(query_iter), timestamp))
            queries_taken += 1


def interleave(
    queries: Sequence[Query],
    updates: Sequence[Update],
    mode: Literal["uniform", "random"] = "uniform",
    seed: int = 99,
) -> Trace:
    """Merge queries and updates into one materialised trace.

    A thin wrapper over :func:`iter_interleaved`; see it for the schedule and
    timestamp semantics.
    """
    if len(queries) + len(updates) == 0:
        return Trace([])
    return Trace(
        iter_interleaved(
            queries, updates, len(queries), len(updates), mode=mode, seed=seed
        )
    )


def _iter_uniform_schedule(query_count: int, update_count: int) -> Iterator[bool]:
    """Evenly interleave two stream lengths (True = query slot), lazily."""
    total = query_count + update_count
    if total == 0:
        return
    if query_count == 0:
        for _ in range(total):
            yield False
        return
    if update_count == 0:
        for _ in range(total):
            yield True
        return
    query_taken = 0
    update_taken = 0
    for _ in range(total):
        # Take from whichever stream is behind its proportional pace.
        query_pace = (query_taken + 1) / query_count
        update_pace = (update_taken + 1) / update_count
        if query_taken < query_count and (
            update_taken >= update_count or query_pace <= update_pace
        ):
            yield True
            query_taken += 1
        else:
            yield False
            update_taken += 1
