"""Interleaving query and update streams into a single trace.

The simulator consumes one time-ordered event stream.  The mixer takes a list
of queries and a list of updates (each in its own order), assigns them
interleaved integer timestamps and returns a :class:`repro.workload.trace.Trace`.

Two interleaving modes are provided:

* ``uniform`` -- events from the two streams are merged so that they are
  spread evenly across the whole trace (the default; matches the paper's
  roughly 1:1 query:update event mix),
* ``random`` -- the merge order is a random shuffle (seeded), which keeps the
  relative order within each stream but randomises the interleaving.

Both modes preserve the internal order of each stream, which is what the
generators' hotspot/scan evolution assumes.
"""

from __future__ import annotations

from typing import List, Literal, Sequence

import numpy as np

from repro.repository.queries import Query
from repro.repository.updates import Update
from repro.workload.trace import QueryEvent, Trace, UpdateEvent


def _restamp_query(query: Query, timestamp: float) -> Query:
    return Query(
        query_id=query.query_id,
        object_ids=query.object_ids,
        cost=query.cost,
        timestamp=timestamp,
        tolerance=query.tolerance,
        template=query.template,
        sql=query.sql,
    )


def _restamp_update(update: Update, timestamp: float) -> Update:
    return Update(
        update_id=update.update_id,
        object_id=update.object_id,
        cost=update.cost,
        timestamp=timestamp,
        kind=update.kind,
        rows=update.rows,
    )


def interleave(
    queries: Sequence[Query],
    updates: Sequence[Update],
    mode: Literal["uniform", "random"] = "uniform",
    seed: int = 99,
) -> Trace:
    """Merge queries and updates into one trace with fresh timestamps.

    Timestamps are consecutive integers starting at 1, one per event, so that
    event-sequence position and simulated time coincide (the paper's x-axes
    are event-sequence positions).

    Parameters
    ----------
    queries / updates:
        The two streams; internal order is preserved.
    mode:
        ``"uniform"`` spreads each stream evenly over the trace;
        ``"random"`` shuffles the merge order (seeded).
    seed:
        RNG seed for ``"random"`` mode.
    """
    total = len(queries) + len(updates)
    if total == 0:
        return Trace([])

    # Build a boolean schedule: True -> next event comes from the query stream.
    if mode == "uniform":
        schedule = _uniform_schedule(len(queries), len(updates))
    elif mode == "random":
        rng = np.random.default_rng(seed)
        schedule = np.array([True] * len(queries) + [False] * len(updates))
        rng.shuffle(schedule)
        schedule = schedule.tolist()
    else:
        raise ValueError(f"unknown interleave mode {mode!r}")

    events = []
    query_index = 0
    update_index = 0
    for position, take_query in enumerate(schedule):
        timestamp = float(position + 1)
        if take_query and query_index < len(queries):
            events.append(QueryEvent(_restamp_query(queries[query_index], timestamp)))
            query_index += 1
        elif update_index < len(updates):
            events.append(UpdateEvent(_restamp_update(updates[update_index], timestamp)))
            update_index += 1
        else:
            events.append(QueryEvent(_restamp_query(queries[query_index], timestamp)))
            query_index += 1
    return Trace(events)


def _uniform_schedule(query_count: int, update_count: int) -> List[bool]:
    """Evenly interleave two stream lengths (True = query slot)."""
    total = query_count + update_count
    if total == 0:
        return []
    if query_count == 0:
        return [False] * total
    if update_count == 0:
        return [True] * total
    schedule: List[bool] = []
    query_taken = 0
    update_taken = 0
    for position in range(total):
        # Take from whichever stream is behind its proportional pace.
        query_pace = (query_taken + 1) / query_count
        update_pace = (update_taken + 1) / update_count
        if query_taken < query_count and (update_taken >= update_count or query_pace <= update_pace):
            schedule.append(True)
            query_taken += 1
        else:
            schedule.append(False)
            update_taken += 1
    return schedule
