"""Evolving hotspot model.

The paper stresses (design choice B, Figure 7a) that scientific query
workloads *evolve*: the set of heavily queried objects drifts over the trace,
entirely different object sets can dominate within a short period, and query
hotspots are largely disjoint from update hotspots.  Algorithms that assume a
stable workload (Benefit-style smoothing) are hurt by exactly this property,
which is what the evaluation demonstrates.

:class:`HotspotModel` produces that behaviour: the trace is divided into
*phases*; within each phase a small set of focus objects receives most of the
accesses (Zipf-weighted), the rest of the probability mass is spread
uniformly, and consecutive phases change part of the focus set.  The model is
shared by the query generator and (with a different focus set) the update
generator so the two streams have distinct hotspots by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class HotspotPhase:
    """One phase of the workload: a focus set and its access weights."""

    #: Index of the first event (within the generator's own stream) of this phase.
    start_index: int
    #: Object ids in the focus set, most popular first.
    focus: Sequence[int]
    #: Probability that an access goes to the focus set (vs. uniform background).
    focus_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.focus_probability <= 1.0:
            raise ValueError("focus_probability must lie in [0, 1]")
        if len(set(self.focus)) != len(self.focus):
            raise ValueError("focus set contains duplicate object ids")


class HotspotModel:
    """Drifting Zipf-over-focus-set access model.

    Parameters
    ----------
    object_ids:
        The universe of object ids accesses are drawn from.
    phase_length:
        Number of accesses per phase.
    focus_size:
        Number of objects in each phase's focus set.
    focus_probability:
        Probability that an access targets the focus set.
    drift:
        Fraction of the focus set replaced when moving to the next phase
        (``1.0`` = completely new hotspots every phase).
    zipf_exponent:
        Skew of accesses within the focus set.
    rng:
        NumPy random generator (injected for reproducibility).
    excluded:
        Optional object ids never chosen for focus sets (used to keep query
        and update hotspots disjoint, as in Figure 7a).
    contiguous:
        When ``True`` (the default) each focus set is a *contiguous block* of
        object ids.  Object ids are assigned contiguously over the sky, so a
        contiguous block models a sky-region hotspot: queries anchored inside
        it spill over to neighbouring objects that are also hot, which is what
        makes whole query footprints cacheable.  When ``False`` focus objects
        are sampled independently (scattered hotspots).
    """

    def __init__(
        self,
        object_ids: Sequence[int],
        phase_length: int,
        focus_size: int,
        focus_probability: float,
        drift: float,
        zipf_exponent: float,
        rng: np.random.Generator,
        excluded: Optional[Sequence[int]] = None,
        contiguous: bool = True,
    ) -> None:
        if phase_length <= 0:
            raise ValueError("phase_length must be positive")
        if focus_size <= 0:
            raise ValueError("focus_size must be positive")
        if not 0.0 <= drift <= 1.0:
            raise ValueError("drift must lie in [0, 1]")
        if not 0.0 <= focus_probability <= 1.0:
            raise ValueError("focus_probability must lie in [0, 1]")
        self._object_ids = list(object_ids)
        if not self._object_ids:
            raise ValueError("object_ids must be non-empty")
        excluded_set = set(excluded or ())
        self._eligible = [oid for oid in self._object_ids if oid not in excluded_set]
        if not self._eligible:
            raise ValueError("every object is excluded from focus sets")
        self._phase_length = phase_length
        self._focus_size = min(focus_size, len(self._eligible))
        self._focus_probability = focus_probability
        self._drift = drift
        self._zipf_exponent = zipf_exponent
        self._rng = rng
        self._contiguous = contiguous
        self._phases: List[HotspotPhase] = []
        self._access_index = 0
        self._current_focus: List[int] = []
        #: Memoised Zipf weight vectors per focus size (pure function of the
        #: exponent and the count; recomputing one per access dominated trace
        #: generation).
        self._zipf_cache: Dict[int, np.ndarray] = {}
        #: Start index (into the eligible list) of the current contiguous block.
        self._block_start = int(self._rng.integers(0, len(self._eligible)))
        self._start_new_phase()

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------
    def _contiguous_block(self, start: int) -> List[int]:
        """A focus-sized contiguous run of eligible ids starting at ``start``."""
        count = len(self._eligible)
        return [self._eligible[(start + offset) % count] for offset in range(self._focus_size)]

    def _start_new_phase(self) -> None:
        if self._contiguous:
            if self._current_focus:
                # Shift the block proportionally to the drift: a drift of 0.5
                # replaces half the block, a drift of 1.0 jumps to a fresh one.
                if self._drift >= 1.0:
                    self._block_start = int(self._rng.integers(0, len(self._eligible)))
                else:
                    shift = max(0, int(round(self._focus_size * self._drift)))
                    self._block_start = (self._block_start + shift) % len(self._eligible)
            focus = self._contiguous_block(self._block_start)
        elif not self._current_focus:
            focus = list(
                self._rng.choice(self._eligible, size=self._focus_size, replace=False)
            )
        else:
            keep_count = int(round(self._focus_size * (1.0 - self._drift)))
            kept = self._current_focus[:keep_count]
            pool = [oid for oid in self._eligible if oid not in kept]
            new_count = self._focus_size - len(kept)
            newcomers = (
                list(self._rng.choice(pool, size=new_count, replace=False))
                if new_count > 0 and pool
                else []
            )
            focus = kept + newcomers
            self._rng.shuffle(focus)
        self._current_focus = [int(oid) for oid in focus]
        self._phases.append(
            HotspotPhase(
                start_index=self._access_index,
                focus=tuple(self._current_focus),
                focus_probability=self._focus_probability,
            )
        )

    @property
    def phases(self) -> List[HotspotPhase]:
        """All phases started so far."""
        return list(self._phases)

    @property
    def current_focus(self) -> List[int]:
        """The focus set of the current phase."""
        return list(self._current_focus)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _zipf_weights(self, count: int) -> np.ndarray:
        cached = self._zipf_cache.get(count)
        if cached is not None:
            return cached
        ranks = np.arange(1, count + 1, dtype=float)
        weights = 1.0 / np.power(ranks, self._zipf_exponent)
        weights /= weights.sum()
        weights.setflags(write=False)
        self._zipf_cache[count] = weights
        return weights

    def next_object(self) -> int:
        """Draw the object id targeted by the next access."""
        if self._access_index > 0 and self._access_index % self._phase_length == 0:
            self._start_new_phase()
        self._access_index += 1
        if self._rng.random() < self._focus_probability:
            weights = self._zipf_weights(len(self._current_focus))
            index = int(self._rng.choice(len(self._current_focus), p=weights))
            return self._current_focus[index]
        return int(self._rng.choice(self._object_ids))

    def next_objects(self, count: int) -> List[int]:
        """Draw ``count`` access targets (advancing the phase clock)."""
        return [self.next_object() for _ in range(count)]

    def access_histogram(self, samples: int) -> Dict[int, int]:
        """Draw ``samples`` accesses and histogram them (testing/diagnostics).

        Note this *advances* the model, so use a throwaway instance.
        """
        counts: Dict[int, int] = {}
        for _ in range(samples):
            object_id = self.next_object()
            counts[object_id] = counts.get(object_id, 0) + 1
        return counts
