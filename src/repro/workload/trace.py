"""Trace model: interleaved sequences of query and update events.

A *trace* is the unit the simulator consumes: a time-ordered sequence of
events, each either a query arriving at the cache or an update arriving at
the repository.  Events wrap the :class:`repro.repository.queries.Query` and
:class:`repro.repository.updates.Update` domain objects and add nothing but a
uniform ``timestamp`` / ``kind`` accessor, so policies can iterate one stream.

Two kinds of event source live here:

* :class:`TraceStream` -- the source contract the simulation engines replay:
  a restartable, deterministic, time-ordered event sequence of known length.
  Streams never have to materialise their events, so workloads far larger
  than memory can be replayed in (near-)constant RSS; see
  :mod:`repro.workload.stream` and :mod:`repro.workload.scenarios` for the
  lazily-generated implementations.
* :class:`Trace` -- the concrete, fully-materialised source.  It keeps every
  event in a list, supports JSONL (one event per line) round-trips so that
  generated workloads can be persisted, diffed and replayed, plus the
  slicing/statistics helpers used throughout the experiments and reports.
  :meth:`Trace.slice_events` returns a :class:`TraceView` -- a zero-copy
  window over the parent's event list.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro._compat import SlottedFrozenPickle
from repro.repository.queries import Query
from repro.repository.updates import Update

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (columns uses trace)
    from repro.workload.columns import TraceColumns


@dataclass(frozen=True, slots=True)
class QueryEvent(SlottedFrozenPickle):
    """A query arriving at the middleware cache."""

    query: Query

    @property
    def timestamp(self) -> float:
        """Arrival time in event-sequence units."""
        return self.query.timestamp

    @property
    def kind(self) -> str:
        """Always ``"query"``."""
        return "query"


@dataclass(frozen=True, slots=True)
class UpdateEvent(SlottedFrozenPickle):
    """An update arriving at the repository."""

    update: Update

    @property
    def timestamp(self) -> float:
        """Arrival time in event-sequence units."""
        return self.update.timestamp

    @property
    def kind(self) -> str:
        """Always ``"update"``."""
        return "update"


TraceEvent = Union[QueryEvent, UpdateEvent]

#: ``(is_update, payload)`` pair -- the engines' dispatch form of one event.
TaggedEvent = Tuple[bool, Union[Query, Update]]


def tag_event(event: TraceEvent) -> TaggedEvent:
    """The ``(is_update, payload)`` dispatch form of one event."""
    if isinstance(event, UpdateEvent):
        return (True, event.update)
    if isinstance(event, QueryEvent):
        return (False, event.query)
    raise TypeError(f"unknown event type {type(event)!r}")


class TraceStream(abc.ABC):
    """Contract every replayable event source satisfies.

    A stream is a *restartable*, deterministic, time-ordered sequence of
    :data:`TraceEvent` of known length: every call to :meth:`iter_events`
    (or :meth:`iter_tagged`) yields the same events in the same order, and
    ``len(stream)`` is known without a pass.  Implementations are free to
    generate events lazily -- the simulation engines only ever make forward
    passes, so a lazily-generated stream is replayed in constant memory.

    Some consumers make more than one pass (offline preparation reads the
    query and update streams before the replay; sweeps record
    :meth:`describe` statistics), which restartability makes safe: each pass
    simply regenerates the sequence.
    """

    @abc.abstractmethod
    def iter_events(self) -> Iterator[TraceEvent]:
        """Yield every event in timestamp order (restartable)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total number of events (known without iterating)."""

    def __iter__(self) -> Iterator[TraceEvent]:
        return self.iter_events()

    def iter_tagged(self) -> Iterator[TaggedEvent]:
        """``(is_update, payload)`` pairs in event order (restartable).

        The engines' replay loops dispatch on the boolean tag instead of
        calling ``isinstance`` per event per policy run.
        """
        for event in self.iter_events():
            yield tag_event(event)

    def iter_chunks(self, size: int = 8192) -> Iterator[List[TraceEvent]]:
        """Events grouped into lists of at most ``size`` (batch consumers)."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        events = self.iter_events()
        while True:
            chunk = list(islice(events, size))
            if not chunk:
                return
            yield chunk

    def queries(self) -> Iterable[Query]:
        """All queries in order (lazy for generated streams)."""
        return (
            payload for is_update, payload in self.iter_tagged() if not is_update
        )

    def updates(self) -> Iterable[Update]:
        """All updates in order (lazy for generated streams)."""
        return (payload for is_update, payload in self.iter_tagged() if is_update)

    def total_query_cost(self) -> float:
        """Sum of query shipping costs (the NoCache total)."""
        return sum(query.cost for query in self.queries())

    def total_update_cost(self) -> float:
        """Sum of update shipping costs (the Replica total, ignoring loads)."""
        return sum(update.cost for update in self.updates())

    def describe(self) -> Dict[str, float]:
        """Summary statistics for reports, computed in one streaming pass."""
        queries = updates = 0
        query_cost = update_cost = 0.0
        for is_update, payload in self.iter_tagged():
            if is_update:
                updates += 1
                update_cost += payload.cost
            else:
                queries += 1
                query_cost += payload.cost
        return {
            "events": float(queries + updates),
            "queries": float(queries),
            "updates": float(updates),
            "total_query_cost": query_cost,
            "total_update_cost": update_cost,
        }

    def materialise(self) -> "Trace":
        """A fully-materialised :class:`Trace` holding this stream's events."""
        return Trace(self.iter_events())


class Trace(TraceStream):
    """A time-ordered sequence of query and update events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._events: List[TraceEvent] = list(events)
        for earlier, later in zip(self._events, self._events[1:], strict=False):
            if later.timestamp < earlier.timestamp - 1e-9:
                raise ValueError(
                    "trace events must be ordered by timestamp; "
                    f"{later.timestamp!r} follows {earlier.timestamp!r}"
                )
        #: Lazily built (kind, payload) view used by the replay hot loop.
        self._tagged: Optional[List[Tuple[bool, Union[Query, Update]]]] = None
        #: Lazily compiled columnar view used by the batched replay path.
        self._columns: Optional["TraceColumns"] = None

    # ------------------------------------------------------------------
    # Pickling (sweeps ship traces to worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the events; the tagged view is rebuilt on demand."""
        return {"_events": self._events}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._events = state["_events"]
        self._tagged = None
        self._columns = None

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: Union[int, slice]) -> Union[TraceEvent, "Trace"]:
        result = self._events[index]
        if isinstance(index, slice):
            return Trace(result)
        return result

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def iter_events(self) -> Iterator[TraceEvent]:
        """Iterate the materialised event list (the stream contract)."""
        return iter(self._events)

    def iter_tagged(self) -> Iterator[Tuple[bool, Union[Query, Update]]]:
        """Iterate the cached ``(is_update, payload)`` view (hot path)."""
        return iter(self.tagged_events())

    def materialise(self) -> "Trace":
        """Already materialised: return self."""
        return self

    def tagged_events(self) -> List[Tuple[bool, Union[Query, Update]]]:
        """``(is_update, payload)`` pairs in event order, built once.

        The simulation engines dispatch on the boolean tag instead of calling
        ``isinstance`` twice per event per policy run; the list is cached on
        the trace because every policy in a comparison replays the same one.
        """
        tagged = self._tagged
        if tagged is None:
            tagged = [tag_event(event) for event in self._events]
            self._tagged = tagged
        return tagged

    def columns(self) -> "TraceColumns":
        """The columnar (struct-of-arrays) compilation of this trace.

        Compiled once and cached -- every batched policy run in a comparison
        replays the same arrays.  Requires numpy (see
        :mod:`repro.workload.columns`); the engines check
        ``COLUMNS_AVAILABLE`` before asking for it.
        """
        cols = self._columns
        if cols is None:
            from repro.workload.columns import TraceColumns

            cols = TraceColumns.from_tagged(self.tagged_events())
            self._columns = cols
        return cols

    def queries(self) -> List[Query]:
        """All queries in order."""
        return [event.query for event in self._events if isinstance(event, QueryEvent)]

    def updates(self) -> List[Update]:
        """All updates in order."""
        return [event.update for event in self._events if isinstance(event, UpdateEvent)]

    @property
    def query_count(self) -> int:
        """Number of query events."""
        return sum(1 for event in self._events if isinstance(event, QueryEvent))

    @property
    def update_count(self) -> int:
        """Number of update events."""
        return sum(1 for event in self._events if isinstance(event, UpdateEvent))

    def slice_events(self, start: int, stop: Optional[int] = None) -> "TraceView":
        """Zero-copy sub-trace by event index (used to skip warm-up periods).

        Returns a :class:`TraceView` backed by this trace's event list, so
        repeated warm-up splits in a sweep cost O(1) each instead of copying
        the tail of the trace every time (quadratic over a split grid).
        """
        return TraceView(self, start, stop)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_query_cost(self) -> float:
        """Sum of query shipping costs (the NoCache total)."""
        return sum(query.cost for query in self.queries())

    def total_update_cost(self) -> float:
        """Sum of update shipping costs (the Replica total, ignoring loads)."""
        return sum(update.cost for update in self.updates())

    def objects_touched(self) -> Dict[int, int]:
        """How many events touched each object id (queries and updates)."""
        counts: Dict[int, int] = {}
        for event in self._events:
            if isinstance(event, QueryEvent):
                for object_id in event.query.object_ids:
                    counts[object_id] = counts.get(object_id, 0) + 1
            else:
                object_id = event.update.object_id
                counts[object_id] = counts.get(object_id, 0) + 1
        return counts

    def query_hotspots(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` most-queried object ids with their access counts."""
        counts: Dict[int, int] = {}
        for query in self.queries():
            for object_id in query.object_ids:
                counts[object_id] = counts.get(object_id, 0) + 1
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)[:top]

    def update_hotspots(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` most-updated object ids with their update counts."""
        counts: Dict[int, int] = {}
        for update in self.updates():
            counts[update.object_id] = counts.get(update.object_id, 0) + 1
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)[:top]

    def describe(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "events": float(len(self._events)),
            "queries": float(self.query_count),
            "updates": float(self.update_count),
            "total_query_cost": self.total_query_cost(),
            "total_update_cost": self.total_update_cost(),
        }

    # ------------------------------------------------------------------
    # Persistence (JSONL)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace to a JSONL file, one event per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")

    @staticmethod
    def from_jsonl(path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`to_jsonl`."""
        path = Path(path)
        events: List[TraceEvent] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                events.append(event_from_dict(json.loads(line)))
        return Trace(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(events={len(self._events)}, queries={self.query_count}, updates={self.update_count})"


class TraceView(TraceStream):
    """A zero-copy window over a :class:`Trace`'s event list.

    The view holds only the parent trace and the resolved ``[start, stop)``
    index range, so slicing is O(1) regardless of the trace length.  It
    satisfies the full :class:`TraceStream` contract (iteration, statistics,
    ``materialise``); indexing is supported for spot checks, and nested
    slices stay views over the original list.
    """

    def __init__(self, parent: Trace, start: int, stop: Optional[int] = None) -> None:
        events = parent._events
        start, stop, _ = slice(start, stop).indices(len(events))
        self._parent = parent
        self._events = events
        self._start = start
        self._stop = max(start, stop)

    @property
    def parent(self) -> Trace:
        """The trace this view windows into."""
        return self._parent

    @property
    def start(self) -> int:
        """First event index of the window (resolved, inclusive)."""
        return self._start

    @property
    def stop(self) -> int:
        """Last event index of the window (resolved, exclusive)."""
        return self._stop

    def __len__(self) -> int:
        return self._stop - self._start

    def iter_events(self) -> Iterator[TraceEvent]:
        events = self._events
        for index in range(self._start, self._stop):
            yield events[index]

    def iter_tagged(self) -> Iterator[TaggedEvent]:
        """Window of the parent's cached tagged view (hot path)."""
        return islice(iter(self._parent.tagged_events()), self._start, self._stop)

    def columns(self) -> "TraceColumns":
        """This window of the parent's columnar compilation (near zero-copy)."""
        return self._parent.columns().window(self._start, self._stop)

    def __getitem__(self, index: int) -> TraceEvent:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ValueError("TraceView does not support extended slices")
            return TraceView(self._parent, self._start + start, self._start + stop)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace view index out of range")
        return self._events[self._start + index]

    def slice_events(self, start: int, stop: Optional[int] = None) -> "TraceView":
        """A nested zero-copy view (indices relative to this view)."""
        start, stop, _ = slice(start, stop).indices(len(self))
        return TraceView(self._parent, self._start + start, self._start + stop)

    @property
    def query_count(self) -> int:
        """Number of query events in the window (one pass)."""
        return sum(1 for is_update, _ in self.iter_tagged() if not is_update)

    @property
    def update_count(self) -> int:
        """Number of update events in the window (one pass)."""
        return sum(1 for is_update, _ in self.iter_tagged() if is_update)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceView(events={len(self)}, start={self._start}, stop={self._stop})"


def event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """Serialise one event to a plain JSON-compatible dict.

    This is the one event wire format: the JSONL trace files and the
    ``repro.serve`` NDJSON protocol both use it, so a persisted trace line
    and a served query frame payload can never drift apart.
    """
    if isinstance(event, QueryEvent):
        query = event.query
        return {
            "kind": "query",
            "query_id": query.query_id,
            "object_ids": sorted(query.object_ids),
            "cost": query.cost,
            "timestamp": query.timestamp,
            "tolerance": query.tolerance,
            "template": query.template,
        }
    update = event.update
    return {
        "kind": "update",
        "update_id": update.update_id,
        "object_id": update.object_id,
        "cost": update.cost,
        "timestamp": update.timestamp,
        "update_kind": update.kind,
        "rows": update.rows,
    }


def event_from_dict(payload: Dict[str, Any]) -> TraceEvent:
    """Deserialise one event from a plain dict (inverse of :func:`event_to_dict`)."""
    kind = payload.get("kind")
    if kind == "query":
        return QueryEvent(
            Query(
                query_id=int(payload["query_id"]),
                object_ids=frozenset(int(oid) for oid in payload["object_ids"]),
                cost=float(payload["cost"]),
                timestamp=float(payload["timestamp"]),
                tolerance=float(payload.get("tolerance", 0.0)),
                template=payload.get("template", "selection"),
            )
        )
    if kind == "update":
        return UpdateEvent(
            Update(
                update_id=int(payload["update_id"]),
                object_id=int(payload["object_id"]),
                cost=float(payload["cost"]),
                timestamp=float(payload["timestamp"]),
                kind=payload.get("update_kind", "insert"),
                rows=int(payload.get("rows", 0)),
            )
        )
    raise ValueError(f"unknown event kind {kind!r}")
