"""Trace model: interleaved sequences of query and update events.

A *trace* is the unit the simulator consumes: a time-ordered sequence of
events, each either a query arriving at the cache or an update arriving at
the repository.  Events wrap the :class:`repro.repository.queries.Query` and
:class:`repro.repository.updates.Update` domain objects and add nothing but a
uniform ``timestamp`` / ``kind`` accessor, so policies can iterate one stream.

Traces support JSONL (one event per line) round-trips so that generated
workloads can be persisted, diffed and replayed, and slicing/statistics
helpers used throughout the experiments and reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro._compat import SlottedFrozenPickle
from repro.repository.queries import Query
from repro.repository.updates import Update


@dataclass(frozen=True, slots=True)
class QueryEvent(SlottedFrozenPickle):
    """A query arriving at the middleware cache."""

    query: Query

    @property
    def timestamp(self) -> float:
        """Arrival time in event-sequence units."""
        return self.query.timestamp

    @property
    def kind(self) -> str:
        """Always ``"query"``."""
        return "query"


@dataclass(frozen=True, slots=True)
class UpdateEvent(SlottedFrozenPickle):
    """An update arriving at the repository."""

    update: Update

    @property
    def timestamp(self) -> float:
        """Arrival time in event-sequence units."""
        return self.update.timestamp

    @property
    def kind(self) -> str:
        """Always ``"update"``."""
        return "update"


TraceEvent = Union[QueryEvent, UpdateEvent]


class Trace:
    """A time-ordered sequence of query and update events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._events: List[TraceEvent] = list(events)
        for earlier, later in zip(self._events, self._events[1:]):
            if later.timestamp < earlier.timestamp - 1e-9:
                raise ValueError(
                    "trace events must be ordered by timestamp; "
                    f"{later.timestamp!r} follows {earlier.timestamp!r}"
                )
        #: Lazily built (kind, payload) view used by the replay hot loop.
        self._tagged: Optional[List[Tuple[bool, Union[Query, Update]]]] = None

    # ------------------------------------------------------------------
    # Pickling (sweeps ship traces to worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the events; the tagged view is rebuilt on demand."""
        return {"_events": self._events}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._events = state["_events"]
        self._tagged = None

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        result = self._events[index]
        if isinstance(index, slice):
            return Trace(result)
        return result

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def tagged_events(self) -> List[Tuple[bool, Union[Query, Update]]]:
        """``(is_update, payload)`` pairs in event order, built once.

        The simulation engines dispatch on the boolean tag instead of calling
        ``isinstance`` twice per event per policy run; the list is cached on
        the trace because every policy in a comparison replays the same one.
        """
        tagged = self._tagged
        if tagged is None:
            tagged = []
            for event in self._events:
                if isinstance(event, UpdateEvent):
                    tagged.append((True, event.update))
                elif isinstance(event, QueryEvent):
                    tagged.append((False, event.query))
                else:
                    raise TypeError(f"unknown event type {type(event)!r}")
            self._tagged = tagged
        return tagged

    def queries(self) -> List[Query]:
        """All queries in order."""
        return [event.query for event in self._events if isinstance(event, QueryEvent)]

    def updates(self) -> List[Update]:
        """All updates in order."""
        return [event.update for event in self._events if isinstance(event, UpdateEvent)]

    @property
    def query_count(self) -> int:
        """Number of query events."""
        return sum(1 for event in self._events if isinstance(event, QueryEvent))

    @property
    def update_count(self) -> int:
        """Number of update events."""
        return sum(1 for event in self._events if isinstance(event, UpdateEvent))

    def slice_events(self, start: int, stop: Optional[int] = None) -> "Trace":
        """Sub-trace by event index (used to skip the warm-up period)."""
        return Trace(self._events[start:stop])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_query_cost(self) -> float:
        """Sum of query shipping costs (the NoCache total)."""
        return sum(query.cost for query in self.queries())

    def total_update_cost(self) -> float:
        """Sum of update shipping costs (the Replica total, ignoring loads)."""
        return sum(update.cost for update in self.updates())

    def objects_touched(self) -> Dict[int, int]:
        """How many events touched each object id (queries and updates)."""
        counts: Dict[int, int] = {}
        for event in self._events:
            if isinstance(event, QueryEvent):
                for object_id in event.query.object_ids:
                    counts[object_id] = counts.get(object_id, 0) + 1
            else:
                object_id = event.update.object_id
                counts[object_id] = counts.get(object_id, 0) + 1
        return counts

    def query_hotspots(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` most-queried object ids with their access counts."""
        counts: Dict[int, int] = {}
        for query in self.queries():
            for object_id in query.object_ids:
                counts[object_id] = counts.get(object_id, 0) + 1
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)[:top]

    def update_hotspots(self, top: int = 10) -> List[Tuple[int, int]]:
        """The ``top`` most-updated object ids with their update counts."""
        counts: Dict[int, int] = {}
        for update in self.updates():
            counts[update.object_id] = counts.get(update.object_id, 0) + 1
        return sorted(counts.items(), key=lambda item: item[1], reverse=True)[:top]

    def describe(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "events": float(len(self._events)),
            "queries": float(self.query_count),
            "updates": float(self.update_count),
            "total_query_cost": self.total_query_cost(),
            "total_update_cost": self.total_update_cost(),
        }

    # ------------------------------------------------------------------
    # Persistence (JSONL)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace to a JSONL file, one event per line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(_event_to_dict(event)) + "\n")

    @staticmethod
    def from_jsonl(path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`to_jsonl`."""
        path = Path(path)
        events: List[TraceEvent] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                events.append(_event_from_dict(json.loads(line)))
        return Trace(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(events={len(self._events)}, queries={self.query_count}, updates={self.update_count})"


def _event_to_dict(event: TraceEvent) -> Dict:
    """Serialise one event to a plain dict."""
    if isinstance(event, QueryEvent):
        query = event.query
        return {
            "kind": "query",
            "query_id": query.query_id,
            "object_ids": sorted(query.object_ids),
            "cost": query.cost,
            "timestamp": query.timestamp,
            "tolerance": query.tolerance,
            "template": query.template,
        }
    update = event.update
    return {
        "kind": "update",
        "update_id": update.update_id,
        "object_id": update.object_id,
        "cost": update.cost,
        "timestamp": update.timestamp,
        "update_kind": update.kind,
        "rows": update.rows,
    }


def _event_from_dict(payload: Dict) -> TraceEvent:
    """Deserialise one event from a plain dict."""
    kind = payload.get("kind")
    if kind == "query":
        return QueryEvent(
            Query(
                query_id=int(payload["query_id"]),
                object_ids=frozenset(int(oid) for oid in payload["object_ids"]),
                cost=float(payload["cost"]),
                timestamp=float(payload["timestamp"]),
                tolerance=float(payload.get("tolerance", 0.0)),
                template=payload.get("template", "selection"),
            )
        )
    if kind == "update":
        return UpdateEvent(
            Update(
                update_id=int(payload["update_id"]),
                object_id=int(payload["object_id"]),
                cost=float(payload["cost"]),
                timestamp=float(payload["timestamp"]),
                kind=payload.get("update_kind", "insert"),
                rows=int(payload.get("rows", 0)),
            )
        )
    raise ValueError(f"unknown event kind {kind!r}")
