"""Workload substrate: traces, generators and hotspot models.

The paper drives its evaluation with ~250,000 real SDSS queries (Jan-Feb
2009) interleaved with ~250,000 simulated updates whose spatial pattern
mimics how survey telescopes scan the sky.  Neither trace is publicly
redistributable, so this package generates synthetic traces that reproduce
the documented statistical properties:

* queries access sets of spatial data objects with heavy-tailed result sizes
  and **evolving hotspots** (Figure 7a: query hotspots drift over time and are
  largely disjoint from update hotspots),
* a mix of query templates (range / spatial self-join / selection /
  aggregation) with no single dominating shape,
* early queries have small result costs, producing the long cache warm-up the
  paper describes,
* updates cluster along great-circle scans and have sizes proportional to the
  density of the object they hit, calibrated to ~100 GB/day of update traffic.

The trace model (:mod:`repro.workload.trace`) is policy-agnostic and supports
JSONL round-trips so generated traces can be saved, inspected and replayed.
Beyond the materialised :class:`Trace`, the :class:`TraceStream` contract
(with the lazily-generated sources in :mod:`repro.workload.stream` and the
scenario-diversity models in :mod:`repro.workload.scenarios`) lets the
engines replay traces far larger than memory; see ``docs/workloads.md``.
"""

from repro.workload.hotspots import HotspotModel, HotspotPhase
from repro.workload.mixer import interleave, iter_interleaved
from repro.workload.partition import PARTITION_STRATEGIES, TracePartitioner
from repro.workload.scenarios import (
    DiurnalStream,
    FlashCrowdStream,
    ScenarioModelStream,
    UpdateStormStream,
)
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.stream import EvolvingTraceStream
from repro.workload.trace import (
    QueryEvent,
    Trace,
    TraceEvent,
    TraceStream,
    TraceView,
    UpdateEvent,
)
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig

__all__ = [
    "HotspotModel",
    "HotspotPhase",
    "interleave",
    "iter_interleaved",
    "PARTITION_STRATEGIES",
    "TracePartitioner",
    "DiurnalStream",
    "EvolvingTraceStream",
    "FlashCrowdStream",
    "ScenarioModelStream",
    "UpdateStormStream",
    "SDSSQueryGenerator",
    "SDSSWorkloadConfig",
    "QueryEvent",
    "Trace",
    "TraceEvent",
    "TraceStream",
    "TraceView",
    "UpdateEvent",
    "SurveyUpdateGenerator",
    "UpdateWorkloadConfig",
]
