"""Workload substrate: traces, generators and hotspot models.

The paper drives its evaluation with ~250,000 real SDSS queries (Jan-Feb
2009) interleaved with ~250,000 simulated updates whose spatial pattern
mimics how survey telescopes scan the sky.  Neither trace is publicly
redistributable, so this package generates synthetic traces that reproduce
the documented statistical properties:

* queries access sets of spatial data objects with heavy-tailed result sizes
  and **evolving hotspots** (Figure 7a: query hotspots drift over time and are
  largely disjoint from update hotspots),
* a mix of query templates (range / spatial self-join / selection /
  aggregation) with no single dominating shape,
* early queries have small result costs, producing the long cache warm-up the
  paper describes,
* updates cluster along great-circle scans and have sizes proportional to the
  density of the object they hit, calibrated to ~100 GB/day of update traffic.

The trace model (:mod:`repro.workload.trace`) is policy-agnostic and supports
JSONL round-trips so generated traces can be saved, inspected and replayed.
"""

from repro.workload.hotspots import HotspotModel, HotspotPhase
from repro.workload.mixer import interleave
from repro.workload.partition import PARTITION_STRATEGIES, TracePartitioner
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.trace import QueryEvent, Trace, TraceEvent, UpdateEvent
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig

__all__ = [
    "HotspotModel",
    "HotspotPhase",
    "interleave",
    "PARTITION_STRATEGIES",
    "TracePartitioner",
    "SDSSQueryGenerator",
    "SDSSWorkloadConfig",
    "QueryEvent",
    "Trace",
    "TraceEvent",
    "UpdateEvent",
    "SurveyUpdateGenerator",
    "UpdateWorkloadConfig",
]
