"""Real-trace ingestion: query logs -> traces -> calibrated scenario specs.

Every workload the simulator replays is generated; this module closes the
loop with *real* (or externally produced) query logs.  Ingestion has two
stages, both deterministic:

1. **Adaptation** (:func:`ingest_trace`): read a CSV/JSONL/parquet log into
   a materialised :class:`~repro.workload.trace.Trace`.  Column names are
   matched against a small alias table (``kind``/``type``/``op``,
   ``object``/``object_id``/``objects``, ``cost``/``bytes``/``size_mb``,
   ``timestamp``/``time``/``ts``, ``tolerance``/``staleness``), raw object
   keys are mapped to dense integer ids in first-seen order, events are
   ordered by timestamp (stable for ties) and re-stamped to the consecutive
   integer timeline the engines expect.  Parquet support is gated on an
   optional ``pyarrow`` install and degrades to a clear :class:`IngestError`.
2. **Calibration** (:func:`calibrate`): fit the existing
   :class:`~repro.experiments.config.ExperimentConfig` knobs to the ingested
   trace -- the Zipf exponent of the query object-popularity curve (log-log
   rank-frequency least squares), the query/update event mix and byte
   traffic fractions, the tolerance mix, and the hotspot phase length (via
   top-``k`` Jaccard change-point detection over query windows) -- and emit
   a round-trippable :class:`~repro.experiments.spec.ScenarioSpec`.

The emitted spec is an ordinary *evolving*-model spec, so everything the
declarative layer guarantees (streaming replay, byte-identical results
across engines and ``jobs=1`` vs ``jobs=N``, JSON scenario files) holds for
ingested scenarios with no new replay machinery; ``repro ingest FILE``
wires this pipeline into the CLI.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.repository.catalog import DEFAULT_SCALE, PAPER_SERVER_SIZE_MB
from repro.repository.queries import Query
from repro.repository.updates import Update, UpdateKind
from repro.workload.trace import QueryEvent, Trace, TraceEvent, UpdateEvent

#: Column aliases, first match wins (all matching is case-insensitive).
COLUMN_ALIASES: Dict[str, Tuple[str, ...]] = {
    "kind": ("kind", "type", "op", "event", "action"),
    "objects": ("object_ids", "object_id", "objects", "object", "oid", "key"),
    "cost": ("cost", "bytes", "size_mb", "result_mb", "size"),
    "timestamp": ("timestamp", "time", "ts", "arrival"),
    "tolerance": ("tolerance", "staleness", "ttl"),
}

#: Kind values (lowercased) read as queries / updates.
QUERY_KINDS = frozenset({"query", "read", "get", "select", "q", "r"})
UPDATE_KINDS = frozenset(
    {"update", "write", "put", "insert", "delete", "upsert", "u", "w"}
)

#: File suffixes the ingest reader understands.
SUPPORTED_SUFFIXES = (".csv", ".jsonl", ".parquet")


class IngestError(ValueError):
    """An input log cannot be read or adapted (format, columns, values)."""


# ----------------------------------------------------------------------
# Stage 1: adaptation (file -> Trace)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IngestedLog:
    """A log adapted into the simulator's trace form.

    ``object_ids`` maps each raw object key (as it appeared in the log) to
    the dense integer id used in the trace, in first-seen order -- the
    mapping is deterministic in the file contents alone.
    """

    trace: Trace
    object_ids: Dict[str, int]
    path: Path


def _resolve_columns(names: Sequence[str]) -> Dict[str, str]:
    """Map canonical field -> actual column name via the alias table."""
    lowered = {name.lower().strip(): name for name in names if name}
    resolved: Dict[str, str] = {}
    for field, aliases in COLUMN_ALIASES.items():
        for alias in aliases:
            if alias in lowered:
                resolved[field] = lowered[alias]
                break
    missing = [f for f in ("kind", "objects") if f not in resolved]
    if missing:
        raise IngestError(
            f"log is missing required column(s) {missing}; recognised "
            f"aliases: " + "; ".join(
                f"{field}={'/'.join(COLUMN_ALIASES[field])}"
                for field in missing
            )
        )
    return resolved


def _parse_object_keys(value: object) -> List[str]:
    """Raw object key(s) from one row value (scalar, list, or delimited)."""
    if isinstance(value, (list, tuple)):
        keys = [str(item).strip() for item in value]
    else:
        text = str(value).strip()
        for delimiter in (";", "|", " "):
            if delimiter in text:
                keys = [part.strip() for part in text.split(delimiter)]
                break
        else:
            keys = [text]
    keys = [key for key in keys if key]
    if not keys:
        raise IngestError("a row references no objects")
    return keys


def _parse_float(value: object, field: str, default: float) -> float:
    if value is None or (isinstance(value, str) and not value.strip()):
        return default
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise IngestError(f"bad {field} value {value!r}") from None
    if not math.isfinite(result):
        raise IngestError(f"bad {field} value {value!r}")
    return result


def _iter_csv_rows(path: Path) -> Tuple[List[Mapping[str, object]], Sequence[str]]:
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if not reader.fieldnames:
            raise IngestError(f"{path} has no header row")
        return list(reader), reader.fieldnames


def _iter_jsonl_rows(path: Path) -> Tuple[List[Mapping[str, object]], Sequence[str]]:
    rows: List[Mapping[str, object]] = []
    names: Dict[str, None] = {}
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise IngestError(
                    f"{path}:{number} is not valid JSON: {exc}"
                ) from exc
            if not isinstance(row, Mapping):
                raise IngestError(
                    f"{path}:{number} is not a JSON object"
                )
            rows.append(row)
            for name in row:
                names.setdefault(name, None)
    return rows, list(names)


def _iter_parquet_rows(path: Path) -> Tuple[List[Mapping[str, object]], Sequence[str]]:
    try:
        import pyarrow.parquet as pq  # noqa: F401
    except ImportError:
        raise IngestError(
            f"reading {path} needs the optional 'pyarrow' dependency, which "
            "is not installed; export the log as CSV or JSONL instead"
        ) from None
    table = pq.read_table(path)
    return table.to_pylist(), table.column_names


def ingest_trace(path: Union[str, Path]) -> IngestedLog:
    """Read a query/update log file into a :class:`IngestedLog`.

    The format is chosen by suffix (``.csv``, ``.jsonl`` or ``.parquet``).
    Raises :class:`IngestError` on unreadable files, unknown formats,
    missing columns or malformed values.
    """
    path = Path(path)
    if path.suffix.lower() not in SUPPORTED_SUFFIXES:
        raise IngestError(
            f"unsupported log format {path.suffix!r} for {path}; "
            f"supported: {', '.join(SUPPORTED_SUFFIXES)}"
        )
    if not path.exists():
        raise IngestError(f"cannot read log file {path}: no such file")
    reader = {
        ".csv": _iter_csv_rows,
        ".jsonl": _iter_jsonl_rows,
        ".parquet": _iter_parquet_rows,
    }[path.suffix.lower()]
    try:
        rows, names = reader(path)
    except OSError as exc:
        raise IngestError(f"cannot read log file {path}: {exc}") from exc
    if not rows:
        raise IngestError(f"{path} holds no events")
    columns = _resolve_columns(names)

    object_ids: Dict[str, int] = {}

    def object_id(raw_key: str) -> int:
        return object_ids.setdefault(raw_key, len(object_ids) + 1)

    parsed: List[Tuple[float, int, str, List[int], float, float]] = []
    for number, row in enumerate(rows):
        kind_raw = str(row.get(columns["kind"], "")).strip().lower()
        if kind_raw in QUERY_KINDS:
            kind = "query"
        elif kind_raw in UPDATE_KINDS:
            kind = "update"
        else:
            raise IngestError(
                f"row {number + 1} of {path} has unknown event kind "
                f"{kind_raw!r} (query-like: {', '.join(sorted(QUERY_KINDS))}; "
                f"update-like: {', '.join(sorted(UPDATE_KINDS))})"
            )
        keys = _parse_object_keys(row.get(columns["objects"]))
        ids = [object_id(key) for key in keys]
        cost = _parse_float(
            row.get(columns["cost"]) if "cost" in columns else None,
            "cost", 1.0,
        )
        if cost <= 0:
            raise IngestError(
                f"row {number + 1} of {path} has non-positive cost {cost!r}"
            )
        timestamp = _parse_float(
            row.get(columns["timestamp"]) if "timestamp" in columns else None,
            "timestamp", float(number + 1),
        )
        tolerance = _parse_float(
            row.get(columns["tolerance"]) if "tolerance" in columns else None,
            "tolerance", 0.0,
        )
        if tolerance < 0:
            raise IngestError(
                f"row {number + 1} of {path} has negative tolerance "
                f"{tolerance!r}"
            )
        parsed.append((timestamp, number, kind, ids, cost, tolerance))

    # Order by log timestamp (stable for ties), then re-stamp to the
    # consecutive integer timeline the engines expect.
    parsed.sort(key=lambda item: (item[0], item[1]))
    events: List[TraceEvent] = []
    query_id = update_id = 0
    for position, (_, _, kind, ids, cost, tolerance) in enumerate(parsed):
        timestamp = float(position + 1)
        if kind == "query":
            query_id += 1
            events.append(
                QueryEvent(
                    Query(
                        query_id=query_id,
                        object_ids=frozenset(ids),
                        cost=cost,
                        timestamp=timestamp,
                        tolerance=tolerance,
                    )
                )
            )
        else:
            update_id += 1
            events.append(
                UpdateEvent(
                    Update(
                        update_id=update_id,
                        object_id=ids[0],
                        cost=cost,
                        timestamp=timestamp,
                        kind=UpdateKind.INSERT,
                        rows=1,
                    )
                )
            )
    return IngestedLog(trace=Trace(events), object_ids=object_ids, path=path)


# ----------------------------------------------------------------------
# Stage 2: calibration (Trace -> ExperimentConfig knobs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationResult:
    """The :class:`ExperimentConfig` knobs fitted to an ingested trace."""

    object_count: int
    query_count: int
    update_count: int
    zipf_exponent: float
    query_traffic_fraction: float
    update_traffic_fraction: float
    tolerant_fraction: float
    tolerance_window: float
    hotspot_phase_length: int

    def knobs(self) -> Dict[str, object]:
        """The fitted knobs as a scenario-config mapping."""
        return {
            "object_count": self.object_count,
            "query_count": self.query_count,
            "update_count": self.update_count,
            "zipf_exponent": round(self.zipf_exponent, 4),
            "query_traffic_fraction": round(self.query_traffic_fraction, 6),
            "update_traffic_fraction": round(self.update_traffic_fraction, 6),
            "tolerant_fraction": round(self.tolerant_fraction, 4),
            "tolerance_window": round(self.tolerance_window, 4),
            "hotspot_phase_length": self.hotspot_phase_length,
        }

    def report(self) -> str:
        """A human-readable calibration summary (one knob per line)."""
        lines = [f"  {name} = {value}" for name, value in self.knobs().items()]
        return "fitted scenario knobs:\n" + "\n".join(lines)


def _fit_zipf_exponent(access_counts: Sequence[int]) -> float:
    """Least-squares slope of the log-log rank-frequency curve.

    Returns the (positive) Zipf exponent, clamped to ``[0.1, 3.0]``;
    defaults to the repo-wide 1.2 when the curve is degenerate (fewer than
    two distinct objects accessed).
    """
    counts = sorted((c for c in access_counts if c > 0), reverse=True)
    if len(counts) < 2:
        return 1.2
    xs = [math.log(rank) for rank in range(1, len(counts) + 1)]
    ys = [math.log(count) for count in counts]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 1.2
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True)
    ) / denominator
    return min(3.0, max(0.1, -slope))


def _fit_phase_length(trace: Trace, top: int = 5) -> int:
    """Hotspot phase length via top-``top`` Jaccard change-point detection.

    Queries are split into fixed windows; a phase boundary is declared
    wherever the top-``top`` object set of consecutive windows overlaps by
    less than half (Jaccard < 0.5).  The fitted phase length is the query
    count divided by the number of detected phases.
    """
    queries = trace.queries()
    if len(queries) < 4:
        return max(1, len(queries))
    window = max(25, len(queries) // 12)

    def top_set(chunk) -> frozenset:
        counts: Dict[int, int] = {}
        for query in chunk:
            for object_id in query.object_ids:
                counts[object_id] = counts.get(object_id, 0) + 1
        ranked = sorted(counts, key=lambda oid: (-counts[oid], oid))
        return frozenset(ranked[:top])

    tops = [
        top_set(queries[start:start + window])
        for start in range(0, len(queries), window)
        if queries[start:start + window]
    ]
    boundaries = 0
    for previous, current in zip(tops, tops[1:], strict=False):
        union = previous | current
        if not union:
            continue
        jaccard = len(previous & current) / len(union)
        if jaccard < 0.5:
            boundaries += 1
    return max(window, len(queries) // (boundaries + 1))


def calibrate(
    trace: Trace, scale: float = DEFAULT_SCALE
) -> CalibrationResult:
    """Fit the experiment-config knobs to an ingested trace.

    ``scale`` fixes the emitted scenario's server size (the traffic
    fractions are totals relative to it), so the replayed byte ratios match
    the log's at that scale.
    """
    queries = trace.queries()
    if not queries:
        raise IngestError("cannot calibrate a log with no queries")
    access_counts: Dict[int, int] = {}
    for query in queries:
        for object_id in query.object_ids:
            access_counts[object_id] = access_counts.get(object_id, 0) + 1
    for update in trace.updates():
        access_counts.setdefault(update.object_id, 0)
    server_size = PAPER_SERVER_SIZE_MB * scale
    tolerant = [q for q in queries if q.tolerance > 0]
    nonzero = sorted(q.tolerance for q in tolerant)
    if nonzero:
        tolerance_window = nonzero[len(nonzero) // 2]
    else:
        tolerance_window = 50.0
    return CalibrationResult(
        object_count=max(2, len(access_counts)),
        query_count=len(queries),
        update_count=trace.update_count,
        zipf_exponent=_fit_zipf_exponent(list(access_counts.values())),
        query_traffic_fraction=trace.total_query_cost() / server_size,
        update_traffic_fraction=trace.total_update_cost() / server_size,
        tolerant_fraction=len(tolerant) / len(queries),
        tolerance_window=tolerance_window,
        hotspot_phase_length=_fit_phase_length(trace),
    )


def ingest_scenario(
    path: Union[str, Path],
    name: Optional[str] = None,
    scale: float = DEFAULT_SCALE,
):
    """Ingest + calibrate a log into a replayable scenario spec.

    Returns ``(spec, calibration)`` where ``spec`` is a
    :class:`~repro.experiments.spec.ScenarioSpec` whose knobs were fitted to
    the log; save it with
    :func:`repro.experiments.spec.save_scenario` and it replays anywhere a
    scenario file does (CLI, sweeps, streaming engines).
    """
    from repro.experiments.spec import ScenarioError, ScenarioSpec

    path = Path(path)
    log = ingest_trace(path)
    calibration = calibrate(log.trace, scale=scale)
    knobs = dict(calibration.knobs())
    knobs["scale"] = scale
    try:
        spec = ScenarioSpec.from_knobs(name=name or path.stem, **knobs)
    except ScenarioError as exc:  # pragma: no cover - defensive
        raise IngestError(
            f"calibration produced an invalid scenario for {path}: {exc}"
        ) from exc
    return spec, calibration
