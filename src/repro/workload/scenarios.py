"""Scenario-diversity workload models: adversarial traffic shapes.

The evolving-hotspot workload (:mod:`repro.workload.sdss`) reproduces the
paper's default trace, but middleware evaluation lives or dies on workload
*diversity*: throughput and traffic claims need traffic shapes an adversary
would pick, not only stationary Zipf mixes.  This module adds three such
shapes, each a lazily-generated, single-pass, constant-memory
:class:`repro.workload.trace.TraceStream`:

* :class:`FlashCrowdStream` -- **sudden hotspot migration**: a stationary
  Zipf workload whose focus region *jumps* to a fresh part of the sky at
  each flash-crowd arrival, with the focus probability spiking while the
  crowd lasts.  Caches tuned to the old hotspot pay full price for the
  migration; smoothing policies (Benefit) are hurt exactly here.
* :class:`DiurnalStream` -- **diurnal load cycles**: query result traffic
  swells and fades sinusoidally over configurable day cycles while update
  traffic runs anti-phase (surveys observe at night), so the query:update
  byte ratio sweeps through its whole range every cycle.
* :class:`UpdateStormStream` -- **correlated update storms**: a stationary
  query workload punctured by bursts of updates that hammer one contiguous
  sky block -- half the time the block the queries are focused on, which
  invalidates exactly the objects worth caching.
* :class:`CacheAdversaryStream` -- **eviction-busting cyclic scans**: the
  query stream cycles round-robin over a working set sized just past the
  cache capacity, the classic LRU-killer, with occasional sequential scans
  marching across the whole catalogue to flush whatever did stick.

Unlike the evolving model, the per-event costs here are computed *directly*
(a mean-normalised log-normal wobble around an analytic mean), so no
whole-trace calibration pass exists: generation is one pass, O(1) state, and
a 5M-event replay runs in the same RSS as a 500k-event one.  All draws come
from per-stream seeded NumPy generators, so every pass over a stream yields
the byte-identical event sequence (the restartability the
:class:`~repro.workload.trace.TraceStream` contract requires).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query
from repro.repository.updates import Update, UpdateKind
from repro.workload.mixer import iter_interleaved
from repro.workload.sdss import contiguous_footprint
from repro.workload.trace import TraceEvent, TraceStream

#: Names of the scenario models this module provides, in doc order.
MODEL_NAMES = ("flash_crowd", "diurnal", "update_storm", "cache_adversary")


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights over ``count`` ranks."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = 1.0 / np.power(ranks, exponent)
    weights /= weights.sum()
    return weights


def _wobble(rng: np.random.Generator, sigma: float) -> float:
    """A mean-1 log-normal factor (so per-event costs keep analytic means)."""
    return float(rng.lognormal(0.0, sigma)) * math.exp(-0.5 * sigma * sigma)


def _block(object_ids: Sequence[int], start: int, size: int) -> List[int]:
    """A contiguous (wrapping) block of ``size`` object ids from ``start``."""
    count = len(object_ids)
    size = min(size, count)
    return [object_ids[(start + offset) % count] for offset in range(size)]


@dataclass(frozen=True)
class ScenarioModelStream(TraceStream):
    """Shared scale knobs and plumbing of the three scenario models.

    Sub-classes implement ``_iter_queries`` / ``_iter_updates``; interleaving,
    id allocation and the stream contract live here.  Instances are frozen
    and picklable, so a model can be a sweep scenario source directly.
    """

    catalog: ObjectCatalog
    query_count: int
    update_count: int
    #: Analytic mean result cost per query (MB); per-event costs wobble
    #: log-normally around it.
    mean_query_cost: float
    #: Analytic mean shipping cost per update (MB).
    mean_update_cost: float
    tolerant_fraction: float = 0.2
    tolerance_window: float = 50.0
    #: Log-normal sigma of the per-event cost wobble.
    cost_sigma: float = 0.5
    #: Largest query footprint (objects per query).
    footprint_span: int = 4
    #: Zipf skew inside focus blocks.
    zipf_exponent: float = 1.2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.query_count < 0 or self.update_count < 0:
            raise ValueError("event counts must be non-negative")
        if self.footprint_span <= 0:
            raise ValueError("footprint_span must be positive")

    # ------------------------------------------------------------------
    # TraceStream contract
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.query_count + self.update_count

    def iter_events(self) -> Iterator[TraceEvent]:
        return iter_interleaved(
            self._iter_queries(),
            self._iter_updates(),
            self.query_count,
            self.update_count,
            mode="uniform",
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Shared draw helpers
    # ------------------------------------------------------------------
    def _query_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed + 1)

    def _update_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed + 2)

    def _draw_query(
        self,
        rng: np.random.Generator,
        query_id: int,
        index: int,
        anchor: int,
        cost_factor: float,
    ) -> Query:
        """One query around ``anchor`` at the model's mean cost x factor."""
        object_ids = self.catalog.object_ids
        span = int(rng.integers(1, self.footprint_span + 1))
        footprint = contiguous_footprint(object_ids, anchor, span)
        cost = max(self.mean_query_cost * cost_factor * _wobble(rng, self.cost_sigma), 1e-9)
        tolerance = (
            self.tolerance_window if rng.random() < self.tolerant_fraction else 0.0
        )
        return Query(
            query_id=query_id,
            object_ids=frozenset(footprint),
            cost=cost,
            timestamp=float(index + 1),
            tolerance=tolerance,
        )

    def _draw_update(
        self,
        rng: np.random.Generator,
        update_id: int,
        index: int,
        object_id: int,
        cost_factor: float,
    ) -> Update:
        """One update of ``object_id`` at the model's mean cost x factor."""
        cost = max(self.mean_update_cost * cost_factor * _wobble(rng, self.cost_sigma), 1e-9)
        return Update(
            update_id=update_id,
            object_id=object_id,
            cost=cost,
            timestamp=float(index + 1),
            kind=UpdateKind.INSERT,
            rows=1,
        )

    def _anchor_from_focus(
        self,
        rng: np.random.Generator,
        focus: Sequence[int],
        weights: np.ndarray,
        focus_probability: float,
    ) -> Tuple[int, bool]:
        """Zipf-weighted anchor from ``focus``, or a uniform background one."""
        if rng.random() < focus_probability:
            return focus[int(rng.choice(len(focus), p=weights))], True
        object_ids = self.catalog.object_ids
        return int(object_ids[int(rng.integers(0, len(object_ids)))]), False

    # Sub-class hooks ---------------------------------------------------
    def _iter_queries(self) -> Iterator[Query]:
        raise NotImplementedError

    def _iter_updates(self) -> Iterator[Update]:
        raise NotImplementedError

    def update_region(self) -> List[int]:
        """Object ids the model's updates favour (may be empty)."""
        return []


@dataclass(frozen=True)
class FlashCrowdStream(ScenarioModelStream):
    """Sudden hotspot migration: flash crowds relocate the query focus.

    The query stream starts as a stationary Zipf workload over one
    contiguous focus block.  At each of ``crowd_count`` arrival points the
    focus *jumps* to a freshly drawn block (the migration), the focus
    probability spikes to ``crowd_intensity`` for ``crowd_duration`` of the
    query stream, and crowd queries are ``crowd_cost_factor`` heavier (the
    crowd converges on data-rich objects).  When a crowd disperses the
    migrated block stays the new baseline hotspot.  Updates stay clustered
    in a fixed survey region, disjoint dynamics from the crowds.
    """

    crowd_count: int = 3
    #: Fraction of the query stream before the first crowd arrives.
    crowd_arrival: float = 0.3
    #: Fraction of the query stream each crowd lasts.
    crowd_duration: float = 0.12
    #: Focus probability while a crowd is active (baseline in between).
    crowd_intensity: float = 0.95
    base_intensity: float = 0.7
    crowd_cost_factor: float = 1.5
    background_cost_factor: float = 0.4
    focus_size: int = 6
    #: Fraction of the sky (contiguous) receiving the update stream.
    update_region_fraction: float = 0.35

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.crowd_arrival < 1.0:
            raise ValueError("crowd_arrival must lie in [0, 1)")
        if not 0.0 < self.crowd_duration <= 1.0:
            raise ValueError("crowd_duration must lie in (0, 1]")
        if self.crowd_count < 0:
            raise ValueError("crowd_count must be non-negative")

    def _crowd_windows(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` query indices of each crowd, non-overlapping."""
        if self.crowd_count == 0 or self.query_count == 0:
            return []
        first = int(self.query_count * self.crowd_arrival)
        spacing = max(1, (self.query_count - first) // self.crowd_count)
        length = max(1, min(int(self.query_count * self.crowd_duration), spacing))
        windows = []
        for crowd in range(self.crowd_count):
            start = first + crowd * spacing
            if start >= self.query_count:
                break
            windows.append((start, min(start + length, self.query_count)))
        return windows

    def _iter_queries(self) -> Iterator[Query]:
        rng = self._query_rng()
        object_ids = self.catalog.object_ids
        focus_size = min(self.focus_size, len(object_ids))
        weights = _zipf_weights(focus_size, self.zipf_exponent)
        focus = _block(object_ids, int(rng.integers(0, len(object_ids))), focus_size)
        windows = self._crowd_windows()
        window_index = 0
        in_crowd = False
        for index in range(self.query_count):
            # Leave any window that ended at or before this index first, so a
            # window starting exactly where the previous one stopped
            # (back-to-back windows) still gets its arrival transition.
            while window_index < len(windows) and index >= windows[window_index][1]:
                in_crowd = False
                window_index += 1
            if window_index < len(windows) and index == windows[window_index][0]:
                # The crowd arrives: the hotspot migrates to a fresh block.
                focus = _block(
                    object_ids, int(rng.integers(0, len(object_ids))), focus_size
                )
                in_crowd = True
            intensity = self.crowd_intensity if in_crowd else self.base_intensity
            anchor, is_hot = self._anchor_from_focus(rng, focus, weights, intensity)
            if is_hot:
                factor = self.crowd_cost_factor if in_crowd else 1.0
            else:
                factor = self.background_cost_factor
            yield self._draw_query(rng, index + 1, index, anchor, factor)

    def update_region(self) -> List[int]:
        """The fixed survey block the update stream favours."""
        object_ids = self.catalog.object_ids
        size = max(1, int(round(len(object_ids) * self.update_region_fraction)))
        start = int(self._update_rng().integers(0, len(object_ids)))
        return _block(object_ids, start, size)

    def _iter_updates(self) -> Iterator[Update]:
        rng = self._update_rng()
        object_ids = self.catalog.object_ids
        # First draw must match update_region(): the region anchor.
        size = max(1, int(round(len(object_ids) * self.update_region_fraction)))
        region = _block(object_ids, int(rng.integers(0, len(object_ids))), size)
        for index in range(self.update_count):
            if rng.random() < 0.8:
                object_id = region[int(rng.integers(0, len(region)))]
            else:
                object_id = int(object_ids[int(rng.integers(0, len(object_ids)))])
            yield self._draw_update(rng, index + 1, index, object_id, 1.0)


@dataclass(frozen=True)
class DiurnalStream(ScenarioModelStream):
    """Diurnal load cycles: query traffic by day, update traffic by night.

    Query result costs are modulated by ``1 + amplitude * sin`` over
    ``cycles`` day cycles across the trace; update costs run anti-phase, so
    the query:update byte ratio sweeps its full range every cycle.  The
    query focus block also sharpens slightly at midday (more of the traffic
    concentrates on the hotspot when the load peaks) and rotates one block
    per cycle, a slow daily drift.
    """

    cycles: int = 4
    amplitude: float = 0.7
    base_intensity: float = 0.75
    background_cost_factor: float = 0.4
    focus_size: int = 6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must lie in [0, 1)")

    def _phase(self, index: int, count: int) -> float:
        """Sinusoidal modulation in [-1, 1] at stream position ``index``."""
        if count == 0:
            return 0.0
        return math.sin(2.0 * math.pi * self.cycles * index / count)

    def _iter_queries(self) -> Iterator[Query]:
        rng = self._query_rng()
        object_ids = self.catalog.object_ids
        focus_size = min(self.focus_size, len(object_ids))
        weights = _zipf_weights(focus_size, self.zipf_exponent)
        focus_start = int(rng.integers(0, len(object_ids)))
        focus = _block(object_ids, focus_start, focus_size)
        cycle_length = max(1, self.query_count // self.cycles)
        for index in range(self.query_count):
            phase = self._phase(index, self.query_count)
            # A new day dawns: rotate the hotspot by one block width.
            if index > 0 and index % cycle_length == 0:
                focus_start = (focus_start + focus_size) % len(object_ids)
                focus = _block(object_ids, focus_start, focus_size)
            intensity = min(0.98, self.base_intensity * (1.0 + 0.2 * self.amplitude * phase))
            anchor, is_hot = self._anchor_from_focus(rng, focus, weights, intensity)
            factor = (1.0 if is_hot else self.background_cost_factor) * (
                1.0 + self.amplitude * phase
            )
            yield self._draw_query(rng, index + 1, index, anchor, factor)

    def _iter_updates(self) -> Iterator[Update]:
        rng = self._update_rng()
        object_ids = self.catalog.object_ids
        for index in range(self.update_count):
            phase = self._phase(index, self.update_count)
            object_id = int(object_ids[int(rng.integers(0, len(object_ids)))])
            # Anti-phase: the survey writes at night, while queries sleep.
            yield self._draw_update(
                rng, index + 1, index, object_id, 1.0 - self.amplitude * phase
            )


@dataclass(frozen=True)
class UpdateStormStream(ScenarioModelStream):
    """Correlated update storms: bursts that hammer one contiguous block.

    The query stream is a stationary Zipf workload over a fixed focus block.
    The update stream idles at a low uniform rate, punctured by
    ``storm_count`` storms of ``storm_length`` consecutive updates each;
    every storm picks one contiguous block of ``storm_width`` objects --
    with probability ``storm_on_focus`` the *query* focus block itself --
    and lands all its updates there at ``storm_cost_factor`` the mean cost.
    Storms on the focus block invalidate exactly the objects worth caching,
    the adversarial case for preshipping policies.
    """

    storm_count: int = 6
    storm_length: int = 300
    storm_width: int = 4
    storm_cost_factor: float = 3.0
    #: Probability a storm targets the query focus block.
    storm_on_focus: float = 0.5
    base_intensity: float = 0.8
    background_cost_factor: float = 0.4
    focus_size: int = 6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.storm_count < 0:
            raise ValueError("storm_count must be non-negative")
        if self.storm_length <= 0:
            raise ValueError("storm_length must be positive")
        if self.storm_width <= 0:
            raise ValueError("storm_width must be positive")

    def _focus_start(self) -> int:
        """The (deterministic) anchor of the query focus block."""
        return int(self._query_rng().integers(0, len(self.catalog.object_ids)))

    def _iter_queries(self) -> Iterator[Query]:
        rng = self._query_rng()
        object_ids = self.catalog.object_ids
        focus_size = min(self.focus_size, len(object_ids))
        weights = _zipf_weights(focus_size, self.zipf_exponent)
        # First draw matches _focus_start(): the focus anchor.
        focus = _block(object_ids, int(rng.integers(0, len(object_ids))), focus_size)
        for index in range(self.query_count):
            anchor, is_hot = self._anchor_from_focus(
                rng, focus, weights, self.base_intensity
            )
            factor = 1.0 if is_hot else self.background_cost_factor
            yield self._draw_query(rng, index + 1, index, anchor, factor)

    def _storm_windows(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` update indices of each storm, non-overlapping."""
        if self.storm_count == 0 or self.update_count == 0:
            return []
        spacing = max(1, self.update_count // (self.storm_count + 1))
        length = min(self.storm_length, spacing)
        windows = []
        for storm in range(self.storm_count):
            start = (storm + 1) * spacing
            if start >= self.update_count:
                break
            windows.append((start, min(start + length, self.update_count)))
        return windows

    def _iter_updates(self) -> Iterator[Update]:
        rng = self._update_rng()
        object_ids = self.catalog.object_ids
        focus_start = self._focus_start()
        windows = self._storm_windows()
        window_index = 0
        storm_block: List[int] = []
        for index in range(self.update_count):
            # Leave any window that ended at or before this index first, so
            # back-to-back storms (storm_length >= spacing) all fire.
            while window_index < len(windows) and index >= windows[window_index][1]:
                storm_block = []
                window_index += 1
            if window_index < len(windows) and index == windows[window_index][0]:
                # The storm breaks: choose its target block.
                if rng.random() < self.storm_on_focus:
                    block_start = focus_start
                else:
                    block_start = int(rng.integers(0, len(object_ids)))
                storm_block = _block(object_ids, block_start, self.storm_width)
            if storm_block:
                object_id = storm_block[int(rng.integers(0, len(storm_block)))]
                factor = self.storm_cost_factor
            else:
                object_id = int(object_ids[int(rng.integers(0, len(object_ids)))])
                factor = 1.0
            yield self._draw_update(rng, index + 1, index, object_id, factor)

    def update_region(self) -> List[int]:
        """The query focus block (the storms' favourite target)."""
        object_ids = self.catalog.object_ids
        return _block(object_ids, self._focus_start(), min(self.focus_size, len(object_ids)))


@dataclass(frozen=True)
class CacheAdversaryStream(ScenarioModelStream):
    """Eviction-busting cyclic/scan access sized just past cache capacity.

    The query stream cycles round-robin over a *working set* of objects
    whose cumulative size just exceeds ``working_set_bytes`` (which callers
    size a factor past the cache capacity).  Under a cache one notch too
    small for the cycle, every recency-style policy faults on every access
    -- the classic LRU-killer.  With probability ``scan_probability`` a
    query is instead a *sequential scan* step: a contiguous
    ``footprint_span``-object window marching through the whole catalogue,
    flushing whatever the cache managed to keep.  Updates favour the
    working set (so cached copies also go stale), keeping pressure on the
    decoupling logic rather than only the eviction logic.
    """

    #: Cumulative size (MB) the cyclic working set just exceeds.  Callers
    #: size this a factor past the cache capacity (see
    #: ``ExperimentConfig.adversary_working_set_factor``).
    working_set_bytes: float = 30.0
    #: Probability a query is a sequential-scan step instead of a cycle hit.
    scan_probability: float = 0.05
    #: Probability an update lands inside the working set.
    update_in_set: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if not 0.0 <= self.scan_probability <= 1.0:
            raise ValueError("scan_probability must lie in [0, 1]")
        if not 0.0 <= self.update_in_set <= 1.0:
            raise ValueError("update_in_set must lie in [0, 1]")

    def _working_set(self) -> List[int]:
        """The cyclic working set: a seeded shuffle prefix just past target.

        A dedicated generator (``seed + 3``) keeps the set independent of
        the query/update draw sequences, so the same objects are cycled on
        every restart of the stream.
        """
        object_ids = list(self.catalog.object_ids)
        rng = np.random.default_rng(self.seed + 3)
        order = [object_ids[i] for i in rng.permutation(len(object_ids))]
        working: List[int] = []
        cumulative = 0.0
        for object_id in order:
            working.append(object_id)
            cumulative += self.catalog.size_of(object_id)
            if cumulative > self.working_set_bytes and len(working) >= 2:
                break
        return working

    def _iter_queries(self) -> Iterator[Query]:
        rng = self._query_rng()
        object_ids = self.catalog.object_ids
        working = self._working_set()
        cycle_position = 0
        scan_cursor = 0
        for index in range(self.query_count):
            if rng.random() < self.scan_probability:
                # A scan step: a contiguous window marching across the sky.
                footprint = _block(object_ids, scan_cursor, self.footprint_span)
                scan_cursor = (scan_cursor + self.footprint_span) % len(object_ids)
                factor = 1.0
            else:
                # The cycle: exactly one working-set object, strictly in order.
                footprint = [working[cycle_position]]
                cycle_position = (cycle_position + 1) % len(working)
                factor = 1.0
            cost = max(
                self.mean_query_cost * factor * _wobble(rng, self.cost_sigma), 1e-9
            )
            tolerance = (
                self.tolerance_window if rng.random() < self.tolerant_fraction else 0.0
            )
            yield Query(
                query_id=index + 1,
                object_ids=frozenset(footprint),
                cost=cost,
                timestamp=float(index + 1),
                tolerance=tolerance,
            )

    def _iter_updates(self) -> Iterator[Update]:
        rng = self._update_rng()
        object_ids = self.catalog.object_ids
        working = self._working_set()
        for index in range(self.update_count):
            if rng.random() < self.update_in_set:
                object_id = working[int(rng.integers(0, len(working)))]
            else:
                object_id = int(object_ids[int(rng.integers(0, len(object_ids)))])
            yield self._draw_update(rng, index + 1, index, object_id, 1.0)

    def update_region(self) -> List[int]:
        """The cyclic working set (where the update stream concentrates)."""
        return self._working_set()
