"""Adversarial scenario fuzzer: randomised compositions of workload models.

The scenario-diversity models (:mod:`repro.workload.scenarios`) each stress
one traffic shape.  Real query logs chain such shapes: a diurnal morning, a
flash crowd at noon, an update storm while the survey recalibrates.  This
module makes such chains first-class and *drawable*:

* :class:`SegmentSpec` / :class:`CompositionSpec` -- a composition as pure
  data: an ordered list of (model, counts, knob overrides) segments plus the
  catalogue knobs.  A spec is frozen, picklable, JSON round-trippable and a
  :class:`~repro.sim.sweep.ScenarioSource`, so a drawn scenario can be
  replayed by the sweep runner directly or saved as a *minimal repro file*
  (:func:`save_regression`) when it exposes a policy regression.
* :class:`ComposedScenarioStream` -- the built form: segment streams chained
  into one :class:`~repro.workload.trace.TraceStream` with globally
  consecutive timestamps and globally unique event ids, still lazy,
  restartable and constant-memory.
* :func:`draw_composition_spec` -- the fuzzer's generator: a seeded draw of
  1-3 segments with randomised *valid* knobs (every draw respects the model
  validators), including the cache-adversary stream sized just past the
  cache capacity.
* :func:`check_stream_invariants` -- the structural invariants every
  composition must satisfy (the programmatic form of the assertions in
  ``tests/test_workload_scenarios.py``), raising
  :class:`StreamInvariantError` with the first violation.

The hypothesis property suite (``tests/test_fuzz.py``) drives
:func:`draw_composition_spec` across seeds and asserts the invariants hold
for every composition; the ``fuzzed`` experiment
(:mod:`repro.experiments.fuzzed`) replays drawn scenarios against the policy
roster and saves a repro file whenever VCover loses to the NoCache yardstick.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.repository.catalog import sdss_catalog
from repro.repository.objects import ObjectCatalog
from repro.sim.sweep import ScenarioSource
from repro.workload.scenarios import (
    MODEL_NAMES,
    CacheAdversaryStream,
    DiurnalStream,
    FlashCrowdStream,
    ScenarioModelStream,
    UpdateStormStream,
)
from repro.workload.trace import (
    QueryEvent,
    Trace,
    TraceEvent,
    TraceStream,
    UpdateEvent,
)

#: Model name -> stream class (the composable scenario models).
STREAM_CLASSES: Dict[str, type] = {
    "flash_crowd": FlashCrowdStream,
    "diurnal": DiurnalStream,
    "update_storm": UpdateStormStream,
    "cache_adversary": CacheAdversaryStream,
}

#: Stream fields supplied by the composition plumbing, not by segment knobs.
_RESERVED_FIELDS = frozenset(
    {"catalog", "query_count", "update_count", "mean_query_cost",
     "mean_update_cost", "seed"}
)


class FuzzError(ValueError):
    """A composition description is malformed (unknown model, bad knob...)."""


class StreamInvariantError(AssertionError):
    """A composed stream violated one of the structural trace invariants."""


def _knob_names(model: str) -> frozenset:
    """Overridable stream-constructor fields of ``model``'s stream class."""
    return frozenset(
        f.name for f in fields(STREAM_CLASSES[model])
    ) - _RESERVED_FIELDS


@dataclass(frozen=True)
class SegmentSpec:
    """One composition segment: a model window with knob overrides.

    ``knobs`` is a sorted tuple of ``(name, value)`` pairs overriding the
    model stream's constructor defaults (e.g. ``crowd_count`` for
    ``flash_crowd``); the plumbing fields (catalogue, counts, mean costs,
    seed) are supplied by the composition and cannot be overridden here.
    """

    model: str
    query_count: int
    update_count: int
    knobs: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.model not in STREAM_CLASSES:
            raise FuzzError(
                f"unknown segment model {self.model!r}; "
                f"known models: {', '.join(MODEL_NAMES)}"
            )
        if self.query_count < 0 or self.update_count < 0:
            raise FuzzError("segment event counts must be non-negative")
        if self.query_count + self.update_count == 0:
            raise FuzzError("a segment must hold at least one event")
        allowed = _knob_names(self.model)
        for name, value in self.knobs:
            if name not in allowed:
                raise FuzzError(
                    f"unknown knob {name!r} for segment model {self.model!r}; "
                    f"valid knobs: {', '.join(sorted(allowed))}"
                )
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise FuzzError(
                    f"segment knob {name!r} must be a number, got {value!r}"
                )
        object.__setattr__(self, "knobs", tuple(sorted(self.knobs)))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (``from_dict`` round-trips it)."""
        return {
            "model": self.model,
            "query_count": self.query_count,
            "update_count": self.update_count,
            "knobs": dict(self.knobs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SegmentSpec":
        """Rebuild a segment from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise FuzzError(
                f"segment must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(
            set(data) - {"model", "query_count", "update_count", "knobs"}
        )
        if unknown:
            raise FuzzError(f"unknown segment key(s) {unknown}")
        knobs = data.get("knobs", {})
        if not isinstance(knobs, Mapping):
            raise FuzzError(
                f"segment 'knobs' must be a mapping, got {type(knobs).__name__}"
            )
        try:
            return cls(
                model=data["model"],
                query_count=int(data["query_count"]),
                update_count=int(data["update_count"]),
                knobs=tuple(sorted(knobs.items())),
            )
        except KeyError as exc:
            raise FuzzError(f"segment is missing required key {exc}") from exc


@dataclass(frozen=True)
class CompositionSpec(ScenarioSource):
    """A composed scenario as pure data: catalogue knobs + ordered segments.

    The spec is a :class:`~repro.sim.sweep.ScenarioSource`: sweep workers
    rebuild the composition deterministically from the seeds (memoised via
    :meth:`cache_key`), and ``realise_stream`` hands back the lazy
    :class:`ComposedScenarioStream`, so streaming points replay fuzzed
    scenarios in constant memory with byte-identical results.
    """

    segments: Tuple[SegmentSpec, ...]
    object_count: int = 64
    scale: float = 0.001
    cache_fraction: float = 0.3
    #: Target query/update byte totals as multiples of the server size
    #: (matches the evolving model's calibration semantics).
    query_traffic_fraction: float = 1.5
    update_traffic_fraction: float = 1.5
    seed: int = 7
    name: str = "composition"

    def __post_init__(self) -> None:
        if not self.segments:
            raise FuzzError("a composition needs at least one segment")
        if self.object_count < 2:
            raise FuzzError("object_count must be at least 2")
        if self.scale <= 0 or self.cache_fraction <= 0:
            raise FuzzError("scale and cache_fraction must be positive")
        object.__setattr__(self, "segments", tuple(self.segments))

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        """Total queries across every segment."""
        return sum(segment.query_count for segment in self.segments)

    @property
    def update_count(self) -> int:
        """Total updates across every segment."""
        return sum(segment.update_count for segment in self.segments)

    def build_catalog(self) -> ObjectCatalog:
        """The SDSS-shaped catalogue the composition replays against."""
        return sdss_catalog(
            object_count=self.object_count, scale=self.scale, seed=self.seed
        )

    def build_stream(
        self, catalog: Optional[ObjectCatalog] = None
    ) -> "ComposedScenarioStream":
        """Build the composed stream (deterministic in the spec's seeds)."""
        catalog = catalog or self.build_catalog()
        server_size = catalog.total_size
        total_queries = max(1, self.query_count)
        total_updates = max(1, self.update_count)
        mean_query_cost = (
            server_size * self.query_traffic_fraction / total_queries
        )
        mean_update_cost = (
            server_size * self.update_traffic_fraction / total_updates
        )
        streams = []
        for index, segment in enumerate(self.segments):
            knobs = dict(segment.knobs)
            if (
                segment.model == "cache_adversary"
                and "working_set_bytes" not in knobs
            ):
                # Sized just past the cache capacity: the eviction-buster.
                knobs["working_set_bytes"] = (
                    server_size * self.cache_fraction * 1.25
                )
            try:
                streams.append(
                    STREAM_CLASSES[segment.model](
                        catalog=catalog,
                        query_count=segment.query_count,
                        update_count=segment.update_count,
                        mean_query_cost=mean_query_cost,
                        mean_update_cost=mean_update_cost,
                        seed=self.seed + 101 * (index + 1),
                        **knobs,
                    )
                )
            except (TypeError, ValueError) as exc:
                raise FuzzError(
                    f"segment {index} ({segment.model!r}) rejected its "
                    f"knobs: {exc}"
                ) from exc
        return ComposedScenarioStream(catalog=catalog, streams=tuple(streams))

    # ------------------------------------------------------------------
    # ScenarioSource contract
    # ------------------------------------------------------------------
    def realise(self) -> Tuple[ObjectCatalog, Trace]:
        """The catalogue plus the fully-materialised composed trace."""
        catalog = self.build_catalog()
        return catalog, self.build_stream(catalog).materialise()

    def realise_stream(self) -> Tuple[ObjectCatalog, TraceStream]:
        """The catalogue plus the lazy composed stream (byte-identical)."""
        catalog = self.build_catalog()
        return catalog, self.build_stream(catalog)

    def cache_key(self) -> Tuple[object, ...]:
        """Hashable identity of the build recipe (name excluded: a label)."""
        return (
            "fuzz-composition",
            tuple(
                (s.model, s.query_count, s.update_count, s.knobs)
                for s in self.segments
            ),
            self.object_count,
            self.scale,
            self.cache_fraction,
            self.query_traffic_fraction,
            self.update_traffic_fraction,
            self.seed,
        )

    # ------------------------------------------------------------------
    # Serialisation (the minimal-repro file format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (``from_dict`` round-trips it)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "object_count": self.object_count,
            "scale": self.scale,
            "cache_fraction": self.cache_fraction,
            "query_traffic_fraction": self.query_traffic_fraction,
            "update_traffic_fraction": self.update_traffic_fraction,
            "segments": [segment.to_dict() for segment in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CompositionSpec":
        """Rebuild a composition from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise FuzzError(
                f"composition must be a mapping, got {type(data).__name__}"
            )
        data = dict(data)
        raw_segments = data.pop("segments", None)
        if not isinstance(raw_segments, Sequence) or isinstance(
            raw_segments, (str, bytes)
        ):
            raise FuzzError("composition needs a 'segments' list")
        known = {f.name for f in fields(cls)} - {"segments"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FuzzError(f"unknown composition key(s) {unknown}")
        return cls(
            segments=tuple(SegmentSpec.from_dict(s) for s in raw_segments),
            **data,
        )


def save_composition(spec: CompositionSpec, path: Union[str, Path]) -> Path:
    """Write a composition as a JSON file (:func:`load_composition` format)."""
    path = Path(path)
    path.write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_composition(path: Union[str, Path]) -> CompositionSpec:
    """Load a composition previously written with :func:`save_composition`."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FuzzError(f"cannot read composition file {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FuzzError(f"{path} is not valid JSON: {exc}") from exc
    return CompositionSpec.from_dict(data)


def save_regression(
    spec: CompositionSpec, directory: Union[str, Path]
) -> Path:
    """Save a failing composition as a minimal repro file under ``directory``.

    The file is the :func:`save_composition` JSON, named after the spec, so
    ``repro.workload.fuzz.load_composition`` (or the ``fuzzed`` experiment's
    docs walkthrough) replays the exact failing scenario.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return save_composition(spec, directory / f"{spec.name}.json")


@dataclass(frozen=True)
class ComposedScenarioStream(TraceStream):
    """Segment streams chained into one stream with global ids/timestamps.

    Each segment keeps its own seeded generators (so a segment's events do
    not depend on what precedes it); the composition re-stamps timestamps to
    the global consecutive sequence ``1..len(self)`` and offsets query and
    update ids so they stay unique across segments.  The result satisfies
    the full :class:`~repro.workload.trace.TraceStream` contract: lazy,
    restartable, sized, picklable.
    """

    catalog: ObjectCatalog
    streams: Tuple[ScenarioModelStream, ...] = ()

    def __post_init__(self) -> None:
        if not self.streams:
            raise FuzzError("a composed stream needs at least one segment")

    def __len__(self) -> int:
        return sum(len(stream) for stream in self.streams)

    @property
    def query_count(self) -> int:
        """Total queries across every segment."""
        return sum(stream.query_count for stream in self.streams)

    @property
    def update_count(self) -> int:
        """Total updates across every segment."""
        return sum(stream.update_count for stream in self.streams)

    def iter_events(self) -> Iterator[TraceEvent]:
        position = 0
        query_offset = 0
        update_offset = 0
        for stream in self.streams:
            for event in stream.iter_events():
                timestamp = float(position + 1)
                position += 1
                if isinstance(event, UpdateEvent):
                    yield UpdateEvent(
                        replace(
                            event.update,
                            update_id=event.update.update_id + update_offset,
                            timestamp=timestamp,
                        )
                    )
                else:
                    yield QueryEvent(
                        replace(
                            event.query,
                            query_id=event.query.query_id + query_offset,
                            timestamp=timestamp,
                        )
                    )
            query_offset += stream.query_count
            update_offset += stream.update_count

    def update_region(self) -> List[int]:
        """Union of the segments' favoured regions (first-seen order)."""
        seen: Dict[int, None] = {}
        for stream in self.streams:
            for object_id in stream.update_region():
                seen.setdefault(object_id, None)
        return list(seen)


# ----------------------------------------------------------------------
# Structural invariants
# ----------------------------------------------------------------------
def check_stream_invariants(
    stream: TraceStream, catalog: ObjectCatalog
) -> None:
    """Assert the structural trace invariants every composition must hold.

    This is the programmatic form of the assertions the scenario-model test
    suite applies to each hand-built model, applied to arbitrary (fuzzed)
    compositions:

    * the stream is *sized*: iterating yields exactly ``len(stream)`` events;
    * timestamps are the consecutive integers ``1..len(stream)``;
    * query and update ids are unique within their kind;
    * every cost is positive and finite; every tolerance is non-negative;
    * every object id referenced exists in ``catalog``;
    * the stream is *restartable*: a second pass yields identical events.

    Raises :class:`StreamInvariantError` describing the first violation.
    """
    known_ids = set(catalog.object_ids)
    query_ids = set()
    update_ids = set()
    count = 0
    for event in stream.iter_events():
        count += 1
        if event.timestamp != float(count):
            raise StreamInvariantError(
                f"event {count} has timestamp {event.timestamp!r}; "
                f"expected consecutive {float(count)!r}"
            )
        if isinstance(event, UpdateEvent):
            update = event.update
            if update.update_id in update_ids:
                raise StreamInvariantError(
                    f"duplicate update id {update.update_id}"
                )
            update_ids.add(update.update_id)
            touched = [update.object_id]
            cost = update.cost
        else:
            query = event.query
            if query.query_id in query_ids:
                raise StreamInvariantError(
                    f"duplicate query id {query.query_id}"
                )
            query_ids.add(query.query_id)
            if not query.object_ids:
                raise StreamInvariantError(
                    f"query {query.query_id} has an empty footprint"
                )
            if query.tolerance < 0:
                raise StreamInvariantError(
                    f"query {query.query_id} has negative tolerance "
                    f"{query.tolerance!r}"
                )
            touched = list(query.object_ids)
            cost = query.cost
        if not (cost > 0 and math.isfinite(cost)):
            raise StreamInvariantError(
                f"event at timestamp {event.timestamp} has non-positive or "
                f"non-finite cost {cost!r}"
            )
        unknown = [oid for oid in touched if oid not in known_ids]
        if unknown:
            raise StreamInvariantError(
                f"event at timestamp {event.timestamp} references object "
                f"id(s) {unknown} missing from the catalogue"
            )
    if count != len(stream):
        raise StreamInvariantError(
            f"stream advertises {len(stream)} events but yielded {count}"
        )
    first = [
        (event.kind, event.timestamp) for event in stream.iter_events()
    ]
    second = [
        (event.kind, event.timestamp) for event in stream.iter_events()
    ]
    if first != second:
        raise StreamInvariantError(
            "stream is not restartable: two passes disagreed"
        )


# ----------------------------------------------------------------------
# The fuzzer's draw
# ----------------------------------------------------------------------
def _draw_segment_knobs(
    rng: np.random.Generator, model: str
) -> Tuple[Tuple[str, object], ...]:
    """Randomised *valid* knob overrides for one segment model."""
    if model == "flash_crowd":
        return (
            ("crowd_count", int(rng.integers(0, 5))),
            ("crowd_arrival", round(float(rng.uniform(0.0, 0.8)), 3)),
            ("crowd_duration", round(float(rng.uniform(0.05, 0.5)), 3)),
            ("crowd_intensity", round(float(rng.uniform(0.5, 0.99)), 3)),
        )
    if model == "diurnal":
        return (
            ("cycles", int(rng.integers(1, 7))),
            ("amplitude", round(float(rng.uniform(0.0, 0.95)), 3)),
        )
    if model == "update_storm":
        return (
            ("storm_count", int(rng.integers(0, 8))),
            ("storm_length", int(rng.integers(10, 200))),
            ("storm_width", int(rng.integers(1, 8))),
            ("storm_cost_factor", round(float(rng.uniform(1.0, 5.0)), 3)),
            ("storm_on_focus", round(float(rng.uniform(0.0, 1.0)), 3)),
        )
    if model == "cache_adversary":
        return (
            ("scan_probability", round(float(rng.uniform(0.0, 0.3)), 3)),
            ("update_in_set", round(float(rng.uniform(0.3, 1.0)), 3)),
        )
    raise FuzzError(f"no knob sampler for model {model!r}")


def draw_composition_spec(
    seed: int,
    max_segments: int = 3,
    max_events_per_segment: int = 400,
    object_count: Optional[int] = None,
) -> CompositionSpec:
    """One seeded fuzzer draw: a random multi-segment composition.

    Every draw is *valid by construction* -- segment knobs are sampled
    inside the model validators' ranges -- and fully determined by ``seed``,
    so a failing scenario is reproduced by its seed alone (and can be
    pinned as a file via :func:`save_regression`).
    """
    if max_segments < 1:
        raise FuzzError("max_segments must be at least 1")
    rng = np.random.default_rng(seed)
    segment_count = int(rng.integers(1, max_segments + 1))
    floor = 50
    segments = []
    for _ in range(segment_count):
        model = MODEL_NAMES[int(rng.integers(0, len(MODEL_NAMES)))]
        segments.append(
            SegmentSpec(
                model=model,
                query_count=int(rng.integers(floor, max_events_per_segment)),
                update_count=int(rng.integers(floor, max_events_per_segment)),
                knobs=_draw_segment_knobs(rng, model),
            )
        )
    return CompositionSpec(
        segments=tuple(segments),
        object_count=(
            object_count
            if object_count is not None
            else int(rng.integers(24, 96))
        ),
        cache_fraction=round(float(rng.uniform(0.1, 0.5)), 3),
        seed=seed,
        name=f"fuzz-{seed}",
    )
