"""Columnar (struct-of-arrays) compilation of traces.

The batched replay path in :mod:`repro.sim.batched` processes events in
vectorised batches instead of one Python object at a time.  To make that
possible a materialised trace is *compiled once* into numpy arrays -- the
:class:`TraceColumns` view -- and every batched policy run over the same
trace reuses the compilation (it is cached on the trace like the tagged
view).

Layout
------
Per event (length ``n``):

* ``timestamps`` -- ``float64`` arrival times,
* ``is_update`` -- boolean tags (the engines' dispatch bit),
* ``costs`` -- ``float64`` shipping costs (``query.cost`` or ``update.cost``),
* ``update_prefix`` -- ``int64`` of length ``n + 1``: the number of update
  events among events ``[0, i)``, so any event window maps to its update and
  query subranges by two lookups.

Per update event (length ``nu``, in event order):

* ``update_object_ids``, ``update_rows``, ``update_costs``.

Per query event (length ``nq``, in event order):

* ``query_costs``, ``query_timestamps``, and the ragged object-id sets in
  CSR form: ``query_object_ids`` (flat, each query's ids sorted) with
  ``query_object_offsets`` of length ``nq + 1``.

Numpy is optional at import time: when it is unavailable the module still
imports and :data:`COLUMNS_AVAILABLE` is ``False``, so the engines simply
keep the scalar path.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.trace import TaggedEvent

try:  # pragma: no cover - exercised implicitly by every columns test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None  # type: ignore[assignment]

#: Whether columnar compilation (and thus batched replay) is available.
COLUMNS_AVAILABLE = _np is not None


class TraceColumns:
    """Immutable columnar view over one window of a trace.

    Instances come from :meth:`repro.workload.trace.Trace.columns` (whole
    trace) or :meth:`window` (zero-copy sub-range, used by ``TraceView``).
    """

    __slots__ = (
        "timestamps",
        "is_update",
        "costs",
        "update_prefix",
        "update_object_ids",
        "update_rows",
        "update_costs",
        "query_costs",
        "query_timestamps",
        "query_object_ids",
        "query_object_offsets",
    )

    def __init__(
        self,
        timestamps: "_np.ndarray",
        is_update: "_np.ndarray",
        costs: "_np.ndarray",
        update_prefix: "_np.ndarray",
        update_object_ids: "_np.ndarray",
        update_rows: "_np.ndarray",
        update_costs: "_np.ndarray",
        query_costs: "_np.ndarray",
        query_timestamps: "_np.ndarray",
        query_object_ids: "_np.ndarray",
        query_object_offsets: "_np.ndarray",
    ) -> None:
        self.timestamps = timestamps
        self.is_update = is_update
        self.costs = costs
        self.update_prefix = update_prefix
        self.update_object_ids = update_object_ids
        self.update_rows = update_rows
        self.update_costs = update_costs
        self.query_costs = query_costs
        self.query_timestamps = query_timestamps
        self.query_object_ids = query_object_ids
        self.query_object_offsets = query_object_offsets

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tagged(cls, tagged: Sequence[TaggedEvent]) -> "TraceColumns":
        """Compile ``(is_update, payload)`` pairs into columnar arrays."""
        if _np is None:  # pragma: no cover - the image bakes numpy in
            raise RuntimeError("numpy is required to compile trace columns")
        n = len(tagged)
        timestamps = _np.empty(n, dtype=_np.float64)
        is_update = _np.zeros(n, dtype=bool)
        costs = _np.empty(n, dtype=_np.float64)
        update_object_ids: list[int] = []
        update_rows: list[int] = []
        query_flat_ids: list[int] = []
        query_offsets: list[int] = [0]
        for index, (tag, payload) in enumerate(tagged):
            timestamps[index] = payload.timestamp
            costs[index] = payload.cost
            if tag:
                is_update[index] = True
                update_object_ids.append(payload.object_id)
                update_rows.append(payload.rows)
            else:
                query_flat_ids.extend(sorted(payload.object_ids))
                query_offsets.append(len(query_flat_ids))
        update_prefix = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(is_update, dtype=_np.int64, out=update_prefix[1:])
        query_mask = ~is_update
        return cls(
            timestamps=timestamps,
            is_update=is_update,
            costs=costs,
            update_prefix=update_prefix,
            update_object_ids=_np.asarray(update_object_ids, dtype=_np.int64),
            update_rows=_np.asarray(update_rows, dtype=_np.int64),
            update_costs=costs[is_update],
            query_costs=costs[query_mask],
            query_timestamps=timestamps[query_mask],
            query_object_ids=_np.asarray(query_flat_ids, dtype=_np.int64),
            query_object_offsets=_np.asarray(query_offsets, dtype=_np.int64),
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def update_count(self) -> int:
        """Number of update events in the window."""
        return len(self.update_object_ids)

    @property
    def query_count(self) -> int:
        """Number of query events in the window."""
        return len(self.query_costs)

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def window(self, start: int, stop: int) -> "TraceColumns":
        """Columns for the event range ``[start, stop)`` (near zero-copy).

        Per-event and per-kind arrays are numpy slices of the parent; only
        the rebased CSR offsets and update prefix are copied (both are small
        relative to the window).
        """
        if not 0 <= start <= stop <= len(self):
            raise ValueError(
                f"window [{start}, {stop}) out of range for {len(self)} events"
            )
        update_start = int(self.update_prefix[start])
        update_stop = int(self.update_prefix[stop])
        query_start = start - update_start
        query_stop = stop - update_stop
        flat_start = int(self.query_object_offsets[query_start])
        flat_stop = int(self.query_object_offsets[query_stop])
        return TraceColumns(
            timestamps=self.timestamps[start:stop],
            is_update=self.is_update[start:stop],
            costs=self.costs[start:stop],
            update_prefix=self.update_prefix[start : stop + 1] - update_start,
            update_object_ids=self.update_object_ids[update_start:update_stop],
            update_rows=self.update_rows[update_start:update_stop],
            update_costs=self.update_costs[update_start:update_stop],
            query_costs=self.query_costs[query_start:query_stop],
            query_timestamps=self.query_timestamps[query_start:query_stop],
            query_object_ids=self.query_object_ids[flat_start:flat_stop],
            query_object_offsets=self.query_object_offsets[query_start : query_stop + 1]
            - flat_start,
        )
