"""SDSS-like query trace generator.

Generates a stream of :class:`repro.repository.queries.Query` whose
statistical properties match what the paper documents about the SDSS trace it
replays (Section 6.1 and Figure 7a):

* each query touches a *spatially coherent* set of objects -- a hotspot model
  picks an anchor object, and multi-object footprints extend to neighbouring
  object ids (object ids are assigned contiguously over the sky, so id
  adjacency approximates spatial adjacency),
* query hotspots drift over the trace and are disjoint from update hotspots,
* result costs are heavy-tailed (log-normal selectivity times the size of the
  touched data), calibrated so the full trace moves roughly
  ``target_total_cost`` of result bytes,
* early queries are cheap: a ramp factor keeps result costs small during the
  first ``warmup_fraction`` of the trace, reproducing the long warm-up the
  paper reports (the cache stays nearly empty because no object accumulates
  enough attributed cost to justify loading),
* a small fraction of queries carries a non-zero tolerance for staleness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query, QueryIdAllocator
from repro.workload.hotspots import HotspotModel
from repro.workload.templates import DEFAULT_TEMPLATES, TemplateShape, choose_template


@dataclass
class SDSSWorkloadConfig:
    """Tunable knobs of the query generator.

    The defaults reproduce the paper's qualitative workload; experiments
    override only what they sweep.
    """

    #: Number of queries to generate.
    query_count: int = 5000
    #: Target total result traffic (MB) across the whole trace; individual
    #: query costs are scaled so the generated trace lands near this figure.
    #: ``None`` disables rescaling.
    target_total_cost: Optional[float] = None
    #: Hotspot model parameters (the slowly drifting "core" hotspots).
    phase_length: int = 400
    focus_size: int = 8
    focus_probability: float = 0.8
    drift: float = 0.5
    zipf_exponent: float = 1.2
    #: Transient "flare" hotspots: short-lived bursts of interest in entirely
    #: different sky regions (the serendipitous-science evolution the paper
    #: stresses).  A flare block is redrawn from scratch every
    #: ``flare_phase_length`` flare-anchored queries and may land anywhere on
    #: the sky, including the update-hot region.
    flare_probability: float = 0.0
    flare_phase_length: int = 150
    flare_focus_size: int = 3
    #: Cost multiplier for flare-anchored queries.  Flares target sparse,
    #: previously unpopular sky regions, so their result sets are smaller than
    #: hotspot queries of the same template.
    flare_cost_factor: float = 0.5
    #: Cost multiplier for background (non-hotspot, non-flare) queries.  The
    #: popular regions are popular *because* they are data-rich; queries that
    #: wander off the hotspots return comparatively little data.
    background_cost_factor: float = 0.3
    #: Fraction of the trace treated as warm-up (cheap queries).
    warmup_fraction: float = 0.0
    #: Cost multiplier applied to queries inside the warm-up window.
    warmup_cost_factor: float = 0.1
    #: Fraction of queries with a non-zero tolerance for staleness.
    tolerant_fraction: float = 0.2
    #: Tolerance (in event-time units) granted to tolerant queries.
    tolerance_window: float = 50.0
    #: Object ids that query hotspots must avoid (typically update hotspots).
    excluded_hotspots: Sequence[int] = field(default_factory=tuple)
    #: Query templates to mix.
    templates: Sequence[TemplateShape] = DEFAULT_TEMPLATES
    #: RNG seed.
    seed: int = 42


def contiguous_footprint(object_ids: Sequence[int], anchor: int, size: int) -> List[int]:
    """A spatially coherent footprint of ``size`` objects around ``anchor``.

    Object ids are contiguous over the sky, so the footprint walks outward
    from the anchor id, wrapping at the catalogue boundary.  Pure function of
    its inputs (no RNG), shared by the SDSS generator and the scenario
    workload models.
    """
    anchor_index = object_ids.index(anchor)
    footprint = [anchor]
    offset = 1
    while len(footprint) < size and offset < len(object_ids):
        right = object_ids[(anchor_index + offset) % len(object_ids)]
        if right not in footprint:
            footprint.append(right)
        if len(footprint) < size:
            left = object_ids[(anchor_index - offset) % len(object_ids)]
            if left not in footprint:
                footprint.append(left)
        offset += 1
    return footprint[:size]


class SDSSQueryGenerator:
    """Generator of SDSS-shaped query streams over an object catalogue."""

    def __init__(self, catalog: ObjectCatalog, config: Optional[SDSSWorkloadConfig] = None) -> None:
        self._catalog = catalog
        self._config = config or SDSSWorkloadConfig()
        self._rng = np.random.default_rng(self._config.seed)
        self._allocator = QueryIdAllocator(start=1)
        excluded = [
            oid for oid in self._config.excluded_hotspots if oid in catalog
        ]
        # Guard: never exclude everything.
        if len(excluded) >= len(catalog):
            excluded = excluded[: len(catalog) // 2]
        self._hotspots = HotspotModel(
            object_ids=catalog.object_ids,
            phase_length=self._config.phase_length,
            focus_size=self._config.focus_size,
            focus_probability=self._config.focus_probability,
            drift=self._config.drift,
            zipf_exponent=self._config.zipf_exponent,
            rng=self._rng,
            excluded=excluded,
        )
        # Flares are fully redrawn each phase and may strike anywhere.
        self._flares = HotspotModel(
            object_ids=catalog.object_ids,
            phase_length=self._config.flare_phase_length,
            focus_size=self._config.flare_focus_size,
            focus_probability=1.0,
            drift=1.0,
            zipf_exponent=self._config.zipf_exponent,
            rng=self._rng,
        )

    @property
    def config(self) -> SDSSWorkloadConfig:
        """The generator's configuration."""
        return self._config

    @property
    def hotspot_model(self) -> HotspotModel:
        """The underlying hotspot model (exposed for diagnostics)."""
        return self._hotspots

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _footprint(self, anchor: int, size: int) -> List[int]:
        """See :func:`contiguous_footprint` (kept as a method for callers)."""
        return contiguous_footprint(self._catalog.object_ids, anchor, size)

    def _raw_cost(self, footprint: Sequence[int], template: TemplateShape) -> float:
        """Unscaled result cost: selectivity times the size of touched data."""
        touched_size = sum(self._catalog.size_of(object_id) for object_id in footprint)
        selectivity = template.draw_selectivity(self._rng)
        return max(touched_size * selectivity, 1e-6)

    def _draw_draft(
        self, index: int, warmup_cutoff: int
    ) -> Tuple[List[int], float, float, str]:
        """Draw one query draft: ``(footprint, raw cost, tolerance, template)``.

        All RNG consumption for one query happens here, in a fixed order, so
        the batch (:meth:`generate`) and streaming (:meth:`iter_queries`)
        paths produce byte-identical drafts from identically-seeded
        generators.
        """
        config = self._config
        template = choose_template(config.templates, self._rng)
        is_flare = self._rng.random() < config.flare_probability
        is_hotspot = False
        if is_flare:
            anchor = self._flares.next_object()
        else:
            anchor = self._hotspots.next_object()
            is_hotspot = anchor in self._hotspots.current_focus
        footprint_size = template.draw_footprint_size(self._rng)
        footprint = self._footprint(anchor, footprint_size)
        cost = self._raw_cost(footprint, template)
        if is_flare:
            cost *= config.flare_cost_factor
        elif not is_hotspot:
            cost *= config.background_cost_factor
        if index < warmup_cutoff:
            cost *= config.warmup_cost_factor
        tolerance = 0.0
        if self._rng.random() < config.tolerant_fraction:
            tolerance = config.tolerance_window
        return footprint, cost, tolerance, template.name

    def generate(self, timestamps: Optional[Sequence[float]] = None) -> List[Query]:
        """Generate the configured number of queries.

        Parameters
        ----------
        timestamps:
            Optional arrival times, one per query; defaults to 1, 2, 3, ...
            (the mixer re-stamps them when interleaving with updates).
        """
        config = self._config
        count = config.query_count
        if timestamps is not None and len(timestamps) != count:
            raise ValueError(
                f"got {len(timestamps)} timestamps for {count} queries"
            )
        warmup_cutoff = int(count * config.warmup_fraction)

        drafts: List[Tuple[int, List[int], float, float, str]] = []
        for index in range(count):
            footprint, cost, tolerance, template_name = self._draw_draft(
                index, warmup_cutoff
            )
            drafts.append((index, footprint, cost, tolerance, template_name))
            # keep timestamp paired with the draft implicitly via index

        costs = np.array([draft[2] for draft in drafts], dtype=float)
        if config.target_total_cost is not None and costs.sum() > 0:
            costs *= config.target_total_cost / costs.sum()

        queries: List[Query] = []
        for (index, footprint, _, tolerance, template_name), cost in zip(drafts, costs, strict=True):
            timestamp = float(timestamps[index]) if timestamps is not None else float(index + 1)
            queries.append(
                Query(
                    query_id=self._allocator.next_id(),
                    object_ids=frozenset(footprint),
                    cost=float(cost),
                    timestamp=timestamp,
                    tolerance=tolerance,
                    template=template_name,
                )
            )
        return queries

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def raw_cost_total(self) -> float:
        """Total unscaled cost over a full draft pass (consumes this generator).

        This is the calibration pass of the streaming pipeline: a fresh,
        identically-seeded generator draws every draft, accumulating only the
        cost vector, so the ``target_total_cost`` scale factor can be
        computed without holding any query objects.  The costs are summed
        through the same NumPy reduction :meth:`generate` uses, keeping the
        factor byte-identical between the two paths.
        """
        config = self._config
        count = config.query_count
        warmup_cutoff = int(count * config.warmup_fraction)
        costs = np.empty(count, dtype=float)
        for index in range(count):
            costs[index] = self._draw_draft(index, warmup_cutoff)[1]
        return float(costs.sum())

    def cost_scale(self) -> float:
        """The ``target_total_cost`` scale factor (consumes this generator)."""
        target = self._config.target_total_cost
        if target is None:
            return 1.0
        total = self.raw_cost_total()
        if total <= 0:
            return 1.0
        return target / total

    def iter_queries(self, cost_scale: float = 1.0) -> Iterator[Query]:
        """Yield queries one at a time (consumes this generator).

        ``cost_scale`` is the pre-computed ``target_total_cost`` factor (see
        :meth:`cost_scale`); pass ``1.0`` for unscaled costs.  Timestamps
        default to 1, 2, 3, ... exactly as :meth:`generate`'s.
        """
        config = self._config
        count = config.query_count
        warmup_cutoff = int(count * config.warmup_fraction)
        for index in range(count):
            footprint, cost, tolerance, template_name = self._draw_draft(
                index, warmup_cutoff
            )
            yield Query(
                query_id=self._allocator.next_id(),
                object_ids=frozenset(footprint),
                cost=float(cost * cost_scale),
                timestamp=float(index + 1),
                tolerance=tolerance,
                template=template_name,
            )

    def stream(self) -> Iterator[Query]:
        """Generate queries lazily (one at a time, default timestamps)."""
        for query in self.generate():
            yield query
