"""Survey update trace generator.

The paper simulates the update stream of Pan-STARRS/LSST-class surveys in
consultation with astronomers (Section 6.1): telescopes scan the sky along
great circles in a coordinated, systematic fashion, so updates are clustered
by sky region; the size of an update is proportional to the density of the
data object it hits; the total update traffic is calibrated to ~100 GB/day.

:class:`SurveyUpdateGenerator` reproduces those properties on top of the same
object catalogue the query generator uses.  Update *hotspots* are the objects
the current scan passes through, so they are spatially clustered and -- by
construction, because the query generator excludes them from its focus sets --
largely disjoint from query hotspots, as Figure 7(a) shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.repository.objects import ObjectCatalog
from repro.repository.updates import Update, UpdateIdAllocator, UpdateKind


@dataclass
class UpdateWorkloadConfig:
    """Tunable knobs of the update generator."""

    #: Number of updates to generate.
    update_count: int = 5000
    #: Target total update traffic (MB) across the trace; individual update
    #: costs are scaled so the generated trace lands near this figure.
    #: ``None`` disables rescaling.
    target_total_cost: Optional[float] = None
    #: Number of consecutive updates produced by one scan before the scan moves.
    scan_length: int = 250
    #: Number of adjacent objects a single scan sweeps over.
    scan_width: int = 6
    #: Probability that an update falls inside the current scan (vs. anywhere).
    scan_probability: float = 0.9
    #: Fraction of the sky (contiguous in object-id order) the survey is
    #: currently observing; scans wander only inside this region, which is
    #: what makes update hotspots persistent and distinct from query hotspots
    #: (Figure 7a).  ``1.0`` lets scans roam the whole sky.
    region_fraction: float = 0.35
    #: Fraction of updates that modify existing rows instead of inserting.
    modify_fraction: float = 0.05
    #: Mean rows per update (bookkeeping only).
    mean_rows: int = 2000
    #: RNG seed.
    seed: int = 1234


class SurveyUpdateGenerator:
    """Generator of spatially clustered, density-weighted update streams."""

    def __init__(
        self, catalog: ObjectCatalog, config: Optional[UpdateWorkloadConfig] = None
    ) -> None:
        self._catalog = catalog
        self._config = config or UpdateWorkloadConfig()
        if not 0.0 < self._config.region_fraction <= 1.0:
            raise ValueError("region_fraction must lie in (0, 1]")
        self._rng = np.random.default_rng(self._config.seed)
        self._allocator = UpdateIdAllocator(start=1)
        # The contiguous object-id region the survey currently observes.
        object_ids = catalog.object_ids
        region_size = max(
            min(self._config.scan_width, len(object_ids)),
            int(round(len(object_ids) * self._config.region_fraction)),
        )
        region_start = int(self._rng.integers(0, len(object_ids)))
        self._region = [
            object_ids[(region_start + offset) % len(object_ids)] for offset in range(region_size)
        ]
        self._scan_anchor_index = 0
        self._scan_position = 0
        self._scan_objects: List[int] = []
        self._advance_scan()

    @property
    def config(self) -> UpdateWorkloadConfig:
        """The generator's configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Scan management
    # ------------------------------------------------------------------
    def _advance_scan(self) -> None:
        """Move the telescope to the next scan stripe.

        Scans progress systematically across the observed region: the anchor
        advances by roughly one stripe width each time, wrapping around inside
        the region, as a survey would repeatedly tile its current footprint.
        """
        width = min(self._config.scan_width, len(self._region))
        start = self._scan_anchor_index % len(self._region)
        self._scan_objects = [
            self._region[(start + offset) % len(self._region)] for offset in range(width)
        ]
        self._scan_anchor_index = (start + width) % len(self._region)
        self._scan_position = 0

    def current_scan(self) -> List[int]:
        """Object ids covered by the current scan stripe."""
        return list(self._scan_objects)

    @property
    def observed_region(self) -> List[int]:
        """Object ids of the region the survey is currently observing."""
        return list(self._region)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _next_object(self) -> int:
        if self._scan_position >= self._config.scan_length:
            self._advance_scan()
        self._scan_position += 1
        if self._rng.random() < self._config.scan_probability:
            return int(self._rng.choice(self._scan_objects))
        return int(self._rng.choice(self._catalog.object_ids))

    def _draw_arrivals(self) -> np.ndarray:
        """Phase 1 of generation: every update's target object, in order.

        Returned as a compact integer array (not boxed Python ints) so the
        streaming path's per-update scratch stays at a few bytes per event.
        """
        count = self._config.update_count
        arrivals = np.empty(count, dtype=np.int64)
        for index in range(count):
            arrivals[index] = self._next_object()
        return arrivals

    def _draw_raw_costs(self, object_choices: np.ndarray) -> np.ndarray:
        """Phase 2: density-weighted log-normal cost per update, in order."""
        densities = self._catalog.densities()
        rng = self._rng
        # Update size ~ density of the object times a log-normal wobble.
        costs = np.empty(len(object_choices), dtype=float)
        for index, object_id in enumerate(object_choices):
            costs[index] = densities[int(object_id)] * float(rng.lognormal(0.0, 0.5))
        return costs

    def _draw_body(self) -> Tuple[str, int]:
        """Phase 3 (per update): the kind and row-count bookkeeping draws."""
        config = self._config
        kind = (
            UpdateKind.MODIFY
            if self._rng.random() < config.modify_fraction
            else UpdateKind.INSERT
        )
        rows = int(max(1, self._rng.poisson(config.mean_rows)))
        return kind, rows

    def generate(self, timestamps: Optional[Sequence[float]] = None) -> List[Update]:
        """Generate the configured number of updates.

        Parameters
        ----------
        timestamps:
            Optional arrival times, one per update; defaults to 1, 2, 3, ...
            (the mixer re-stamps them when interleaving with queries).
        """
        config = self._config
        count = config.update_count
        if timestamps is not None and len(timestamps) != count:
            raise ValueError(f"got {len(timestamps)} timestamps for {count} updates")

        object_choices = self._draw_arrivals()
        raw_costs = self._draw_raw_costs(object_choices)
        if config.target_total_cost is not None and raw_costs.sum() > 0:
            raw_costs *= config.target_total_cost / raw_costs.sum()

        updates: List[Update] = []
        for index, (object_id, cost) in enumerate(zip(object_choices, raw_costs, strict=True)):
            kind, rows = self._draw_body()
            timestamp = float(timestamps[index]) if timestamps is not None else float(index + 1)
            updates.append(
                Update(
                    update_id=self._allocator.next_id(),
                    object_id=int(object_id),
                    cost=float(cost),
                    timestamp=timestamp,
                    kind=kind,
                    rows=rows,
                )
            )
        return updates

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def raw_cost_total(self) -> float:
        """Total unscaled cost over a full phase-1/2 pass (consumes this generator).

        The calibration pass of the streaming pipeline: a fresh,
        identically-seeded generator draws the arrival and cost phases and
        returns the NumPy sum :meth:`generate` divides by, so the
        ``target_total_cost`` scale factor is byte-identical between the
        batch and streaming paths.
        """
        return float(self._draw_raw_costs(self._draw_arrivals()).sum())

    def cost_scale(self) -> float:
        """The ``target_total_cost`` scale factor (consumes this generator)."""
        target = self._config.target_total_cost
        if target is None:
            return 1.0
        total = self.raw_cost_total()
        if total <= 0:
            return 1.0
        return target / total

    def iter_updates(self, cost_scale: float = 1.0) -> Iterator[Update]:
        """Yield updates one at a time (consumes this generator).

        The generator's RNG phases are global over the stream (all arrivals,
        then all costs, then the per-update bookkeeping), so this holds the
        arrival ids and the cost vector as compact numeric buffers -- a few
        bytes per update, never update *objects*.  ``cost_scale`` is the
        pre-computed ``target_total_cost`` factor (see :meth:`cost_scale`).
        """
        object_choices = self._draw_arrivals()
        raw_costs = self._draw_raw_costs(object_choices)
        for index, (object_id, cost) in enumerate(zip(object_choices, raw_costs, strict=True)):
            kind, rows = self._draw_body()
            yield Update(
                update_id=self._allocator.next_id(),
                object_id=int(object_id),
                cost=float(cost * cost_scale),
                timestamp=float(index + 1),
                kind=kind,
                rows=rows,
            )

    def stream(self) -> Iterator[Update]:
        """Generate updates lazily (default timestamps)."""
        for update in self.generate():
            yield update

    def hotspot_objects(self, top: Optional[int] = None) -> List[int]:
        """Objects most likely to receive updates: the observed region.

        Used by experiment setup code to tell the query generator which
        objects to exclude from *its* hotspots so that the two streams have
        distinct hotspots, as in the paper's Figure 7(a).
        """
        if top is None or top >= len(self._region):
            return list(self._region)
        return list(self._region[:top])
