"""Lazily-generated trace sources for the standard (evolving) workload.

:class:`EvolvingTraceStream` is the streaming twin of the batch pipeline
``SDSSQueryGenerator.generate() + SurveyUpdateGenerator.generate() +
interleave()``: the same catalogue, the same seeds, the same event sequence
-- but produced one event at a time, so the simulation engines can replay
traces far larger than memory.

Byte-identity with the batch path is engineered, not hoped for:

* every generator draws its RNG in a fixed per-phase order shared with the
  batch path (``_draw_draft`` / the three update phases), so a fresh,
  identically-seeded generator instance reproduces the exact sequence;
* the ``target_total_cost`` calibration factor requires a whole-stream cost
  sum, which the batch path computes with NumPy's pairwise reduction.  The
  stream runs one *calibration pass* per side (queries, updates) on a fresh
  generator, accumulating only the cost vector and reducing it through the
  same NumPy sum -- then frees it.  The scratch is 8 bytes per event while
  calibrating, never event objects; the factors are cached, so repeated
  replays calibrate once.

The determinism harness (``tests/determinism_cases.py``) and the
streaming-vs-materialised equivalence tests pin this equality.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query
from repro.repository.updates import Update
from repro.workload.mixer import iter_interleaved
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.trace import TraceEvent, TraceStream
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig


class EvolvingTraceStream(TraceStream):
    """Streaming source for the paper's evolving-hotspot workload.

    Parameters
    ----------
    catalog:
        The object catalogue both generators draw from.
    query_config / update_config:
        The generator configurations (identical to what the batch scenario
        builder would hand ``SDSSQueryGenerator`` / ``SurveyUpdateGenerator``).
    mode / seed:
        Interleaving mode and seed (see :func:`repro.workload.mixer.interleave`).

    The stream is picklable (it carries only the catalogue and the configs),
    so it can cross a sweep-worker process boundary; the cached calibration
    factors are recomputed per process on first use.
    """

    def __init__(
        self,
        catalog: ObjectCatalog,
        query_config: SDSSWorkloadConfig,
        update_config: UpdateWorkloadConfig,
        mode: str = "uniform",
        seed: int = 99,
    ) -> None:
        self._catalog = catalog
        self._query_config = query_config
        self._update_config = update_config
        self._mode = mode
        self._seed = seed
        #: (query scale, update scale), computed once per process.
        self._scales: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # Pickling (sweeps ship sources to worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_scales"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Generator plumbing
    # ------------------------------------------------------------------
    def _fresh_query_generator(self) -> SDSSQueryGenerator:
        return SDSSQueryGenerator(self._catalog, self._query_config)

    def _fresh_update_generator(self) -> SurveyUpdateGenerator:
        return SurveyUpdateGenerator(self._catalog, self._update_config)

    def _cost_scales(self) -> Tuple[float, float]:
        """The two ``target_total_cost`` factors (calibrated once, cached)."""
        scales = self._scales
        if scales is None:
            scales = (
                self._fresh_query_generator().cost_scale(),
                self._fresh_update_generator().cost_scale(),
            )
            self._scales = scales
        return scales

    def iter_queries(self) -> Iterator[Query]:
        """The scaled query stream (pre-interleave timestamps)."""
        query_scale, _ = self._cost_scales()
        return self._fresh_query_generator().iter_queries(query_scale)

    def iter_updates(self) -> Iterator[Update]:
        """The scaled update stream (pre-interleave timestamps)."""
        _, update_scale = self._cost_scales()
        return self._fresh_update_generator().iter_updates(update_scale)

    # ------------------------------------------------------------------
    # TraceStream contract
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._query_config.query_count + self._update_config.update_count

    @property
    def query_count(self) -> int:
        return self._query_config.query_count

    @property
    def update_count(self) -> int:
        return self._update_config.update_count

    def iter_events(self) -> Iterator[TraceEvent]:
        return iter_interleaved(
            self.iter_queries(),
            self.iter_updates(),
            self._query_config.query_count,
            self._update_config.update_count,
            mode=self._mode,
            seed=self._seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvolvingTraceStream(queries={self.query_count}, "
            f"updates={self.update_count}, mode={self._mode!r})"
        )
