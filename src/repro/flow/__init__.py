"""Network-flow and vertex-cover substrate.

This package contains from-scratch implementations of the graph algorithms the
Delta decision framework relies on:

* :mod:`repro.flow.graph` -- a residual flow-network data structure,
* :mod:`repro.flow.maxflow` -- Edmonds-Karp and Dinic maximum-flow solvers
  plus the size-adaptive ``"auto"`` dispatch,
* :mod:`repro.flow.pushrelabel` -- the gap-heuristic push-relabel solver
  used for large covers,
* :mod:`repro.flow.incremental` -- an incremental max-flow solver that
  warm-starts from a previously computed flow when the network grows
  (the key primitive behind the ``UpdateManager`` in VCover),
* :mod:`repro.flow.vertex_cover` -- minimum-weight vertex cover on bipartite
  graphs via max-flow / min-cut (Koenig-style construction).

The implementations are deliberately dependency-free (``networkx`` is used only
as a test oracle) so that the incremental variants can expose the internal
residual state that VCover needs.
"""

from repro.flow.graph import FlowNetwork
from repro.flow.incremental import IncrementalMaxFlow
from repro.flow.maxflow import (
    dinic_max_flow,
    edmonds_karp_max_flow,
    solve_max_flow,
)
from repro.flow.pushrelabel import push_relabel_max_flow
from repro.flow.vertex_cover import (
    BipartiteCoverInstance,
    CoverResult,
    min_weight_vertex_cover,
)

__all__ = [
    "FlowNetwork",
    "IncrementalMaxFlow",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "push_relabel_max_flow",
    "solve_max_flow",
    "BipartiteCoverInstance",
    "CoverResult",
    "min_weight_vertex_cover",
]
