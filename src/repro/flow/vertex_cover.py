"""Minimum-weight vertex cover on bipartite graphs via maximum flow.

Theorem 1 in the paper states that, when the whole sequence is known, the
optimal ship-query / ship-update decision for the objects currently in cache
is the minimum-weight vertex cover of the internal interaction graph.  The
interaction graph is bipartite (edges only run between query nodes and update
nodes), so the cover can be computed exactly in polynomial time through the
classic reduction to max-flow / min-cut:

* add a source ``s`` with an arc to every *query* node of capacity equal to
  the query's weight (its shipping cost),
* add a sink ``t`` with an arc from every *update* node of capacity equal to
  the update's weight (its shipping cost),
* give every interaction edge (query, update) infinite capacity, oriented
  from the query side to the update side,
* compute a maximum ``s``-``t`` flow; the minimum cut consists of saturated
  source/sink arcs, and the corresponding vertices form a minimum-weight
  vertex cover (Koenig-type argument, see Hochbaum 1997).

The module exposes a convenience dataclass :class:`BipartiteCoverInstance`
describing an instance and :func:`min_weight_vertex_cover` which solves it and
returns a :class:`CoverResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from repro.flow.graph import EPSILON, FlowNetwork
from repro.flow.maxflow import solve_max_flow

Vertex = Hashable

#: Capacity used for interaction edges; effectively infinite relative to any
#: realistic shipping cost (costs are bytes and stay far below this value).
INFINITE_CAPACITY = float("inf")

#: Sentinel vertices added to the flow network.
SOURCE = "__source__"
SINK = "__sink__"


@dataclass(frozen=True, slots=True)
class BipartiteCoverInstance:
    """A minimum-weight vertex-cover instance on a bipartite graph.

    Attributes
    ----------
    left_weights:
        Weight of every left-side vertex (query shipping costs in Delta).
    right_weights:
        Weight of every right-side vertex (update shipping costs in Delta).
    edges:
        Interaction edges as ``(left_vertex, right_vertex)`` pairs.  Every
        endpoint must appear in the corresponding weight mapping.
    """

    left_weights: Mapping[Vertex, float]
    right_weights: Mapping[Vertex, float]
    edges: FrozenSet[Tuple[Vertex, Vertex]]

    def __post_init__(self) -> None:
        for left, right in self.edges:
            if left not in self.left_weights:
                raise ValueError(f"edge endpoint {left!r} missing from left_weights")
            if right not in self.right_weights:
                raise ValueError(f"edge endpoint {right!r} missing from right_weights")
        for name, weights in (("left", self.left_weights), ("right", self.right_weights)):
            for vertex, weight in weights.items():
                if weight < 0:
                    raise ValueError(f"{name} vertex {vertex!r} has negative weight {weight!r}")

    @staticmethod
    def from_iterables(
        left_weights: Mapping[Vertex, float],
        right_weights: Mapping[Vertex, float],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ) -> "BipartiteCoverInstance":
        """Build an instance, freezing the edge iterable."""
        return BipartiteCoverInstance(
            left_weights=dict(left_weights),
            right_weights=dict(right_weights),
            edges=frozenset(edges),
        )


@dataclass(frozen=True, slots=True)
class CoverResult:
    """Result of a minimum-weight vertex-cover computation.

    Attributes
    ----------
    left_in_cover / right_in_cover:
        Vertices chosen on each side of the bipartition.
    weight:
        Total weight of the chosen cover.
    flow_value:
        Value of the maximum flow used to certify optimality (equal to
        ``weight`` up to floating-point error by LP duality).
    """

    left_in_cover: FrozenSet[Vertex]
    right_in_cover: FrozenSet[Vertex]
    weight: float
    flow_value: float

    @property
    def cover(self) -> FrozenSet[Vertex]:
        """The full cover as a single frozen set."""
        return self.left_in_cover | self.right_in_cover

    def covers(self, edges: Iterable[Tuple[Vertex, Vertex]]) -> bool:
        """Return ``True`` when every edge has at least one endpoint in the cover."""
        cover = self.cover
        return all(left in cover or right in cover for left, right in edges)


def build_cover_network(instance: BipartiteCoverInstance) -> FlowNetwork:
    """Construct the source/sink-augmented flow network for ``instance``.

    Left vertices receive arcs from :data:`SOURCE` with capacity equal to
    their weight, right vertices receive arcs to :data:`SINK`, and interaction
    edges get infinite capacity.  The returned network carries no flow.
    """
    network = FlowNetwork()
    network.add_vertex(SOURCE)
    network.add_vertex(SINK)
    for vertex, weight in instance.left_weights.items():
        network.add_edge(SOURCE, ("L", vertex), weight)
    for vertex, weight in instance.right_weights.items():
        network.add_edge(("R", vertex), SINK, weight)
    for left, right in instance.edges:
        network.add_edge(("L", left), ("R", right), INFINITE_CAPACITY)
    return network


def extract_cover_from_network(
    instance: BipartiteCoverInstance, network: FlowNetwork
) -> CoverResult:
    """Extract the minimum-weight vertex cover from a maximally flowed network.

    A left vertex is in the cover iff it is *not* reachable from the source in
    the residual graph (its source arc lies on the min cut); a right vertex is
    in the cover iff it *is* reachable (its sink arc lies on the min cut).
    """
    reachable = network.residual_reachable(SOURCE)
    left_in_cover = frozenset(
        vertex for vertex in instance.left_weights if ("L", vertex) not in reachable
    )
    right_in_cover = frozenset(
        vertex for vertex in instance.right_weights if ("R", vertex) in reachable
    )
    # fsum: exact summation, so the weight is independent of set order.
    weight = math.fsum(instance.left_weights[v] for v in left_in_cover) + math.fsum(
        instance.right_weights[v] for v in right_in_cover
    )
    return CoverResult(
        left_in_cover=left_in_cover,
        right_in_cover=right_in_cover,
        weight=weight,
        flow_value=network.flow_value(SOURCE),
    )


def min_weight_vertex_cover(
    instance: BipartiteCoverInstance, method: str = "edmonds-karp"
) -> CoverResult:
    """Solve a bipartite minimum-weight vertex-cover instance exactly.

    Parameters
    ----------
    instance:
        The weighted bipartite instance.
    method:
        Max-flow solver to use (``"edmonds-karp"`` or ``"dinic"``).

    Returns
    -------
    CoverResult
        The optimal cover; isolated vertices (no incident edges) are never
        selected because covering nothing costs nothing.
    """
    network = build_cover_network(instance)
    solve_max_flow(network, SOURCE, SINK, method=method)
    result = extract_cover_from_network(instance, network)
    return _drop_isolated_vertices(instance, result)


def _drop_isolated_vertices(
    instance: BipartiteCoverInstance, result: CoverResult
) -> CoverResult:
    """Remove cover vertices with no incident edges (they are never needed).

    The max-flow construction never saturates arcs of isolated vertices, so in
    practice nothing changes, but zero-weight isolated vertices can appear on
    the unreachable side of the cut; dropping them keeps the cover minimal in
    the set-inclusion sense as well.
    """
    touched_left: Set[Vertex] = {left for left, _ in instance.edges}
    touched_right: Set[Vertex] = {right for _, right in instance.edges}
    left = frozenset(v for v in result.left_in_cover if v in touched_left)
    right = frozenset(v for v in result.right_in_cover if v in touched_right)
    weight = math.fsum(instance.left_weights[v] for v in left) + math.fsum(
        instance.right_weights[v] for v in right
    )
    return CoverResult(
        left_in_cover=left,
        right_in_cover=right,
        weight=weight,
        flow_value=result.flow_value,
    )


def brute_force_min_cover(instance: BipartiteCoverInstance) -> CoverResult:
    """Exponential-time exact solver used as a test oracle on tiny instances.

    Enumerates all subsets of the left side; given a fixed left subset the
    required right vertices are exactly those with an uncovered incident edge.
    """
    left_vertices = list(instance.left_weights)
    if len(left_vertices) > 20:
        raise ValueError("brute force oracle limited to 20 left vertices")
    best_weight = float("inf")
    best: Tuple[FrozenSet[Vertex], FrozenSet[Vertex]] = (frozenset(), frozenset())
    edge_list = list(instance.edges)
    for mask in range(1 << len(left_vertices)):
        chosen_left = {
            left_vertices[i] for i in range(len(left_vertices)) if mask & (1 << i)
        }
        needed_right = {right for left, right in edge_list if left not in chosen_left}
        weight = math.fsum(instance.left_weights[v] for v in chosen_left) + math.fsum(
            instance.right_weights[v] for v in needed_right
        )
        if weight < best_weight - EPSILON:
            best_weight = weight
            best = (frozenset(chosen_left), frozenset(needed_right))
    return CoverResult(
        left_in_cover=best[0],
        right_in_cover=best[1],
        weight=best_weight,
        flow_value=best_weight,
    )
