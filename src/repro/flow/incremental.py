"""Incremental maximum flow / minimum-weight vertex cover.

The UpdateManager in VCover (Figure 4/5 of the paper) never recomputes a flow
from scratch.  Instead it keeps the flow network built in the previous
iteration, adds the vertices and edges contributed by the newly arrived query
and its interacting updates, and searches only for *new* augmenting paths.
Because vertices and edges are only ever added (capacities never shrink), the
previous flow remains feasible and serves as the warm start.  The paper notes
that over an entire sequence this costs no more than a single Edmonds-Karp run
on the final network -- ``O(n m^2)`` instead of ``O(n^2 m^2)``.

:class:`IncrementalMaxFlow` packages that pattern: callers add weighted left
(query) and right (update) vertices and interaction edges, then ask for the
current minimum-weight vertex cover.  Vertices may also be *retired*
(removed from the cover bookkeeping) which is how the remainder subgraph of
Section 4 is maintained; retiring a vertex freezes its arcs by detaching it
from the bookkeeping rather than mutating the network, so previously computed
flow is untouched.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple

from repro.flow.graph import EPSILON, FlowNetwork
from repro.flow.maxflow import solve_max_flow
from repro.flow.vertex_cover import (
    SINK,
    SOURCE,
    BipartiteCoverInstance,
    CoverResult,
    INFINITE_CAPACITY,
)

Vertex = Hashable


class IncrementalMaxFlow:
    """Warm-started min-weight vertex cover over a growing bipartite graph.

    The class mirrors the interface the UpdateManager needs:

    * :meth:`add_left` / :meth:`add_right` register a weighted query/update
      vertex,
    * :meth:`add_edge` registers an interaction,
    * :meth:`compute_cover` augments the existing flow and returns the current
      minimum-weight vertex cover restricted to the *active* (non-retired)
      vertices,
    * :meth:`retire` removes vertices from the active set (remainder-subgraph
      maintenance); their arcs and flow stay in the underlying network so the
      warm start remains valid.
    """

    __slots__ = (
        "_network",
        "_method",
        "_left_weights",
        "_right_weights",
        "_edges",
        "_retired_left",
        "_retired_right",
        "_active_edge_set",
        "_left_incident",
        "_right_incident",
        "_augmentations",
    )

    def __init__(self, method: str = "edmonds-karp") -> None:
        self._network = FlowNetwork()
        self._network.add_vertex(SOURCE)
        self._network.add_vertex(SINK)
        self._method = method
        self._left_weights: Dict[Vertex, float] = {}
        self._right_weights: Dict[Vertex, float] = {}
        self._edges: Set[Tuple[Vertex, Vertex]] = set()
        self._retired_left: Set[Vertex] = set()
        self._retired_right: Set[Vertex] = set()
        # Edges with both endpoints active, maintained incrementally (plus
        # per-vertex incidence) so that cover extraction never rescans the
        # full accumulated edge set -- with thousands of retired edges that
        # rescan used to dominate the decision loop.
        self._active_edge_set: Set[Tuple[Vertex, Vertex]] = set()
        self._left_incident: Dict[Vertex, Set[Tuple[Vertex, Vertex]]] = {}
        self._right_incident: Dict[Vertex, Set[Tuple[Vertex, Vertex]]] = {}
        self._augmentations = 0

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def add_left(self, vertex: Vertex, weight: float) -> None:
        """Register a left-side (query) vertex with the given weight.

        Re-adding an existing vertex with a larger weight raises the capacity
        of its source arc; a smaller weight is rejected because capacities may
        not shrink under warm starts.
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        current = self._left_weights.get(vertex)
        if current is None:
            self._left_weights[vertex] = weight
            self._network.add_edge(SOURCE, ("L", vertex), weight)
        elif weight > current:
            self._network.add_edge(SOURCE, ("L", vertex), weight - current)
            self._left_weights[vertex] = weight
        elif weight < current - EPSILON:
            raise ValueError(
                f"cannot decrease weight of left vertex {vertex!r} "
                f"from {current!r} to {weight!r}"
            )
        if vertex in self._retired_left:
            self._retired_left.discard(vertex)
            retired_right = self._retired_right
            for edge in self._left_incident.get(vertex, ()):
                if edge[1] not in retired_right:
                    self._active_edge_set.add(edge)

    def add_right(self, vertex: Vertex, weight: float) -> None:
        """Register a right-side (update) vertex with the given weight."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight!r}")
        current = self._right_weights.get(vertex)
        if current is None:
            self._right_weights[vertex] = weight
            self._network.add_edge(("R", vertex), SINK, weight)
        elif weight > current:
            self._network.add_edge(("R", vertex), SINK, weight - current)
            self._right_weights[vertex] = weight
        elif weight < current - EPSILON:
            raise ValueError(
                f"cannot decrease weight of right vertex {vertex!r} "
                f"from {current!r} to {weight!r}"
            )
        if vertex in self._retired_right:
            self._retired_right.discard(vertex)
            retired_left = self._retired_left
            for edge in self._right_incident.get(vertex, ()):
                if edge[0] not in retired_left:
                    self._active_edge_set.add(edge)

    def add_edge(self, left: Vertex, right: Vertex) -> None:
        """Register an interaction edge between a query and an update vertex."""
        if left not in self._left_weights:
            raise KeyError(f"left vertex {left!r} has not been added")
        if right not in self._right_weights:
            raise KeyError(f"right vertex {right!r} has not been added")
        edge = (left, right)
        if edge in self._edges:
            return
        self._edges.add(edge)
        self._left_incident.setdefault(left, set()).add(edge)
        self._right_incident.setdefault(right, set()).add(edge)
        if left not in self._retired_left and right not in self._retired_right:
            self._active_edge_set.add(edge)
        self._network.add_edge(("L", left), ("R", right), INFINITE_CAPACITY)

    def has_left(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` is a registered, non-retired left vertex."""
        return vertex in self._left_weights and vertex not in self._retired_left

    def has_right(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` is a registered, non-retired right vertex."""
        return vertex in self._right_weights and vertex not in self._retired_right

    # ------------------------------------------------------------------
    # Remainder subgraph maintenance
    # ------------------------------------------------------------------
    def retire(self, left: Iterable[Vertex] = (), right: Iterable[Vertex] = ()) -> None:
        """Mark vertices as retired (excluded from future cover reports).

        The UpdateManager retires update vertices that were picked in a cover
        (their shipping has been paid for) and query vertices that were *not*
        picked (they were answered from cache and can no longer justify future
        shipping).  The underlying arcs keep their flow, preserving the warm
        start; only the reporting changes.
        """
        for vertex in left:
            if vertex in self._left_weights and vertex not in self._retired_left:
                self._retired_left.add(vertex)
                incident = self._left_incident.get(vertex)
                if incident:
                    self._active_edge_set.difference_update(incident)
        for vertex in right:
            if vertex in self._right_weights and vertex not in self._retired_right:
                self._retired_right.add(vertex)
                incident = self._right_incident.get(vertex)
                if incident:
                    self._active_edge_set.difference_update(incident)

    @property
    def active_left(self) -> FrozenSet[Vertex]:
        """Currently active (non-retired) left vertices."""
        return frozenset(v for v in self._left_weights if v not in self._retired_left)

    @property
    def active_right(self) -> FrozenSet[Vertex]:
        """Currently active (non-retired) right vertices."""
        return frozenset(v for v in self._right_weights if v not in self._retired_right)

    @property
    def active_edges(self) -> FrozenSet[Tuple[Vertex, Vertex]]:
        """Interaction edges whose both endpoints are active."""
        return frozenset(self._active_edge_set)

    @property
    def augmentation_count(self) -> int:
        """Number of times :meth:`compute_cover` has augmented the flow."""
        return self._augmentations

    # ------------------------------------------------------------------
    # Cover computation
    # ------------------------------------------------------------------
    def compute_cover(self) -> CoverResult:
        """Augment the warm-started flow and return the active vertex cover.

        The flow is augmented over the *entire* accumulated network (retired
        vertices keep contributing their flow, which is what keeps the warm
        start sound), but the reported cover is restricted to active vertices.
        """
        solve_max_flow(self._network, SOURCE, SINK, method=self._method)
        self._augmentations += 1
        reachable = self._network.residual_reachable(SOURCE)
        touched_left = set()
        touched_right = set()
        # Populate-only fold into sets: order provably does not matter.
        for left, right in self._active_edge_set:  # repro-lint: disable=DET003
            touched_left.add(left)
            touched_right.add(right)
        left_in_cover = frozenset(
            vertex
            for vertex in touched_left
            if ("L", vertex) not in reachable
        )
        right_in_cover = frozenset(
            vertex for vertex in touched_right if ("R", vertex) in reachable
        )
        # fsum: exact summation, so the weight is independent of set order.
        weight = math.fsum(self._left_weights[v] for v in left_in_cover) + math.fsum(
            self._right_weights[v] for v in right_in_cover
        )
        return CoverResult(
            left_in_cover=left_in_cover,
            right_in_cover=right_in_cover,
            weight=weight,
            flow_value=self._network.flow_value(SOURCE),
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @property
    def retired_count(self) -> int:
        """Number of retired vertices still occupying the underlying network."""
        return len(self._retired_left) + len(self._retired_right)

    def compact(self) -> None:
        """Rebuild the underlying network with retired vertices removed.

        Retired vertices never receive new edges, so they can only slow the
        augmenting-path searches down.  Compaction rebuilds the network over
        the active vertices only, preserving the decision-relevant state:

        * flow on active-active edges (and the matching flow on their source
          and sink arcs) is carried over unchanged;
        * capacity already *consumed* toward retired counterparts is removed
          from the vertex's arc (a left vertex that pushed ``f`` units into
          now-retired right vertices keeps ``weight - f`` of justification
          capacity), which leaves the residual graph -- and therefore every
          future cover decision -- identical to the un-compacted network.
        """
        old_network = self._network
        new_network = FlowNetwork()
        new_network.add_vertex(SOURCE)
        new_network.add_vertex(SINK)

        active_left = {v for v in self._left_weights if v not in self._retired_left}
        active_right = {v for v in self._right_weights if v not in self._retired_right}
        surviving_edges = {
            (left, right)
            for left, right in self._edges
            if left in active_left and right in active_right
        }
        # Arc insertion order steers the augmenting-path search, so fix it:
        # the rebuilt network must not depend on set iteration order.
        left_order = sorted(active_left)
        right_order = sorted(active_right)
        edge_order = sorted(surviving_edges)

        # Flow carried by surviving interaction edges, per endpoint.
        consumed_from_left: Dict[Vertex, float] = {v: 0.0 for v in left_order}
        consumed_into_right: Dict[Vertex, float] = {v: 0.0 for v in right_order}
        edge_flows: Dict[Tuple[Vertex, Vertex], float] = {}
        for left, right in edge_order:
            arc = old_network.get_edge(("L", left), ("R", right))
            flow = max(arc.flow, 0.0) if arc is not None else 0.0
            edge_flows[(left, right)] = flow
            consumed_from_left[left] += flow
            consumed_into_right[right] += flow

        for left in left_order:
            source_arc = old_network.get_edge(SOURCE, ("L", left))
            total_pushed = max(source_arc.flow, 0.0) if source_arc is not None else 0.0
            kept_flow = consumed_from_left[left]
            lost_flow = max(total_pushed - kept_flow, 0.0)
            capacity = max(self._left_weights[left] - lost_flow, kept_flow)
            arc = new_network.add_edge(SOURCE, ("L", left), capacity)
            arc.flow = kept_flow
            assert arc.partner is not None
            arc.partner.flow = -kept_flow
            self._left_weights[left] = capacity
        for right in right_order:
            sink_arc = old_network.get_edge(("R", right), SINK)
            total_received = max(sink_arc.flow, 0.0) if sink_arc is not None else 0.0
            kept_flow = consumed_into_right[right]
            lost_flow = max(total_received - kept_flow, 0.0)
            capacity = max(self._right_weights[right] - lost_flow, kept_flow)
            arc = new_network.add_edge(("R", right), SINK, capacity)
            arc.flow = kept_flow
            assert arc.partner is not None
            arc.partner.flow = -kept_flow
            self._right_weights[right] = capacity
        for (left, right), flow in edge_flows.items():
            arc = new_network.add_edge(("L", left), ("R", right), INFINITE_CAPACITY)
            arc.flow = flow
            assert arc.partner is not None
            arc.partner.flow = -flow

        self._network = new_network
        self._left_weights = {v: w for v, w in self._left_weights.items() if v in active_left}
        self._right_weights = {v: w for v, w in self._right_weights.items() if v in active_right}
        self._edges = set(surviving_edges)
        self._retired_left.clear()
        self._retired_right.clear()
        self._active_edge_set = set(surviving_edges)
        self._left_incident = {}
        self._right_incident = {}
        for edge in edge_order:
            self._left_incident.setdefault(edge[0], set()).add(edge)
            self._right_incident.setdefault(edge[1], set()).add(edge)

    # ------------------------------------------------------------------
    # Introspection / testing helpers
    # ------------------------------------------------------------------
    def to_instance(self, active_only: bool = True) -> BipartiteCoverInstance:
        """Export the current graph as a standalone cover instance.

        With ``active_only`` (the default) only non-retired vertices and the
        edges between them are exported, which is what an oracle should solve
        to cross-check :meth:`compute_cover`.
        """
        if active_only:
            left = {v: w for v, w in self._left_weights.items() if v not in self._retired_left}
            right = {
                v: w for v, w in self._right_weights.items() if v not in self._retired_right
            }
            edges = self.active_edges
        else:
            left = dict(self._left_weights)
            right = dict(self._right_weights)
            edges = frozenset(self._edges)
        return BipartiteCoverInstance(left_weights=left, right_weights=right, edges=edges)

    @property
    def network(self) -> FlowNetwork:
        """The underlying residual network (exposed for tests and metrics)."""
        return self._network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "IncrementalMaxFlow("
            f"left={len(self._left_weights)}, right={len(self._right_weights)}, "
            f"edges={len(self._edges)}, retired={len(self._retired_left) + len(self._retired_right)})"
        )
