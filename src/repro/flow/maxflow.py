"""Maximum-flow solvers: Edmonds-Karp, Dinic, push-relabel dispatch.

The paper's offline decoupling algorithm reduces minimum-weight vertex cover
on the (bipartite) internal interaction graph to a maximum-flow computation
and cites Edmonds-Karp as the solver.  We provide Edmonds-Karp (BFS augmenting
paths, the algorithm named in the paper), Dinic (blocking flows), and the
gap-heuristic push-relabel solver from :mod:`repro.flow.pushrelabel` for
large covers, plus an ``"auto"`` method that switches between them on graph
size.  All solvers operate on :class:`repro.flow.graph.FlowNetwork` and
*augment the existing flow*, which is what makes the incremental variant in
:mod:`repro.flow.incremental` a thin wrapper.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional

from repro.flow.graph import EPSILON, Arc, FlowNetwork
from repro.flow.pushrelabel import push_relabel_max_flow
from repro.perf import PHASE_COVER_SOLVE, add_phase_time, phase_clock

Vertex = Hashable


def _bfs_augmenting_path(
    network: FlowNetwork, source: Vertex, sink: Vertex
) -> Optional[List[Arc]]:
    """Find a shortest augmenting path from ``source`` to ``sink``.

    Returns the list of arcs along the path, or ``None`` when the sink is not
    reachable in the residual graph.
    """
    parents: Dict[Vertex, Arc] = {}
    visited = {source}
    queue = deque([source])
    adjacency = network.adjacency()
    while queue:
        vertex = queue.popleft()
        for arc in adjacency[vertex]:
            head = arc.head
            if arc.capacity - arc.flow <= EPSILON or head in visited:
                continue
            visited.add(head)
            parents[head] = arc
            if head == sink:
                path: List[Arc] = []
                node = sink
                while node != source:
                    arc_in = parents[node]
                    path.append(arc_in)
                    node = arc_in.tail
                path.reverse()
                return path
            queue.append(head)
    return None


def edmonds_karp_max_flow(network: FlowNetwork, source: Vertex, sink: Vertex) -> float:
    """Augment ``network`` to a maximum flow using Edmonds-Karp.

    The existing flow on the network is used as the starting point, so calling
    this repeatedly as the network grows performs exactly the incremental
    computation described in Section 4 of the paper.  Returns the *total*
    value of the flow from ``source`` after augmentation.
    """
    if not network.has_vertex(source) or not network.has_vertex(sink):
        return network.flow_value(source) if network.has_vertex(source) else 0.0
    while True:
        path = _bfs_augmenting_path(network, source, sink)
        if path is None:
            break
        bottleneck = min(arc.capacity - arc.flow for arc in path)
        if bottleneck <= EPSILON:
            break
        for arc in path:
            arc.push(bottleneck)
    return network.flow_value(source)


class _DinicState:
    """Per-phase state for Dinic's algorithm (levels and arc iterators)."""

    __slots__ = ("network", "source", "sink", "levels", "iter_pos")

    def __init__(self, network: FlowNetwork, source: Vertex, sink: Vertex) -> None:
        self.network = network
        self.source = source
        self.sink = sink
        self.levels: Dict[Vertex, int] = {}
        self.iter_pos: Dict[Vertex, int] = {}

    def build_levels(self) -> bool:
        """BFS layering of the residual graph; returns True if sink reachable."""
        levels = {self.source: 0}
        self.levels = levels
        queue = deque([self.source])
        adjacency = self.network.adjacency()
        while queue:
            vertex = queue.popleft()
            next_level = levels[vertex] + 1
            for arc in adjacency[vertex]:
                head = arc.head
                if arc.capacity - arc.flow > EPSILON and head not in levels:
                    levels[head] = next_level
                    queue.append(head)
        return self.sink in levels

    def send_blocking_flow(self, vertex: Vertex, limit: float) -> float:
        """DFS that pushes a blocking flow from ``vertex`` toward the sink."""
        if vertex == self.sink:
            return limit
        arcs = list(self.network.arcs_from(vertex))
        position = self.iter_pos.get(vertex, 0)
        levels = self.levels
        next_level = levels[vertex] + 1
        while position < len(arcs):
            arc = arcs[position]
            residual = arc.capacity - arc.flow
            if residual > EPSILON and levels.get(arc.head, -1) == next_level:
                pushed = self.send_blocking_flow(arc.head, min(limit, residual))
                if pushed > EPSILON:
                    arc.push(pushed)
                    self.iter_pos[vertex] = position
                    return pushed
            position += 1
            self.iter_pos[vertex] = position
        return 0.0


def dinic_max_flow(network: FlowNetwork, source: Vertex, sink: Vertex) -> float:
    """Augment ``network`` to a maximum flow using Dinic's algorithm.

    Like :func:`edmonds_karp_max_flow`, augmentation starts from the flow
    already on the network, so the function may be used incrementally.
    Returns the total flow value leaving ``source``.
    """
    if not network.has_vertex(source) or not network.has_vertex(sink):
        return network.flow_value(source) if network.has_vertex(source) else 0.0
    state = _DinicState(network, source, sink)
    infinity = float("inf")
    while state.build_levels():
        state.iter_pos = {}
        while True:
            pushed = state.send_blocking_flow(source, infinity)
            if pushed <= EPSILON:
                break
    return network.flow_value(source)


#: Mapping of solver names to callables, used by configuration code.
SOLVERS = {
    "edmonds-karp": edmonds_karp_max_flow,
    "dinic": dinic_max_flow,
    "push-relabel": push_relabel_max_flow,
}

#: Size-adaptive method name: small graphs use Edmonds-Karp (the paper's
#: choice, and byte-identical to the historical default), large graphs the
#: gap-heuristic push-relabel solver.
AUTO_METHOD = "auto"

#: ``auto`` switches to push-relabel at this many vertices.  Below the
#: threshold the augmenting-path searches are cheap and Edmonds-Karp's
#: warm-start behaviour is the historically pinned one; above it the
#: whole-graph BFS per augmentation starts to dominate the cover solve.
AUTO_PUSH_RELABEL_MIN_VERTICES = 512


def solve_max_flow(
    network: FlowNetwork, source: Vertex, sink: Vertex, method: str = "edmonds-karp"
) -> float:
    """Dispatch to a named max-flow solver.

    Parameters
    ----------
    network:
        The residual network to augment in place.
    source, sink:
        Flow endpoints.
    method:
        ``"edmonds-karp"`` (the paper's choice), ``"dinic"``,
        ``"push-relabel"``, or ``"auto"`` (size-adaptive: Edmonds-Karp below
        :data:`AUTO_PUSH_RELABEL_MIN_VERTICES` vertices, push-relabel above).

    Whichever solver runs, the resulting maximum flow is valid and warm-start
    reusable, and the residual min cut it induces is the same (the minimal
    source side of a min cut is unique), so the extracted covers do not
    depend on the method.
    """
    if method == AUTO_METHOD:
        method = (
            "push-relabel"
            if network.vertex_count >= AUTO_PUSH_RELABEL_MIN_VERTICES
            else "edmonds-karp"
        )
    try:
        solver = SOLVERS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown max-flow method {method!r}; expected one of {sorted(SOLVERS)}"
        ) from exc
    solve_start = phase_clock()
    try:
        return solver(network, source, sink)
    finally:
        add_phase_time(PHASE_COVER_SOLVE, phase_clock() - solve_start)
