"""Residual flow-network data structure.

The :class:`FlowNetwork` below is an adjacency-list residual graph supporting
the operations the Delta decision framework needs:

* adding vertices and capacitated edges *incrementally* (the interaction graph
  grows as queries and updates arrive),
* querying residual capacities and current flow on every edge,
* mutating flow along augmenting paths,
* computing the set of vertices reachable from the source in the residual
  graph (used to extract a minimum cut / vertex cover).

Vertices are arbitrary hashable identifiers.  Edges are stored as paired
forward/backward arcs so that pushing flow on one automatically updates the
residual capacity of the other.  Capacities are floats; the module treats any
value below :data:`EPSILON` as zero to keep floating-point arithmetic stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

#: Capacities or residuals below this threshold are treated as zero.
EPSILON = 1e-9

Vertex = Hashable


@dataclass(slots=True)
class Arc:
    """A single directed arc in the residual graph.

    Each logical edge ``u -> v`` with capacity ``c`` is represented by two
    :class:`Arc` objects: the forward arc (capacity ``c``) and the backward
    arc (capacity ``0``).  ``partner`` links the two so that pushing flow on
    one increases the residual capacity of the other.

    Arcs are the single most numerous objects in a run (every augmenting-path
    search touches them all), so the class is slotted and the solvers read
    ``capacity - flow`` directly instead of going through :attr:`residual`.
    """

    tail: Vertex
    head: Vertex
    capacity: float
    flow: float = 0.0
    partner: Optional["Arc"] = field(default=None, repr=False, compare=False)
    #: ``True`` for the arc that carries the original (non-residual) capacity.
    is_forward: bool = True

    @property
    def residual(self) -> float:
        """Remaining capacity on this arc."""
        return self.capacity - self.flow

    def push(self, amount: float) -> None:
        """Push ``amount`` units of flow along this arc.

        The partner arc's flow is decreased by the same amount, which is what
        makes the pair behave as a residual edge.
        """
        if amount < -EPSILON:
            raise ValueError(f"cannot push negative flow {amount!r}")
        if amount > self.residual + EPSILON:
            raise ValueError(
                f"pushing {amount!r} exceeds residual {self.residual!r} on arc "
                f"{self.tail!r}->{self.head!r}"
            )
        self.flow += amount
        if self.partner is not None:
            self.partner.flow -= amount


class FlowNetwork:
    """A mutable residual flow network over hashable vertices.

    The network supports incremental growth: vertices and edges may be added
    at any time, and previously computed flow remains valid (it never exceeds
    any capacity) because capacities only ever increase.  This is exactly the
    property the incremental vertex-cover computation in the UpdateManager
    relies on (Section 4 of the paper).
    """

    __slots__ = ("_adjacency", "_edge_index")

    def __init__(self) -> None:
        self._adjacency: Dict[Vertex, List[Arc]] = {}
        self._edge_index: Dict[Tuple[Vertex, Vertex], Arc] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the network (a no-op if already present)."""
        self._adjacency.setdefault(vertex, [])

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is present."""
        return vertex in self._adjacency

    def add_edge(self, tail: Vertex, head: Vertex, capacity: float) -> Arc:
        """Add a directed edge ``tail -> head`` with the given capacity.

        If the edge already exists its capacity is *increased* by
        ``capacity``; existing flow is preserved.  Returns the forward arc.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity!r}")
        if tail == head:
            raise ValueError(f"self-loop edges are not allowed ({tail!r})")
        self.add_vertex(tail)
        self.add_vertex(head)
        key = (tail, head)
        existing = self._edge_index.get(key)
        if existing is not None:
            existing.capacity += capacity
            return existing
        forward = Arc(tail=tail, head=head, capacity=capacity, is_forward=True)
        backward = Arc(tail=head, head=tail, capacity=0.0, is_forward=False)
        forward.partner = backward
        backward.partner = forward
        self._adjacency[tail].append(forward)
        self._adjacency[head].append(backward)
        self._edge_index[key] = forward
        return forward

    def set_capacity(self, tail: Vertex, head: Vertex, capacity: float) -> None:
        """Set the capacity of an existing edge.

        Raising the capacity keeps the current flow feasible.  Lowering it
        below the current flow raises :class:`ValueError` because that would
        invalidate the warm-start invariant.
        """
        arc = self.get_edge(tail, head)
        if arc is None:
            raise KeyError(f"edge {tail!r}->{head!r} does not exist")
        if capacity + EPSILON < arc.flow:
            raise ValueError(
                f"cannot lower capacity of {tail!r}->{head!r} below its current "
                f"flow ({arc.flow!r})"
            )
        arc.capacity = capacity

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get_edge(self, tail: Vertex, head: Vertex) -> Optional[Arc]:
        """Return the forward arc for edge ``tail -> head`` or ``None``."""
        return self._edge_index.get((tail, head))

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adjacency)

    def arcs_from(self, vertex: Vertex) -> Iterable[Arc]:
        """Iterate over all arcs (forward and residual) leaving ``vertex``."""
        return self._adjacency.get(vertex, ())

    def adjacency(self) -> Dict[Vertex, List[Arc]]:
        """The vertex -> outgoing-arcs map itself (solver fast path).

        The max-flow solvers walk every arc of the residual graph many times
        per augmentation; handing them the underlying dict avoids a method
        call per visited vertex.  Callers must treat the mapping and its
        lists as read-only.
        """
        return self._adjacency

    def forward_edges(self) -> Iterator[Arc]:
        """Iterate over every forward (original) arc in the network."""
        return iter(self._edge_index.values())

    @property
    def vertex_count(self) -> int:
        """Number of vertices currently in the network."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of forward edges currently in the network."""
        return len(self._edge_index)

    def flow_value(self, source: Vertex) -> float:
        """Net flow leaving ``source`` (the value of the current flow).

        Outgoing forward flow minus incoming forward flow.  A reverse arc at
        the source carries ``-flow`` of its inbound partner, so both kinds
        contribute with a plain ``+``.  The subtraction matters: push-relabel
        may legally drain excess back through a forward arc *into* the
        source, leaving a circulation that a gross-outflow sum would count
        as extra value.
        """
        total = 0.0
        for arc in self._adjacency.get(source, ()):
            total += arc.flow
        return total

    def out_flow(self, vertex: Vertex) -> float:
        """Sum of flow on forward arcs leaving ``vertex``."""
        return sum(arc.flow for arc in self._adjacency.get(vertex, ()) if arc.is_forward)

    def in_flow(self, vertex: Vertex) -> float:
        """Sum of flow on forward arcs entering ``vertex``."""
        total = 0.0
        for arcs in self._adjacency.values():
            for arc in arcs:
                if arc.is_forward and arc.head == vertex:
                    total += arc.flow
        return total

    # ------------------------------------------------------------------
    # Residual reachability (used for min-cut extraction)
    # ------------------------------------------------------------------
    def residual_reachable(self, source: Vertex) -> set:
        """Vertices reachable from ``source`` using arcs with positive residual."""
        if source not in self._adjacency:
            return set()
        adjacency = self._adjacency
        seen = {source}
        stack = [source]
        while stack:
            vertex = stack.pop()
            for arc in adjacency[vertex]:
                head = arc.head
                if arc.capacity - arc.flow > EPSILON and head not in seen:
                    seen.add(head)
                    stack.append(head)
        return seen

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by the test-suite)
    # ------------------------------------------------------------------
    def check_flow_conservation(self, source: Vertex, sink: Vertex) -> None:
        """Raise ``AssertionError`` if the current flow is infeasible.

        Checks capacity constraints on every forward arc and flow conservation
        at every vertex other than ``source`` and ``sink``.
        """
        for arc in self._edge_index.values():
            if arc.flow < -EPSILON or arc.flow > arc.capacity + EPSILON:
                raise AssertionError(
                    f"arc {arc.tail!r}->{arc.head!r} violates capacity: "
                    f"flow={arc.flow!r} capacity={arc.capacity!r}"
                )
        balance: Dict[Vertex, float] = {v: 0.0 for v in self._adjacency}
        for arc in self._edge_index.values():
            balance[arc.tail] -= arc.flow
            balance[arc.head] += arc.flow
        for vertex, net in balance.items():
            if vertex in (source, sink):
                continue
            if abs(net) > 1e-6:
                raise AssertionError(f"flow conservation violated at {vertex!r}: net={net!r}")

    def copy(self) -> "FlowNetwork":
        """Return a deep copy of the network (structure, capacities and flow)."""
        clone = FlowNetwork()
        for vertex in self._adjacency:
            clone.add_vertex(vertex)
        for (tail, head), arc in self._edge_index.items():
            new_arc = clone.add_edge(tail, head, arc.capacity)
            new_arc.flow = arc.flow
            assert new_arc.partner is not None
            new_arc.partner.flow = arc.partner.flow if arc.partner is not None else -arc.flow
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowNetwork(vertices={self.vertex_count}, edges={self.edge_count})"
        )
