"""Gap-heuristic push-relabel maximum flow.

Edmonds-Karp and Dinic (:mod:`repro.flow.maxflow`) find augmenting paths one
at a time; on the large interaction graphs a long vcover run accumulates,
their repeated whole-graph searches dominate the cover solve.  Push-relabel
works locally instead -- it saturates the source, then discharges per-vertex
excess downhill along a height labelling -- and the gap heuristic short-cuts
the long label-crawl that plain push-relabel suffers on graphs whose min cut
sits close to the source (exactly the shape the incremental cover networks
have).

The solver plays by the same rules as the other two:

* **Warm start** -- the flow already on the network is the starting point.
  Source arcs are saturated from their *residual* capacity, so a feasible
  flow from a previous solve (by any solver) is extended, never discarded.
* **Valid flow on exit** -- the algorithm runs to completion, returning
  unrouteable excess to the source, so the network ends with a feasible
  maximum flow (conservation holds everywhere) and later warm starts and
  residual min-cut extraction behave exactly as after the other solvers.
* **Determinism** -- vertices are processed in network insertion order, arcs
  in adjacency order, active vertices FIFO; no iteration order depends on
  hashing.

The existing solvers remain registered as oracles: the hypothesis property
suite checks value, conservation and min-cut agreement across all three.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List

from repro.flow.graph import EPSILON, Arc, FlowNetwork

Vertex = Hashable

__all__ = ["push_relabel_max_flow"]


def _saturation_bound(network: FlowNetwork, sink: Vertex) -> float:
    """A finite bound on how much more flow can ever reach the sink.

    Used to saturate infinite-capacity source arcs: pushing more than the
    residual capacity into the sink is pointless (it would all be returned).
    Raises ``ValueError`` when the bound itself is infinite (an unbounded
    source-to-sink path of infinite arcs).
    """
    bound = 0.0
    for arcs in network.adjacency().values():
        for arc in arcs:
            if arc.is_forward and arc.head == sink:
                residual = arc.capacity - arc.flow
                if residual > 0.0:
                    bound += residual
    if bound == float("inf"):
        raise ValueError("max flow is unbounded: infinite capacity into the sink")
    return bound


def push_relabel_max_flow(network: FlowNetwork, source: Vertex, sink: Vertex) -> float:
    """Augment ``network`` to a maximum flow using FIFO push-relabel.

    Like the other solvers, augmentation starts from the flow already on the
    network and the total flow value leaving ``source`` is returned.
    """
    if not network.has_vertex(source) or not network.has_vertex(sink):
        return network.flow_value(source) if network.has_vertex(source) else 0.0
    if source == sink:
        return network.flow_value(source)

    adjacency = network.adjacency()
    vertices: List[Vertex] = list(adjacency)
    vertex_count = len(vertices)
    height: Dict[Vertex, int] = {vertex: 0 for vertex in vertices}
    height[source] = vertex_count
    excess: Dict[Vertex, float] = {vertex: 0.0 for vertex in vertices}
    #: Current-arc pointer per vertex (the standard discharge optimisation).
    current: Dict[Vertex, int] = {vertex: 0 for vertex in vertices}
    #: Number of vertices at each height, for the gap heuristic.
    occupancy: Dict[int, int] = {0: vertex_count - 1, vertex_count: 1}

    # Phase 0: turn the warm-start flow into a preflow by saturating every
    # residual source arc.  Infinite arcs are filled up to a finite bound on
    # what the sink can still absorb.
    finite_bound: float = -1.0
    for arc in adjacency[source]:
        residual = arc.capacity - arc.flow
        if residual <= EPSILON:
            continue
        if residual == float("inf"):
            if finite_bound < 0.0:
                finite_bound = _saturation_bound(network, sink)
            residual = finite_bound
            if residual <= EPSILON:
                continue
        arc.push(residual)
        excess[arc.head] += residual

    active = deque(
        vertex
        for vertex in vertices
        if vertex not in (source, sink) and excess[vertex] > EPSILON
    )

    while active:
        vertex = active.popleft()
        _discharge(
            vertex,
            adjacency,
            vertices,
            height,
            excess,
            current,
            occupancy,
            active,
            source,
            sink,
            vertex_count,
        )

    return network.flow_value(source)


def _discharge(
    vertex: Vertex,
    adjacency: Dict[Vertex, List[Arc]],
    vertices: List[Vertex],
    height: Dict[Vertex, int],
    excess: Dict[Vertex, float],
    current: Dict[Vertex, int],
    occupancy: Dict[int, int],
    active: "deque[Vertex]",
    source: Vertex,
    sink: Vertex,
    vertex_count: int,
) -> None:
    """Push ``vertex``'s excess downhill, relabelling until it drains."""
    arcs = adjacency[vertex]
    arc_count = len(arcs)
    while excess[vertex] > EPSILON:
        position = current[vertex]
        if position == arc_count:
            # Relabel: one above the lowest residual neighbour.
            lowest = -1
            for arc in arcs:
                if arc.capacity - arc.flow > EPSILON:
                    head_height = height[arc.head]
                    if lowest < 0 or head_height < lowest:
                        lowest = head_height
            if lowest < 0:
                # No residual arc at all (float dust): abandon the remaining
                # sub-EPSILON excess rather than loop forever.
                return
            old_height = height[vertex]
            new_height = lowest + 1
            occupancy[old_height] = occupancy.get(old_height, 0) - 1
            if occupancy[old_height] == 0 and 0 < old_height < vertex_count:
                # Gap heuristic: nothing occupies old_height any more, so no
                # vertex above it (below n) can ever route to the sink again;
                # lift them all past n so their excess heads back to the
                # source without crawling one relabel at a time.
                for other in vertices:
                    other_height = height[other]
                    if old_height < other_height < vertex_count:
                        occupancy[other_height] = occupancy.get(other_height, 0) - 1
                        occupancy[vertex_count + 1] = (
                            occupancy.get(vertex_count + 1, 0) + 1
                        )
                        height[other] = vertex_count + 1
                        current[other] = 0
                if new_height < vertex_count + 1:
                    new_height = vertex_count + 1
            height[vertex] = new_height
            occupancy[new_height] = occupancy.get(new_height, 0) + 1
            current[vertex] = 0
            continue
        arc = arcs[position]
        residual = arc.capacity - arc.flow
        if residual > EPSILON and height[vertex] == height[arc.head] + 1:
            head = arc.head
            amount = excess[vertex] if excess[vertex] < residual else residual
            arc.push(amount)
            excess[vertex] -= amount
            if head != source and head != sink and excess[head] <= EPSILON:
                active.append(head)
            excess[head] += amount
        else:
            current[vertex] = position + 1
