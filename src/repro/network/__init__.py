"""Network substrate: traffic cost accounting.

Delta's sole optimisation objective is network traffic, measured in bytes
moved between the repository and the middleware cache.  The paper assumes
costs proportional to transfer size (valid for TCP when transfers dwarf frame
size).  :mod:`repro.network.cost` defines the cost model and
:mod:`repro.network.link` the per-mechanism traffic ledger used by the
simulator and the reports.
"""

from repro.network.cost import AffineCostModel, LinearCostModel, TrafficCostModel
from repro.network.latency import LatencyModel, ResponseTimeSummary, summarise_response_times
from repro.network.link import Mechanism, NetworkLink, TransferRecord

__all__ = [
    "AffineCostModel",
    "LinearCostModel",
    "TrafficCostModel",
    "LatencyModel",
    "ResponseTimeSummary",
    "summarise_response_times",
    "Mechanism",
    "NetworkLink",
    "TransferRecord",
]
