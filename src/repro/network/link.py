"""The (simulated) network link between repository and cache.

:class:`NetworkLink` is the single place where traffic costs are charged.
Every policy routes its query shipping, update shipping and object loading
through a link, so the simulator and the experiment harness can read one
ledger to produce the paper's cumulative-traffic curves and per-mechanism
breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._compat import SlottedFrozenPickle
from repro.network.cost import LinearCostModel, TrafficCostModel


class Mechanism:
    """The three data-communication mechanisms of Section 3."""

    QUERY_SHIPPING = "query_shipping"
    UPDATE_SHIPPING = "update_shipping"
    OBJECT_LOADING = "object_loading"

    ALL = (QUERY_SHIPPING, UPDATE_SHIPPING, OBJECT_LOADING)


@dataclass(frozen=True, slots=True)
class TransferRecord(SlottedFrozenPickle):
    """One charged transfer."""

    mechanism: str
    size: float
    cost: float
    timestamp: float
    #: Object involved (None for query shipping, which may span objects).
    object_id: Optional[int] = None
    #: Query or update id for provenance.
    event_id: Optional[int] = None


class NetworkLink:
    """Traffic ledger for one policy run.

    Parameters
    ----------
    cost_model:
        Traffic cost model; defaults to the paper's linear model.
    keep_records:
        When ``True`` every individual transfer is retained (useful for
        debugging and fine-grained analysis); cumulative counters are always
        maintained either way.
    """

    def __init__(
        self,
        cost_model: Optional[TrafficCostModel] = None,
        keep_records: bool = False,
    ) -> None:
        self._cost_model = cost_model or LinearCostModel()
        self._keep_records = keep_records
        self._records: List[TransferRecord] = []
        self._totals: Dict[str, float] = {mechanism: 0.0 for mechanism in Mechanism.ALL}
        self._counts: Dict[str, int] = {mechanism: 0 for mechanism in Mechanism.ALL}

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(
        self,
        mechanism: str,
        size: float,
        timestamp: float,
        object_id: Optional[int] = None,
        event_id: Optional[int] = None,
    ) -> float:
        """Charge one transfer and return its cost."""
        if mechanism not in Mechanism.ALL:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        cost = self._cost_model.cost(size)
        self._totals[mechanism] += cost
        self._counts[mechanism] += 1
        if self._keep_records:
            self._records.append(
                TransferRecord(
                    mechanism=mechanism,
                    size=size,
                    cost=cost,
                    timestamp=timestamp,
                    object_id=object_id,
                    event_id=event_id,
                )
            )
        return cost

    def absorb(
        self,
        mechanism: str,
        cost: float,
        timestamp: float,
        object_id: Optional[int] = None,
        event_id: Optional[int] = None,
    ) -> float:
        """Book an already-priced cost onto the ledger verbatim.

        Unlike :meth:`charge`, no cost model is applied -- ``cost`` is added
        as-is.  Meta-policies use this to mirror a shadow candidate's ledger
        (whose transfers were already priced by its own link) onto the real
        link without pricing them twice.
        """
        if mechanism not in Mechanism.ALL:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        self._totals[mechanism] += cost
        self._counts[mechanism] += 1
        if self._keep_records:
            self._records.append(
                TransferRecord(
                    mechanism=mechanism,
                    size=cost,
                    cost=cost,
                    timestamp=timestamp,
                    object_id=object_id,
                    event_id=event_id,
                )
            )
        return cost

    def ship_query(self, size: float, timestamp: float, query_id: Optional[int] = None) -> float:
        """Charge a query-shipping transfer."""
        return self.charge(Mechanism.QUERY_SHIPPING, size, timestamp, event_id=query_id)

    def ship_update(
        self, size: float, timestamp: float, object_id: Optional[int] = None,
        update_id: Optional[int] = None,
    ) -> float:
        """Charge an update-shipping transfer."""
        return self.charge(
            Mechanism.UPDATE_SHIPPING, size, timestamp, object_id=object_id, event_id=update_id
        )

    def load_object(self, size: float, timestamp: float, object_id: Optional[int] = None) -> float:
        """Charge an object-loading transfer."""
        return self.charge(Mechanism.OBJECT_LOADING, size, timestamp, object_id=object_id)

    def charge_batch(self, mechanism: str, priced_costs) -> None:
        """Charge a batch of already-priced same-mechanism transfers.

        ``priced_costs`` is a numpy array of per-transfer costs (the caller
        applies the cost model vectorised, see
        :meth:`repro.network.cost.LinearCostModel.cost_array`).  The running
        total is folded left-to-right via ``cumsum``, which performs exactly
        the same sequence of IEEE additions as charging each transfer
        individually -- the batched replay path depends on that to stay
        byte-identical to the scalar path.

        Only available on record-free links: per-transfer provenance cannot
        be reconstructed from a batch, so ``keep_records`` links must charge
        event by event.
        """
        if mechanism not in Mechanism.ALL:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        if self._keep_records:
            raise RuntimeError("charge_batch is not supported on recording links")
        count = len(priced_costs)
        if count == 0:
            return
        import numpy

        folded = numpy.empty(count + 1, dtype=numpy.float64)
        folded[0] = self._totals[mechanism]
        folded[1:] = priced_costs
        self._totals[mechanism] = float(numpy.cumsum(folded)[-1])
        self._counts[mechanism] += count

    # ------------------------------------------------------------------
    # Reading the ledger
    # ------------------------------------------------------------------
    @property
    def cost_model(self) -> TrafficCostModel:
        """The traffic cost model pricing every transfer."""
        return self._cost_model

    @property
    def keep_records(self) -> bool:
        """Whether individual transfers are retained."""
        return self._keep_records

    @property
    def total_cost(self) -> float:
        """Total traffic cost charged so far, in MB."""
        return sum(self._totals.values())

    def total_by_mechanism(self) -> Dict[str, float]:
        """Traffic cost per mechanism."""
        return dict(self._totals)

    def count_by_mechanism(self) -> Dict[str, int]:
        """Number of transfers per mechanism."""
        return dict(self._counts)

    @property
    def records(self) -> List[TransferRecord]:
        """Individual transfers (empty unless ``keep_records`` was set)."""
        return list(self._records)

    def reset(self) -> None:
        """Clear the ledger."""
        self._records.clear()
        self._totals = {mechanism: 0.0 for mechanism in Mechanism.ALL}
        self._counts = {mechanism: 0 for mechanism in Mechanism.ALL}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkLink(total={self.total_cost:.1f}MB)"
