"""Response-time (latency) model.

Delta's objective is network traffic, but the paper's discussion (Section 4)
notes the response-time consequences of its decisions: queries answered from a
fresh cache are fast; queries that must wait for updates to be shipped, or
that are shipped to the server themselves, pay wide-area latency; object loads
happen in the background and do not delay the triggering query.  The paper
sketches *preshipping* -- proactively pushing updates for hot cached objects --
as the lever for improving the response time of delayed queries.

:class:`LatencyModel` turns an audited
:class:`repro.core.decoupling.QueryOutcome` into an estimated response time
under a simple wide-area link model (round-trip time plus bytes over
bandwidth), so the preshipping extension and the latency ablations can be
evaluated quantitatively without simulating a full network stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.decoupling import QueryOutcome


@dataclass(frozen=True)
class LatencyModel:
    """A simple wide-area link latency model.

    Attributes
    ----------
    bandwidth:
        Sustained wide-area throughput in MB per second.
    round_trip_time:
        Per-exchange round-trip latency in seconds.
    local_latency:
        Time to answer a query entirely from the local cache, in seconds.
    """

    bandwidth: float = 100.0
    round_trip_time: float = 0.05
    local_latency: float = 0.005

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_trip_time < 0 or self.local_latency < 0:
            raise ValueError("latencies must be non-negative")

    def transfer_time(self, size: float) -> float:
        """Time to move ``size`` MB over the wide-area link (one exchange)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return 0.0
        return self.round_trip_time + size / self.bandwidth

    def response_time(self, outcome: QueryOutcome) -> float:
        """Estimated response time of one audited query outcome.

        * a query answered from a fresh cache costs only the local latency;
        * updates shipped *synchronously* to satisfy the query's currency add
          one wide-area exchange of their combined size;
        * a query shipped to the server adds one exchange of its result size;
        * object loads are background work (Figure 3 runs the LoadManager "in
          background") and do not delay the query.
        """
        time = self.local_latency
        if outcome.update_shipping_cost > 0:
            time += self.transfer_time(outcome.update_shipping_cost)
        if outcome.query_shipping_cost > 0:
            time += self.transfer_time(outcome.query_shipping_cost)
        return time

    def is_delayed(self, outcome: QueryOutcome) -> bool:
        """Whether the query had to wait on any wide-area exchange."""
        return outcome.query_shipping_cost > 0 or outcome.update_shipping_cost > 0


@dataclass
class ResponseTimeSummary:
    """Aggregate response-time statistics over a sequence of outcomes."""

    count: int
    mean: float
    p95: float
    max: float
    delayed_fraction: float

    @staticmethod
    def empty() -> "ResponseTimeSummary":
        """Summary of an empty outcome sequence."""
        return ResponseTimeSummary(count=0, mean=0.0, p95=0.0, max=0.0, delayed_fraction=0.0)


def summarise_response_times(
    outcomes: Iterable[QueryOutcome], model: LatencyModel
) -> ResponseTimeSummary:
    """Summarise the response times of a sequence of query outcomes."""
    times: List[float] = []
    delayed = 0
    for outcome in outcomes:
        times.append(model.response_time(outcome))
        if model.is_delayed(outcome):
            delayed += 1
    if not times:
        return ResponseTimeSummary.empty()
    times.sort()
    count = len(times)
    p95_index = min(count - 1, int(round(0.95 * (count - 1))))
    return ResponseTimeSummary(
        count=count,
        mean=sum(times) / count,
        p95=times[p95_index],
        max=times[-1],
        delayed_fraction=delayed / count,
    )
