"""Traffic cost models.

The paper's cost model is linear: the network traffic cost of any transfer is
proportional to the number of bytes moved (Section 3, citing Stevens' TCP/IP
behaviour for large transfers).  We keep the abstraction pluggable so that
ablations can explore affine models with a per-message overhead -- the
per-message overhead is what makes shipping thousands of tiny updates less
attractive than the pure linear model suggests, a realistic refinement the
paper leaves to future work.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class TrafficCostModel(abc.ABC):
    """Maps a transfer size (MB) to a traffic cost."""

    @abc.abstractmethod
    def cost(self, size: float) -> float:
        """Traffic cost of moving ``size`` MB in one transfer."""

    def cost_of_many(self, sizes) -> float:
        """Total cost of a sequence of transfers."""
        return sum(self.cost(size) for size in sizes)


@dataclass(frozen=True)
class LinearCostModel(TrafficCostModel):
    """The paper's model: cost equals bytes moved (times an optional factor)."""

    factor: float = 1.0

    def cost(self, size: float) -> float:
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size!r}")
        return self.factor * size

    def cost_array(self, sizes):
        """Vectorised :meth:`cost` over a numpy array of sizes.

        Element-for-element this performs the same IEEE multiply as the
        scalar method, so batched charging stays bitwise identical to
        per-event charging.  The presence of this method is what marks a
        cost model as batchable (see :mod:`repro.sim.batched`).
        """
        if len(sizes) and sizes.min() < 0:
            raise ValueError("transfer sizes must be non-negative")
        return self.factor * sizes


@dataclass(frozen=True)
class AffineCostModel(TrafficCostModel):
    """Linear cost plus a fixed per-message overhead (used in ablations)."""

    factor: float = 1.0
    overhead: float = 0.0

    def cost(self, size: float) -> float:
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size!r}")
        if size == 0:
            return 0.0
        return self.overhead + self.factor * size

    def cost_array(self, sizes):
        """Vectorised :meth:`cost` (same ``overhead + factor * size`` ops)."""
        if len(sizes) and sizes.min() < 0:
            raise ValueError("transfer sizes must be non-negative")
        priced = self.overhead + self.factor * sizes
        priced[sizes == 0] = 0.0
        return priced
