"""Command-line interface for the Delta reproduction.

The CLI is a thin veneer over :mod:`repro.api`, the library's stable facade;
it exists so the system can be exercised without writing Python.  Invoke it
as ``python -m repro`` (or ``python -m repro.cli``).

Registry-driven subcommands:

``experiment list``
    Enumerate every registered experiment (``--markdown`` emits the table
    used in ``docs/experiments.md``).

``experiment run <name>``
    Run a registered experiment; ``--set key=value`` overrides scenario
    config fields or experiment knobs, ``--jobs N`` fans the experiment's
    grid out over worker processes.

``scenario validate <file>``
    Check a JSON/TOML scenario file against the scenario schema.

``scenario run <file>``
    Run a scenario file against several policies and print the comparison.

``ingest <file>``
    Read a CSV/JSONL/parquet query log, fit the scenario knobs to it
    (Zipf exponent, query/update mix, phase boundaries, tolerance mix) and
    write the calibrated, replayable scenario JSON.

Classic workflows (all re-expressed over the facade):

``generate-trace``
    Build an SDSS-style interleaved trace and write it to a JSONL file.

``run``
    Replay a trace (generated on the fly or loaded from JSONL) against one
    policy and print the traffic report.

``compare``
    Run several policies over the same scenario and print the Figure 7(b)
    style comparison table (``--jobs N`` runs the policies in parallel).

``sweep``
    Fan a ``policy x cache-fraction x seed`` grid out over worker processes
    (``--jobs N``), print a per-point summary, and optionally write one JSON
    artifact per grid point plus a manifest (``--out DIR``).

``topology``
    Replay the scenario against a fleet of ``--sites N`` caches sharing one
    repository, one multi-cache run per ``--policies`` entry.

``bench``
    Run a timed benchmark suite (``--suite quick|full``), write the
    machine-readable result JSON (``--out``), and/or compare a result
    against a baseline (``--compare BASELINE.json --tolerance 0.15``;
    exit code 3 when a timing regressed beyond the tolerance). The
    summary includes the per-case phase breakdown (trace compile, batch
    dispatch, cover solve, metrics) when the payload carries one.

``lint``
    Run the repro static analyser over the tree (``repro lint src tests``):
    determinism rules (DET001-DET003), contract rules (PICK001, SLOT001),
    async-safety (ASYNC001) and registry consistency (REG001).  Exit 1 on
    findings, 2 on bad arguments; ``--format json`` emits the
    machine-readable report.

``serve``
    Boot the asyncio cache-middleware server: one policy + repository +
    network-link stack behind a single-writer event loop, speaking the
    NDJSON protocol of :mod:`repro.serve.protocol` over TCP.

``loadgen``
    Drive a served cache with ``--clients N`` closed-loop clients replaying
    a generated scenario trace (in-process server by default, or
    ``--connect HOST:PORT`` against a running ``repro serve``), print
    measured vs model-predicted latency percentiles, and optionally write
    the ``repro.bench/v2`` payload (``--out``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import __version__, api
from repro.core.benefit import BenefitConfig
from repro.experiments import fig7a
from repro.experiments.config import WORKLOAD_MODELS, ExperimentConfig
from repro.experiments.registry import UnknownExperimentError, UnknownOverrideError
from repro.experiments.spec import ScenarioError, ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs, run_policy
from repro.sim.sweep import PointResult, SweepPoint, SweepRunner
from repro.topology.spec import TopologySpec
from repro.workload.ingest import IngestError
from repro.serve.harness import SERVABLE_POLICIES
from repro.workload.partition import PARTITION_STRATEGIES
from repro.workload.trace import Trace

#: Policies selectable from the command line.
POLICY_CHOICES = ("vcover", "benefit", "nocache", "replica", "soptimal", "adaptive")

#: Ratio keys printed under a comparison table, in display order.
SUMMARY_RATIOS = (
    "nocache_over_vcover",
    "replica_over_vcover",
    "benefit_over_vcover",
    "vcover_over_soptimal",
)


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every subcommand that builds a scenario."""
    parser.add_argument("--objects", type=int, default=68,
                        help="number of spatial data objects (default: 68)")
    parser.add_argument("--queries", type=int, default=4000,
                        help="number of query events (default: 4000)")
    parser.add_argument("--updates", type=int, default=4000,
                        help="number of update events (default: 4000)")
    parser.add_argument("--cache", type=float, default=0.3,
                        help="cache size as a fraction of the server (default: 0.3)")
    parser.add_argument("--seed", type=int, default=7, help="workload seed (default: 7)")


def _at_least_one(flag: str):
    """Argparse type factory for counts that must be >= 1 (--jobs, --sites)."""

    def parse(value: str) -> int:
        try:
            number = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
        if number < 1:
            raise argparse.ArgumentTypeError(f"{flag} must be at least 1")
        return number

    return parse


_positive_jobs = _at_least_one("--jobs")
_positive_sites = _at_least_one("--sites")


def _unique(values: Sequence) -> List:
    """Drop duplicates, preserving first-seen order (grid axes)."""
    return list(dict.fromkeys(values))


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """The declarative scenario spec described by the shared flags."""
    return ScenarioSpec(
        ExperimentConfig(
            object_count=args.objects,
            query_count=args.queries,
            update_count=args.updates,
            cache_fraction=args.cache,
            seed=args.seed,
        )
    )


def _parse_overrides(assignments: Sequence[str]) -> Dict[str, object]:
    """Parse ``--set key=value`` pairs (values are JSON, falling back to str)."""
    overrides: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        if not sep or not key:
            raise ScenarioError(
                f"malformed --set {assignment!r}; expected key=value"
            )
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _print_comparison(comparison: ComparisonResult) -> None:
    """Comparison table plus the headline ratios, as `compare` prints them."""
    print(comparison.as_table())
    summary = comparison.summary()
    for key in SUMMARY_RATIOS:
        if key in summary:
            print(f"{key:>24}: {summary[key]:.2f}")


# ----------------------------------------------------------------------
# Registry-driven subcommands
# ----------------------------------------------------------------------
def format_experiment_table(markdown: bool = False) -> str:
    """The registered experiments as a table (markdown = docs format)."""
    specs = api.experiment_specs()
    if markdown:
        lines = [
            "| Experiment | Paper artifact | Default grid knobs | Description |",
            "|---|---|---|---|",
        ]
        for spec in specs:
            knobs = ", ".join(f"`{key}`" for key in spec.knobs) or "—"
            lines.append(
                f"| `{spec.name}` | {spec.paper_ref or '—'} | {knobs} | {spec.title} |"
            )
        return "\n".join(lines)
    lines = [f"{'name':<12} {'paper artifact':<16} title"]
    for spec in specs:
        lines.append(f"{spec.name:<12} {spec.paper_ref or '-':<16} {spec.title}")
    return "\n".join(lines)


def _cmd_experiment_list(args: argparse.Namespace) -> int:
    print(format_experiment_table(markdown=args.markdown))
    return 0


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    try:
        overrides = _parse_overrides(args.set or [])
        result = api.run_experiment(args.name, overrides=overrides, jobs=args.jobs)
    except (UnknownExperimentError, UnknownOverrideError, ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(api.format_result(args.name, result))
    return 0


def _cmd_scenario_validate(args: argparse.Namespace) -> int:
    try:
        spec = api.load_scenario(args.file)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = spec.config
    print(f"scenario {spec.name!r} is valid")
    print(f"  objects      : {config.object_count}")
    print(f"  events       : {config.total_events} "
          f"({config.query_count} queries, {config.update_count} updates)")
    print(f"  server size  : {config.server_size:.1f} MB")
    print(f"  cache        : {config.cache_fraction:.0%} of the server")
    print(f"  seed         : {config.seed}")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    try:
        spec = api.load_scenario(args.file)
        policies = _unique(args.policies) if args.policies else None
        comparison = api.run_scenario(
            spec, policies=policies, jobs=args.jobs, streaming=args.streaming
        )
    except (ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_comparison(comparison)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    try:
        spec, calibration = api.ingest_scenario(args.file, name=args.name)
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = args.out if args.out is not None else Path(f"{Path(args.file).stem}.scenario.json")
    api.save_scenario(spec, out)
    print(f"ingested {args.file} -> scenario {spec.name!r}")
    print(calibration.report())
    print(f"wrote {out}")
    print(f"replay with: repro scenario run {out} --streaming")
    return 0


# ----------------------------------------------------------------------
# Classic subcommands (re-expressed over the facade)
# ----------------------------------------------------------------------
def _cmd_generate_trace(args: argparse.Namespace) -> int:
    scenario = _spec_from_args(args).build()
    scenario.trace.to_jsonl(args.out)
    stats = scenario.trace.describe()
    print(f"wrote {int(stats['events'])} events to {args.out}")
    print(f"  queries: {int(stats['queries'])} ({stats['total_query_cost']:.1f} MB of results)")
    print(f"  updates: {int(stats['updates'])} ({stats['total_update_cost']:.1f} MB of inserts)")
    if args.characterise:
        print()
        print(fig7a.format_report(fig7a.characterise_trace(scenario.trace)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = spec.config
    scenario = spec.build()
    trace = Trace.from_jsonl(args.trace) if args.trace is not None else scenario.trace
    policy_spec = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=(args.policy,),
    )[0]
    result = run_policy(
        policy_spec,
        scenario.catalog,
        trace,
        cache_capacity=scenario.cache_capacity,
        engine_config=EngineConfig(
            sample_every=config.sample_every, measure_from=config.measure_from
        ),
    )
    print(f"policy           : {result.policy_name}")
    print(f"events processed : {result.events_processed}")
    print(f"cache answers    : {result.cache_answer_fraction:.1%}")
    print(f"total traffic    : {result.total_traffic:.1f} MB")
    for mechanism, value in result.traffic_by_mechanism.items():
        print(f"  {mechanism:<16}: {value:.1f} MB")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    policies = _unique(args.policies) if args.policies else api.DEFAULT_POLICIES
    comparison = api.run_scenario(spec, policies=policies, jobs=args.jobs)
    _print_comparison(comparison)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _spec_from_args(args).config
    policies = _unique(args.policies) if args.policies else api.DEFAULT_POLICIES
    fractions = (
        _unique(args.cache_fractions) if args.cache_fractions
        else (config.cache_fraction,)
    )
    seeds = _unique(args.seeds) if args.seeds else (config.seed,)
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=policies,
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )

    scenarios = {
        f"seed{seed}": ScenarioSpec(config.scaled(seed=seed), name=f"seed{seed}")
        for seed in seeds
    }
    # repr() is a round-trippable float encoding, so distinct fractions can
    # never collide into one key (unlike %g, which rounds to 6 digits).
    points = [
        SweepPoint(
            key=f"{spec.name}-c{fraction!r}-s{seed}",
            spec=spec,
            scenario=f"seed{seed}",
            cache_fraction=fraction,
            engine=engine,
            seed=seed,
            tags=(("fraction", fraction), ("seed", seed)),
        )
        for seed in seeds
        for fraction in fractions
        for spec in specs
    ]

    def progress(done: int, total: int, result: PointResult) -> None:
        print(
            f"[{done}/{total}] {result.point.key}: "
            f"{result.run.measured_traffic:.1f} MB measured",
            file=sys.stderr,
        )

    runner = SweepRunner(jobs=args.jobs, output_dir=args.out, progress=progress)
    result = runner.run(points, scenarios)
    print(result.format_summary())
    if result.artifact_dir is not None:
        print(f"wrote {len(result)} artifacts + manifest to {result.artifact_dir}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported here so the (cheap) classic subcommands never pay for it.
    from repro.bench import (
        BenchSchemaError,
        SUITES,
        compare_payloads,
        run_suite,
    )
    from repro.bench.runner import format_payload, load_payload, write_payload

    if args.list:
        for name, cases in SUITES.items():
            print(f"{name}:")
            for case in cases:
                print(f"  {case.name:<20} {case.description}")
        return 0

    try:
        if args.input is not None:
            payload = load_payload(args.input)
        else:

            def progress(done: int, total: int, result) -> None:
                print(
                    f"[{done}/{total}] {result['name']}: "
                    f"{result['wall_clock_s']:.2f}s",
                    file=sys.stderr,
                )

            payload = run_suite(args.suite, jobs=args.jobs, progress=progress)
    except (BenchSchemaError, KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out is not None:
        write_payload(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(format_payload(payload))

    if args.compare is None:
        return 0
    try:
        baseline = load_payload(args.compare)
        report = compare_payloads(payload, baseline, tolerance=args.tolerance)
    except (BenchSchemaError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.format())
    return 0 if report.ok else 3


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so the classic subcommands never pay for rule loading.
    from repro.lint import LintInputError, all_rules, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<9} [{rule.severity}] {rule.title}")
        return 0

    try:
        report = run_lint(args.paths, rule=args.rule)
    except LintInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.format_json())
    else:
        output = report.format_text()
        if output:
            print(output)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the classic subcommands never pay for the serve stack.
    import asyncio

    from repro.experiments.config import build_catalog
    from repro.serve.server import CacheServer, install_uvloop

    config = _spec_from_args(args).config.scaled(workload_model=args.model)
    spec = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=(args.policy,),
    )[0]
    catalog = build_catalog(config)
    server = CacheServer(
        catalog,
        spec,
        catalog.total_size * config.cache_fraction,
        host=args.host,
        port=args.port,
    )
    uvloop_active = install_uvloop()

    async def _serve() -> None:
        await server.start()
        print(
            f"serving policy={args.policy} on {server.host}:{server.port} "
            f"(objects={args.objects}, seed={args.seed}, "
            f"uvloop={'on' if uvloop_active else 'off'})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.network.latency import LatencyModel
    from repro.serve.client import ServeError
    from repro.serve.harness import format_load_report, run_loadgen

    connect = None
    if args.connect is not None:
        host, sep, port = args.connect.rpartition(":")
        if not sep or not host or not port.isdigit():
            print(
                f"error: --connect expects HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 2
        connect = (host, int(port))
    config = _spec_from_args(args).config.scaled(workload_model=args.model)
    try:
        report, payload = run_loadgen(
            config=config,
            policy=args.policy,
            clients=args.clients,
            connect=connect,
            latency_model=LatencyModel(),
        )
    except (ConnectionError, OSError, ServeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_load_report(report))
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote bench payload to {args.out}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = spec.config
    if args.sites > args.objects:
        # Both strategies need at least one object per site (region would
        # raise deep in the partitioner, affinity would leave sites empty).
        print(
            f"error: --sites {args.sites} exceeds the object count "
            f"({args.objects}); every site needs at least one object",
            file=sys.stderr,
        )
        return 2
    policies = _unique(args.policies) if args.policies else ("vcover", "nocache")
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=policies,
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    points = [
        SweepPoint(
            key=f"{policy_spec.name}-x{args.sites}",
            spec=policy_spec,
            engine=engine,
            seed=config.seed,
            tags=(("sites", args.sites), ("policy", policy_spec.name)),
            topology=TopologySpec.uniform(
                policy_spec,
                args.sites,
                cache_fraction=config.cache_fraction,
                strategy=args.strategy,
            ),
        )
        for policy_spec in specs
    ]
    scenarios = {"default": spec}
    runner = SweepRunner(jobs=args.jobs, output_dir=args.out)
    result = runner.run(points, scenarios)

    print(f"topology: {args.sites} sites, strategy={args.strategy}")
    print(f"{'policy':<12} {'site':<10} {'traffic (MB)':>14} {'cache answers':>14}")
    for point_result in result.points:
        run = point_result.run
        stats = run.policy_stats
        for site in range(args.sites):
            queries = int(
                stats[f"site{site}_queries_answered_at_cache"]
                + stats[f"site{site}_queries_shipped"]
            )
            fraction = (
                stats[f"site{site}_queries_answered_at_cache"] / queries
                if queries
                else 0.0
            )
            print(
                f"{point_result.point.spec.name:<12} site {site:<5} "
                f"{stats[f'site{site}_measured_traffic']:>14.1f} {fraction:>14.2%}"
            )
        print(
            f"{point_result.point.spec.name:<12} {'aggregate':<10} "
            f"{run.measured_traffic:>14.1f} {run.cache_answer_fraction:>14.2%}"
        )
    if result.artifact_dir is not None:
        print(f"wrote {len(result)} artifacts + manifest to {result.artifact_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Delta dynamic data middleware cache (Middleware 2010)"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiment = subparsers.add_parser(
        "experiment", help="list or run registered experiments"
    )
    experiment_actions = experiment.add_subparsers(dest="action", required=True)

    experiment_list = experiment_actions.add_parser(
        "list", help="enumerate the experiment registry"
    )
    experiment_list.add_argument("--markdown", action="store_true",
                                 help="emit the docs/experiments.md table")
    experiment_list.set_defaults(handler=_cmd_experiment_list)

    experiment_run = experiment_actions.add_parser(
        "run", help="run one registered experiment"
    )
    experiment_run.add_argument("name", help="experiment name (see 'experiment list')")
    experiment_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                                help="override a scenario config field or "
                                     "experiment knob (repeatable; values are JSON)")
    experiment_run.add_argument("--jobs", type=_positive_jobs, default=1,
                                help="worker processes for the experiment grid "
                                     "(default: 1)")
    experiment_run.set_defaults(handler=_cmd_experiment_run)

    scenario = subparsers.add_parser(
        "scenario", help="validate or run declarative scenario files"
    )
    scenario_actions = scenario.add_subparsers(dest="action", required=True)

    scenario_validate = scenario_actions.add_parser(
        "validate", help="check a JSON/TOML scenario file"
    )
    scenario_validate.add_argument("file", type=Path, help="scenario file path")
    scenario_validate.set_defaults(handler=_cmd_scenario_validate)

    scenario_run = scenario_actions.add_parser(
        "run", help="run a scenario file against several policies"
    )
    scenario_run.add_argument("file", type=Path, help="scenario file path")
    scenario_run.add_argument("--policies", nargs="*", choices=POLICY_CHOICES,
                              default=None,
                              help="subset of policies to run (default: all five)")
    scenario_run.add_argument("--streaming", action="store_true",
                              help="replay through the streaming trace pipeline "
                                   "(constant memory, byte-identical results)")
    scenario_run.add_argument("--jobs", type=_positive_jobs, default=1,
                              help="worker processes for the per-policy runs "
                                   "(default: 1)")
    scenario_run.set_defaults(handler=_cmd_scenario_run)

    ingest = subparsers.add_parser(
        "ingest", help="calibrate a scenario from a CSV/JSONL/parquet query log"
    )
    ingest.add_argument("file", type=Path, help="query log file path")
    ingest.add_argument("--out", type=Path, default=None,
                        help="output scenario JSON path "
                             "(default: <log stem>.scenario.json)")
    ingest.add_argument("--name", default=None,
                        help="scenario name (default: the log file stem)")
    ingest.set_defaults(handler=_cmd_ingest)

    generate = subparsers.add_parser(
        "generate-trace", help="generate an SDSS-style trace and write it as JSONL"
    )
    _add_scenario_arguments(generate)
    generate.add_argument("--out", type=Path, required=True, help="output JSONL path")
    generate.add_argument("--characterise", action="store_true",
                          help="also print the Figure 7(a) characterisation")
    generate.set_defaults(handler=_cmd_generate_trace)

    run = subparsers.add_parser("run", help="replay a trace against one policy")
    _add_scenario_arguments(run)
    run.add_argument("--policy", choices=POLICY_CHOICES, default="vcover",
                     help="decision policy (default: vcover)")
    run.add_argument("--trace", type=Path, default=None,
                     help="optional JSONL trace to replay instead of generating one")
    run.set_defaults(handler=_cmd_run)

    compare = subparsers.add_parser("compare", help="compare several policies")
    _add_scenario_arguments(compare)
    compare.add_argument("--policies", nargs="*", choices=POLICY_CHOICES, default=None,
                         help="subset of policies to run (default: all five)")
    compare.add_argument("--jobs", type=_positive_jobs, default=1,
                         help="worker processes for the per-policy runs (default: 1)")
    compare.set_defaults(handler=_cmd_compare)

    sweep = subparsers.add_parser(
        "sweep", help="run a policy x cache-fraction x seed grid in parallel"
    )
    _add_scenario_arguments(sweep)
    sweep.add_argument("--policies", nargs="*", choices=POLICY_CHOICES, default=None,
                       help="policies on the grid (default: all five)")
    sweep.add_argument("--cache-fractions", nargs="*", type=float, default=None,
                       help="cache fractions on the grid (default: the --cache value)")
    sweep.add_argument("--seeds", nargs="*", type=int, default=None,
                       help="workload seeds on the grid (default: the --seed value)")
    sweep.add_argument("--jobs", type=_positive_jobs, default=1,
                       help="worker processes for the grid points (default: 1)")
    sweep.add_argument("--out", type=Path, default=None,
                       help="directory for one JSON artifact per grid point")
    sweep.set_defaults(handler=_cmd_sweep)

    topology = subparsers.add_parser(
        "topology", help="replay a fleet of N caches sharing one repository"
    )
    _add_scenario_arguments(topology)
    topology.add_argument("--sites", type=_positive_sites, default=2,
                          help="number of cache sites in the fleet (default: 2)")
    topology.add_argument("--strategy", choices=PARTITION_STRATEGIES, default="region",
                          help="object-to-site assignment strategy (default: region)")
    topology.add_argument("--policies", nargs="*", choices=POLICY_CHOICES, default=None,
                          help="policies to run, one fleet each (default: vcover nocache)")
    topology.add_argument("--jobs", type=_positive_jobs, default=1,
                          help="worker processes for the per-policy fleets (default: 1)")
    topology.add_argument("--out", type=Path, default=None,
                          help="directory for one JSON artifact per fleet")
    topology.set_defaults(handler=_cmd_topology)

    bench = subparsers.add_parser(
        "bench",
        help="run timed benchmark suites (with per-phase breakdowns) and "
        "compare against baselines",
    )
    bench.add_argument("--suite", choices=("quick", "full", "stress"), default="quick",
                       help="suite to run (default: quick)")
    bench.add_argument("--jobs", type=_positive_jobs, default=1,
                       help="worker processes, one case per worker; parallel "
                            "runs contend for cores, so keep 1 for baselines "
                            "(default: 1)")
    bench.add_argument("--out", type=Path, default=None,
                       help="write the result payload to this JSON file")
    bench.add_argument("--input", type=Path, default=None,
                       help="load an existing result payload instead of "
                            "running the suite")
    bench.add_argument("--compare", type=Path, default=None, metavar="BASELINE",
                       help="compare the result against a baseline payload; "
                            "exits 3 when a timing regressed")
    bench.add_argument("--tolerance", type=float, default=0.15,
                       help="relative slow-down allowed before --compare "
                            "flags a regression (default: 0.15)")
    bench.add_argument("--list", action="store_true",
                       help="list the available suites and cases, then exit")
    bench.set_defaults(handler=_cmd_bench)

    lint = subparsers.add_parser(
        "lint",
        help="run the repro static analyser (determinism & contract rules)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests"], metavar="PATH",
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--rule", default=None, metavar="ID",
        help="narrow the run to one rule id (e.g. DET001)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    serve = subparsers.add_parser(
        "serve",
        help="serve a policy-fronted cache over TCP (NDJSON protocol)",
    )
    _add_scenario_arguments(serve)
    serve.add_argument("--model", choices=WORKLOAD_MODELS, default="evolving",
                       help="workload model label the scenario declares "
                            "(default: evolving)")
    serve.add_argument("--policy", choices=SERVABLE_POLICIES, default="vcover",
                       help="policy to serve; soptimal is not servable -- it "
                            "prepares offline over the full trace "
                            "(default: vcover)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7710,
                       help="listen port; 0 picks an ephemeral port "
                            "(default: 7710)")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a served cache with N closed-loop clients and record "
             "latency percentiles",
    )
    _add_scenario_arguments(loadgen)
    loadgen.add_argument("--model", choices=WORKLOAD_MODELS, default="evolving",
                         help="workload model for the generated trace "
                              "(default: evolving)")
    loadgen.add_argument("--policy", choices=SERVABLE_POLICIES, default="vcover",
                         help="policy the in-process server runs; ignored "
                              "with --connect (default: vcover)")
    loadgen.add_argument("--clients", type=_at_least_one("--clients"), default=4,
                         help="concurrent closed-loop clients (default: 4)")
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="drive an already-running `repro serve` process "
                              "(must be built from the same scenario flags) "
                              "instead of booting an in-process server")
    loadgen.add_argument("--out", type=Path, default=None,
                         help="write the repro.bench/v2 payload (measured "
                              "p50/p99/p999 plus model predictions) to this "
                              "JSON file")
    loadgen.set_defaults(handler=_cmd_loadgen)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
