"""Execute benchmark suites and emit the machine-readable result payload.

Each case builds its scenario once (the build is timed separately -- trace
generation is part of the system but not of the replay hot path), then times
every policy run ``repeats`` times, recording the best wall-clock and the
derived events/sec.  Peak RSS is read from :func:`resource.getrusage` -- a
process-wide high-water mark, so a per-case value is really "the largest
footprint any case run in this process has reached so far": monotone across
cases in a serial run, and with ``jobs > 1`` spanning every case a pooled
worker has executed.  Use the payload's top-level ``peak_rss_mb`` (the max
across parent and workers) as the authoritative memory figure.

The payload layout is pinned by :mod:`repro.bench.schema`; CI uploads it as
an artifact and :mod:`repro.bench.compare` diffs it against a committed
baseline.
"""

from __future__ import annotations

import json
import platform
import resource
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro import __version__
from repro.bench.schema import SCHEMA_ID, validate_payload
from repro.bench.suites import BenchCase, get_suite
from repro.core.benefit import BenefitConfig
from repro.experiments.config import build_scenario, build_scenario_stream
from repro.perf import (
    PHASE_COVER_SOLVE,
    PHASE_METRICS,
    reset_phase_times,
    snapshot_phase_times,
)
from repro.sim.engine import EngineConfig
from repro.sim.multicache import run_topology
from repro.sim.runner import default_policy_specs, run_policy
from repro.topology.spec import TopologySpec

#: Phase names the runner emits in each case's ``phases`` block.  Must match
#: :data:`repro.bench.schema.PHASE_NAMES` exactly -- lint rule REG003 keeps
#: the two tables in sync.
PHASE_KEYS = ("trace_compile", "batch_dispatch", "cover_solve", "metrics")


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux, bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return peak / divisor


def current_git_sha() -> Optional[str]:
    """The checked-out commit, or None outside a git checkout.

    Honours ``GITHUB_SHA`` first so CI results are attributable even from a
    shallow or detached checkout.
    """
    import os

    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def lint_clean() -> Optional[bool]:
    """Whether the working tree passes ``repro lint src tests``, or None.

    Recorded into bench payloads so a perf number can never be mistaken
    for a number measured on a tree that violates the determinism or
    hot-path contracts (an unslotted record class, say, would directly
    skew memory and timing).  None outside a source checkout.
    """
    try:
        from repro.lint import find_project_root, run_lint

        root = find_project_root(Path(__file__).resolve())
        paths = [path for path in (root / "src", root / "tests") if path.is_dir()]
        if not paths:
            return None
        return run_lint(paths, root=root).ok
    except Exception:  # pragma: no cover - best-effort provenance only
        return None


def _run_case(case: BenchCase) -> Dict[str, Any]:
    """Time one case; runs inside a worker process when ``jobs > 1``."""
    config = case.config()
    build_start = time.perf_counter()
    if case.streaming:
        # Streaming cases never materialise the trace: the "build" is only
        # the (cheap) source construction; event generation happens inside
        # the timed replay, which is exactly what the streaming pipeline's
        # events/sec should measure.
        catalog, trace = build_scenario_stream(config)
    else:
        scenario = build_scenario(config)
        catalog, trace = scenario.catalog, scenario.trace
    build_seconds = time.perf_counter() - build_start
    compile_start = time.perf_counter()
    if not case.streaming:
        # The replay loop dispatches off the tagged view; build it outside
        # the timed region so every policy (and the baseline it is compared
        # to) measures the same thing.  The columnar compilation the batched
        # executors dispatch off is part of the same precompute.
        trace.tagged_events()
        from repro.workload.columns import COLUMNS_AVAILABLE

        if COLUMNS_AVAILABLE:
            trace.columns()
    compile_seconds = time.perf_counter() - compile_start

    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    fraction = (
        config.cache_fraction if case.cache_fraction is None else case.cache_fraction
    )
    capacity = catalog.total_size * fraction
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=case.policies,
    )

    events = len(trace)
    policy_rows: List[Dict[str, Any]] = []
    # Replay phase totals across the case's policy rows (best repeat each),
    # read from the repro.perf accumulators bracketing every timed run.
    case_cover_solve = 0.0
    case_metrics = 0.0
    for spec in specs:
        best: Optional[float] = None
        best_phases: Dict[str, float] = {}
        run = None
        for _ in range(max(1, case.repeats)):
            reset_phase_times()
            start = time.perf_counter()
            if case.sites > 1:
                topology = TopologySpec.uniform(spec, case.sites, cache_fraction=fraction)
                run = run_topology(topology, catalog, trace, engine).aggregate
            else:
                run = run_policy(spec, catalog, trace, capacity, engine)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
                best_phases = snapshot_phase_times()
        assert run is not None and best is not None
        case_cover_solve += best_phases.get(PHASE_COVER_SOLVE, 0.0)
        case_metrics += best_phases.get(PHASE_METRICS, 0.0)
        row: Dict[str, Any] = {
            "policy": spec.name,
            "wall_clock_s": best,
            "events": events,
            "events_per_s": events / best if best > 0 else 0.0,
            "total_traffic_mb": run.total_traffic,
            "queries_answered_at_cache": run.queries_answered_at_cache,
        }
        if run.regret is not None:
            # Policies that track online-vs-offline regret (the adaptive
            # meta-policy) surface the summary in their bench rows.
            row["regret"] = dict(run.regret)
        policy_rows.append(row)

    total_wall = sum(row["wall_clock_s"] for row in policy_rows)
    # The breakdown localises regressions: trace_compile is the one-time
    # build + precompute, cover_solve and metrics come from the perf
    # accumulators, and batch_dispatch is the rest of the replay wall-clock
    # (event dispatch itself, batched or scalar).
    phases = {
        "trace_compile": build_seconds + compile_seconds,
        "batch_dispatch": max(0.0, total_wall - case_cover_solve - case_metrics),
        "cover_solve": case_cover_solve,
        "metrics": case_metrics,
    }
    return {
        "name": case.name,
        "description": case.description,
        "events": events,
        "sites": case.sites,
        "repeats": max(1, case.repeats),
        "streaming": case.streaming,
        "build_wall_clock_s": build_seconds,
        "wall_clock_s": total_wall,
        "events_per_s": (events * len(policy_rows)) / total_wall if total_wall > 0 else 0.0,
        "peak_rss_mb": peak_rss_mb(),
        "phases": phases,
        "policies": policy_rows,
    }


def run_suite(
    suite: Union[str, Sequence[BenchCase]] = "quick",
    jobs: int = 1,
    progress: Optional[Callable[[int, int, Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Run a suite and return the schema-valid result payload.

    Parameters
    ----------
    suite:
        A suite name (``quick``/``full``) or an explicit case sequence.
    jobs:
        Worker processes; each case runs whole in one worker.  ``jobs > 1``
        shortens the wall-clock of the *suite* but adds scheduler contention
        to individual timings -- CI baselines should use ``jobs=1``.
    progress:
        Optional callback ``(done, total, case_result)``.
    """
    cases = get_suite(suite) if isinstance(suite, str) else tuple(suite)
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    case_results: List[Dict[str, Any]] = []
    if jobs == 1 or len(cases) <= 1:
        for done, case in enumerate(cases, start=1):
            result = _run_case(case)
            case_results.append(result)
            if progress is not None:
                progress(done, len(cases), result)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cases))) as pool:
            futures = [pool.submit(_run_case, case) for case in cases]
            for done, future in enumerate(futures, start=1):
                result = future.result()
                case_results.append(result)
                if progress is not None:
                    progress(done, len(cases), result)

    total_wall = sum(case["wall_clock_s"] for case in case_results)
    total_runs = sum(len(case["policies"]) for case in case_results)
    total_events = sum(
        case["events"] * len(case["policies"]) for case in case_results
    )
    payload: Dict[str, Any] = {
        "schema": SCHEMA_ID,
        "suite": suite if isinstance(suite, str) else "custom",
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "lint_clean": lint_clean(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": jobs,
        "peak_rss_mb": max(
            [peak_rss_mb()] + [case["peak_rss_mb"] for case in case_results]
        ),
        "totals": {
            "wall_clock_s": total_wall,
            "policy_runs": total_runs,
            "events": total_events,
            "events_per_s": total_events / total_wall if total_wall > 0 else 0.0,
        },
        "cases": case_results,
    }
    validate_payload(payload)
    return payload


def write_payload(payload: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a payload as pretty JSON (stable key order) and return the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and schema-check a payload file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_payload(payload)
    return payload


def format_payload(payload: Dict[str, Any]) -> str:
    """Human-readable summary table of one payload."""
    lines = [
        f"suite {payload['suite']}  "
        f"(git {str(payload.get('git_sha'))[:12]}, python {payload['python']}, "
        f"jobs {payload['jobs']})",
        f"{'case':<20} {'policy':<10} {'wall s':>9} {'events/s':>12} {'traffic MB':>12}",
    ]
    has_phases = False
    for case in payload["cases"]:
        for row in case["policies"]:
            lines.append(
                f"{case['name']:<20} {row['policy']:<10} "
                f"{row['wall_clock_s']:>9.3f} {row['events_per_s']:>12.0f} "
                f"{row['total_traffic_mb']:>12.1f}"
            )
        if case.get("phases"):
            has_phases = True
    if has_phases:
        lines.append("")
        lines.append(
            f"{'case':<20} " + " ".join(f"{key:>14}" for key in PHASE_KEYS)
        )
        for case in payload["cases"]:
            phases = case.get("phases")
            if not phases:
                continue
            lines.append(
                f"{case['name']:<20} "
                + " ".join(f"{phases[key]:>13.3f}s" for key in PHASE_KEYS)
            )
    totals = payload["totals"]
    lines.append(
        f"{'TOTAL':<20} {'':<10} {totals['wall_clock_s']:>9.3f} "
        f"{totals['events_per_s']:>12.0f} {'':>12}"
    )
    lines.append(f"peak RSS: {payload['peak_rss_mb']:.1f} MB")
    lint = payload.get("lint_clean")
    if lint is not None:
        lines.append(f"lint clean: {'yes' if lint else 'NO'}")
    return "\n".join(lines)
