"""Schema of the ``repro bench`` JSON payload.

A hand-rolled validator (the toolchain deliberately has no jsonschema
dependency) that pins the payload layout CI and the comparison tool rely
on.  ``SCHEMA_ID`` is bumped whenever the layout changes; v2 is a strict
superset of v1 (it adds an *optional* per-policy ``latency`` block recorded
by the ``repro loadgen`` served-mode harness, an *optional* per-policy
``regret`` block recorded by regret-tracking policies such as the adaptive
meta-policy, and an *optional* per-case ``phases`` block breaking the case's
wall-clock down by :data:`PHASE_NAMES`), so every v1 payload -- including
committed baselines -- still validates.  :func:`validate_payload` raises
:class:`BenchSchemaError` with a path-qualified message on the first
violation it finds.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

#: The original layout (no latency fields); still accepted.
SCHEMA_V1 = "repro.bench/v1"

#: Identifier embedded in newly written payloads.
SCHEMA_ID = "repro.bench/v2"

#: Every schema :func:`validate_payload` accepts, oldest first.
SUPPORTED_SCHEMAS = (SCHEMA_V1, SCHEMA_ID)


class BenchSchemaError(ValueError):
    """A bench payload does not match the expected schema."""


_FieldType = Union[type, Tuple[type, ...]]

_NUMBER = (int, float)

#: Required top-level fields and their types (None = nullable string).
_TOP_FIELDS: Dict[str, _FieldType] = {
    "schema": str,
    "suite": str,
    "created_unix": _NUMBER,
    "python": str,
    "platform": str,
    "jobs": int,
    "peak_rss_mb": _NUMBER,
    "totals": dict,
    "cases": list,
}

_TOTALS_FIELDS: Dict[str, _FieldType] = {
    "wall_clock_s": _NUMBER,
    "policy_runs": int,
    "events": int,
    "events_per_s": _NUMBER,
}

_CASE_FIELDS: Dict[str, _FieldType] = {
    "name": str,
    "description": str,
    "events": int,
    "sites": int,
    "repeats": int,
    "build_wall_clock_s": _NUMBER,
    "wall_clock_s": _NUMBER,
    "events_per_s": _NUMBER,
    "peak_rss_mb": _NUMBER,
    "policies": list,
}

_POLICY_FIELDS: Dict[str, _FieldType] = {
    "policy": str,
    "wall_clock_s": _NUMBER,
    "events": int,
    "events_per_s": _NUMBER,
    "total_traffic_mb": _NUMBER,
    "queries_answered_at_cache": int,
}

#: v2 only: required keys of the optional per-policy ``latency`` block
#: (seconds).  Extra keys (``predicted_p50`` etc.) are tolerated, matching
#: the validator's stance on unknown fields elsewhere.
_LATENCY_FIELDS: Dict[str, _FieldType] = {
    "count": int,
    "mean": _NUMBER,
    "p50": _NUMBER,
    "p99": _NUMBER,
    "p999": _NUMBER,
    "max": _NUMBER,
}

#: v2 only: the allowed (and required) keys of the optional per-case
#: ``phases`` block -- the wall-clock breakdown the runner records.  This
#: table is the contract between the runner and every payload consumer: the
#: runner's ``PHASE_KEYS`` must match it exactly (REG003 lints the pair),
#: and the validator rejects phase names outside it, so a new phase timer
#: cannot ship without widening the schema (and the docs) first.
#:
#: * ``trace_compile`` -- scenario build plus the tagged/columnar trace
#:   precompute, outside the timed replay,
#: * ``batch_dispatch`` -- replay wall-clock not attributed to a finer
#:   phase (event dispatch, batched or scalar),
#: * ``cover_solve`` -- max-flow solves under the vertex-cover reduction,
#: * ``metrics`` -- traffic/occupancy series sampling in the engines.
PHASE_NAMES = ("trace_compile", "batch_dispatch", "cover_solve", "metrics")

#: v2 only: required keys of the optional per-policy ``regret`` block (the
#: :meth:`repro.core.regret.RegretTracker.summary` payload, all MB except
#: the epoch count).
_REGRET_FIELDS: Dict[str, _FieldType] = {
    "epochs": _NUMBER,
    "observed_traffic": _NUMBER,
    "offline_traffic": _NUMBER,
    "total": _NUMBER,
    "mean_per_epoch": _NUMBER,
}


def _check_fields(mapping: object, fields: Dict[str, _FieldType], where: str) -> None:
    if not isinstance(mapping, dict):
        raise BenchSchemaError(f"{where}: expected an object, got {type(mapping).__name__}")
    for key, expected in fields.items():
        if key not in mapping:
            raise BenchSchemaError(f"{where}: missing required field {key!r}")
        value = mapping[key]
        if isinstance(expected, tuple):
            ok = isinstance(value, expected) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected) and not (
                expected is int and isinstance(value, bool)
            )
        if not ok:
            raise BenchSchemaError(
                f"{where}.{key}: expected {getattr(expected, '__name__', 'number')}, "
                f"got {type(value).__name__}"
            )


def _check_phases(phases: object, schema: str, where: str) -> None:
    """Validate one per-case ``phases`` block against :data:`PHASE_NAMES`."""
    if schema == SCHEMA_V1:
        raise BenchSchemaError(
            f"{where}: phase breakdowns require {SCHEMA_ID!r} "
            f"(payload declares {SCHEMA_V1!r})"
        )
    if not isinstance(phases, dict):
        raise BenchSchemaError(
            f"{where}: expected an object, got {type(phases).__name__}"
        )
    # Unlike the rest of the schema, unknown keys are *rejected* here: the
    # phase table is the runner/consumer contract, so an unlisted phase name
    # is a bug (a timer added without widening PHASE_NAMES), not forward
    # compatibility.
    for key in phases:
        if key not in PHASE_NAMES:
            raise BenchSchemaError(
                f"{where}.{key}: unknown phase; allowed phases are "
                f"{', '.join(PHASE_NAMES)}"
            )
    for name in PHASE_NAMES:
        if name not in phases:
            raise BenchSchemaError(f"{where}: missing required phase {name!r}")
        value = phases[name]
        if not isinstance(value, _NUMBER) or isinstance(value, bool):
            raise BenchSchemaError(
                f"{where}.{name}: expected number, got {type(value).__name__}"
            )
        if value < 0:
            raise BenchSchemaError(f"{where}.{name}: negative phase time {value!r}")


def validate_payload(payload: object) -> None:
    """Raise :class:`BenchSchemaError` unless ``payload`` is a valid result."""
    _check_fields(payload, _TOP_FIELDS, "payload")
    assert isinstance(payload, dict)
    schema = payload["schema"]
    if schema not in SUPPORTED_SCHEMAS:
        raise BenchSchemaError(
            f"payload.schema: expected one of {', '.join(SUPPORTED_SCHEMAS)}; "
            f"got {schema!r}"
        )
    sha = payload.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        raise BenchSchemaError("payload.git_sha: expected a string or null")
    # Optional (absent in payloads recorded before the linter existed):
    # whether `repro lint src tests` was clean when the run was recorded.
    lint_clean = payload.get("lint_clean")
    if lint_clean is not None and not isinstance(lint_clean, bool):
        raise BenchSchemaError("payload.lint_clean: expected a boolean or null")
    _check_fields(payload["totals"], _TOTALS_FIELDS, "payload.totals")
    cases = payload["cases"]
    if not cases:
        raise BenchSchemaError("payload.cases: must not be empty")
    seen = set()
    for position, case in enumerate(cases):
        where = f"payload.cases[{position}]"
        _check_fields(case, _CASE_FIELDS, where)
        if case["name"] in seen:
            raise BenchSchemaError(f"{where}.name: duplicate case name {case['name']!r}")
        seen.add(case["name"])
        if not case["policies"]:
            raise BenchSchemaError(f"{where}.policies: must not be empty")
        phases = case.get("phases")
        if phases is not None:
            _check_phases(phases, schema, f"{where}.phases")
        for index, row in enumerate(case["policies"]):
            row_where = f"{where}.policies[{index}]"
            _check_fields(row, _POLICY_FIELDS, row_where)
            assert isinstance(row, dict)
            latency = row.get("latency")
            if latency is not None:
                if schema == SCHEMA_V1:
                    raise BenchSchemaError(
                        f"{row_where}.latency: latency fields require "
                        f"{SCHEMA_ID!r} (payload declares {SCHEMA_V1!r})"
                    )
                _check_fields(latency, _LATENCY_FIELDS, f"{row_where}.latency")
            regret = row.get("regret")
            if regret is not None:
                if schema == SCHEMA_V1:
                    raise BenchSchemaError(
                        f"{row_where}.regret: regret fields require "
                        f"{SCHEMA_ID!r} (payload declares {SCHEMA_V1!r})"
                    )
                _check_fields(regret, _REGRET_FIELDS, f"{row_where}.regret")
