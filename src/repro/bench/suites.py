"""Named benchmark suites: declarative scenarios with timing targets.

A :class:`BenchCase` is a frozen, picklable recipe -- scenario config
overrides on top of the standard :class:`~repro.experiments.config.ExperimentConfig`
defaults, the policies to replay, and (optionally) a multi-site topology.
Cases reuse the declarative scenario machinery
(:class:`~repro.experiments.spec.ScenarioSpec`), so a benchmark measures
exactly what the experiments run, never a parallel hand-rolled setup.

Three suites ship by default:

* ``quick`` -- small enough for every CI run (tens of seconds on a shared
  runner), covering the single-cache engine across all five policies, a
  VCover-heavy decision workload, and the multi-cache engine;
* ``full`` -- the paper-scale defaults, for tracking real machines over
  time;
* ``stress`` -- the constant-memory guard: flash-crowd workloads replayed
  through the streaming trace pipeline at 500k and 5M events.  The trace is
  never materialised, so the 5M-event case must finish with a peak RSS
  below twice the 500k-event case's (the slow-marked peak-RSS test and
  ``docs/workloads.md`` document the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.experiments.config import ExperimentConfig

#: Policies every suite exercises by default (the paper's five).
ALL_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass(frozen=True)
class BenchCase:
    """One timed scenario of a suite.

    Parameters
    ----------
    name:
        Stable identifier; baselines are matched case-by-case on it.
    description:
        One line for reports.
    overrides:
        ``ExperimentConfig`` fields overriding the defaults (kept as a tuple
        of pairs so the case is hashable and picklable).
    policies:
        Policies replayed (each timed separately).
    cache_fraction:
        Cache size override for the runs (None = the config's own).
    sites:
        Number of cache sites; 1 uses the single-cache engine, >1 replays
        the trace against a uniform fleet via the multi-cache engine.
    repeats:
        How many times each policy run is repeated; the *best* wall-clock is
        recorded (standard practice to suppress scheduler noise).
    streaming:
        When ``True`` the case replays the scenario's lazily-generated
        :class:`~repro.workload.trace.TraceStream` instead of materialising
        the trace first; generation is then part of the timed replay (an
        honest events/sec for the streaming pipeline) and memory stays
        constant in the trace length.
    """

    name: str
    description: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    policies: Tuple[str, ...] = ALL_POLICIES
    cache_fraction: Optional[float] = None
    sites: int = 1
    repeats: int = 1
    streaming: bool = False

    def config(self) -> ExperimentConfig:
        """The scenario config the case replays."""
        return ExperimentConfig().scaled(**dict(self.overrides))


def _case(name: str, description: str, /, **kwargs: Any) -> BenchCase:
    overrides = tuple(sorted(kwargs.pop("overrides", {}).items()))
    return BenchCase(name=name, description=description, overrides=overrides, **kwargs)


#: The named suites. Keep case names stable: the committed CI baseline and
#: any locally saved baselines are matched on them.
SUITES: Dict[str, Tuple[BenchCase, ...]] = {
    "quick": (
        # best-of-3 keeps CI timings stable enough to gate on: the quick
        # cases are fast, so single runs are dominated by scheduler noise.
        _case(
            "headline-quick",
            "all five policies over a 4k-event headline-shaped trace",
            overrides={"query_count": 2000, "update_count": 2000},
            repeats=3,
        ),
        _case(
            "vcover-deep-quick",
            "VCover alone over a 6k-event trace (decision-loop stress)",
            overrides={"query_count": 3000, "update_count": 3000},
            policies=("vcover",),
            repeats=3,
        ),
        _case(
            "multisite-quick",
            "two-site vcover fleet over a 3k-event trace (multi-cache engine)",
            overrides={"query_count": 1500, "update_count": 1500},
            policies=("vcover",),
            sites=2,
            repeats=3,
        ),
        _case(
            "adaptive-quick",
            "adaptive meta-policy (regret-tracked) vs vcover over 3k events",
            overrides={"query_count": 1500, "update_count": 1500},
            policies=("adaptive", "vcover"),
            repeats=3,
        ),
        _case(
            "columnar-quick",
            "batched yardstick replay over a 40k-event trace (columnar core)",
            overrides={
                "query_count": 20_000,
                "update_count": 20_000,
                "sample_every": 2_000,
            },
            policies=("nocache", "replica"),
            repeats=3,
        ),
    ),
    "full": (
        _case(
            "headline-full",
            "all five policies over the paper-scale 12k-event default trace",
        ),
        _case(
            "vcover-deep-full",
            "VCover alone over a 16k-event trace (decision-loop stress)",
            overrides={"query_count": 8000, "update_count": 8000},
            policies=("vcover",),
        ),
        _case(
            "cache-sweep-full",
            "vcover/nocache at a tight 10% cache (eviction-heavy)",
            overrides={"query_count": 4000, "update_count": 4000},
            policies=("vcover", "nocache"),
            cache_fraction=0.1,
        ),
        _case(
            "multisite-full",
            "four-site vcover fleet over the 12k-event default trace",
            policies=("vcover",),
            sites=4,
        ),
    ),
    "stress": (
        # The 500k-event case runs first so its per-case peak RSS (a
        # process-wide high-water mark) is not inflated by the 5M-event run;
        # the constant-memory claim is "5M peak < 2x 500k peak".
        _case(
            "flash-crowd-500k",
            "streaming flash-crowd replay, 500k events (RSS baseline)",
            overrides={
                "workload_model": "flash_crowd",
                "query_count": 250_000,
                "update_count": 250_000,
                "sample_every": 5_000,
            },
            policies=("nocache", "replica"),
            streaming=True,
        ),
        _case(
            "flash-crowd-5m",
            "streaming flash-crowd replay, 5M events in bounded RSS",
            overrides={
                "workload_model": "flash_crowd",
                "query_count": 2_500_000,
                "update_count": 2_500_000,
                "sample_every": 50_000,
            },
            policies=("nocache", "replica"),
            streaming=True,
        ),
        _case(
            "cache-adversary-500k",
            "streaming eviction-busting adversary replay at a tight cache",
            overrides={
                "workload_model": "cache_adversary",
                "query_count": 250_000,
                "update_count": 250_000,
                "sample_every": 5_000,
            },
            policies=("vcover", "nocache"),
            cache_fraction=0.1,
            streaming=True,
        ),
    ),
}


def get_suite(name: str) -> Tuple[BenchCase, ...]:
    """Look up a suite by name (raises ``KeyError`` with the known names)."""
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; known suites: {sorted(SUITES)}"
        ) from None
