"""Named benchmark suites: declarative scenarios with timing targets.

A :class:`BenchCase` is a frozen, picklable recipe -- scenario config
overrides on top of the standard :class:`~repro.experiments.config.ExperimentConfig`
defaults, the policies to replay, and (optionally) a multi-site topology.
Cases reuse the declarative scenario machinery
(:class:`~repro.experiments.spec.ScenarioSpec`), so a benchmark measures
exactly what the experiments run, never a parallel hand-rolled setup.

Two suites ship by default:

* ``quick`` -- small enough for every CI run (tens of seconds on a shared
  runner), covering the single-cache engine across all five policies, a
  VCover-heavy decision workload, and the multi-cache engine;
* ``full`` -- the paper-scale defaults, for tracking real machines over
  time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.experiments.config import ExperimentConfig

#: Policies every suite exercises by default (the paper's five).
ALL_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass(frozen=True)
class BenchCase:
    """One timed scenario of a suite.

    Parameters
    ----------
    name:
        Stable identifier; baselines are matched case-by-case on it.
    description:
        One line for reports.
    overrides:
        ``ExperimentConfig`` fields overriding the defaults (kept as a tuple
        of pairs so the case is hashable and picklable).
    policies:
        Policies replayed (each timed separately).
    cache_fraction:
        Cache size override for the runs (None = the config's own).
    sites:
        Number of cache sites; 1 uses the single-cache engine, >1 replays
        the trace against a uniform fleet via the multi-cache engine.
    repeats:
        How many times each policy run is repeated; the *best* wall-clock is
        recorded (standard practice to suppress scheduler noise).
    """

    name: str
    description: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    policies: Tuple[str, ...] = ALL_POLICIES
    cache_fraction: Optional[float] = None
    sites: int = 1
    repeats: int = 1

    def config(self) -> ExperimentConfig:
        """The scenario config the case replays."""
        return ExperimentConfig().scaled(**dict(self.overrides))


def _case(name: str, description: str, /, **kwargs) -> BenchCase:
    overrides = tuple(sorted(kwargs.pop("overrides", {}).items()))
    return BenchCase(name=name, description=description, overrides=overrides, **kwargs)


#: The named suites. Keep case names stable: the committed CI baseline and
#: any locally saved baselines are matched on them.
SUITES: Dict[str, Tuple[BenchCase, ...]] = {
    "quick": (
        # best-of-3 keeps CI timings stable enough to gate on: the quick
        # cases are fast, so single runs are dominated by scheduler noise.
        _case(
            "headline-quick",
            "all five policies over a 4k-event headline-shaped trace",
            overrides={"query_count": 2000, "update_count": 2000},
            repeats=3,
        ),
        _case(
            "vcover-deep-quick",
            "VCover alone over a 6k-event trace (decision-loop stress)",
            overrides={"query_count": 3000, "update_count": 3000},
            policies=("vcover",),
            repeats=3,
        ),
        _case(
            "multisite-quick",
            "two-site vcover fleet over a 3k-event trace (multi-cache engine)",
            overrides={"query_count": 1500, "update_count": 1500},
            policies=("vcover",),
            sites=2,
            repeats=3,
        ),
    ),
    "full": (
        _case(
            "headline-full",
            "all five policies over the paper-scale 12k-event default trace",
        ),
        _case(
            "vcover-deep-full",
            "VCover alone over a 16k-event trace (decision-loop stress)",
            overrides={"query_count": 8000, "update_count": 8000},
            policies=("vcover",),
        ),
        _case(
            "cache-sweep-full",
            "vcover/nocache at a tight 10% cache (eviction-heavy)",
            overrides={"query_count": 4000, "update_count": 4000},
            policies=("vcover", "nocache"),
            cache_fraction=0.1,
        ),
        _case(
            "multisite-full",
            "four-site vcover fleet over the 12k-event default trace",
            policies=("vcover",),
            sites=4,
        ),
    ),
}


def get_suite(name: str) -> Tuple[BenchCase, ...]:
    """Look up a suite by name (raises ``KeyError`` with the known names)."""
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; known suites: {sorted(SUITES)}"
        ) from None
