"""Baseline comparison for bench payloads (``repro bench --compare``).

Cases (and their per-policy rows) are matched by name between the current
payload and a baseline.  A row regresses when its wall-clock exceeds the
baseline by more than the relative tolerance; the CLI exits with code 3 when
any row regresses, which is what lets CI gate on performance.  Timing noise
is real -- especially on shared runners -- so tolerances should be generous
(CI uses a far looser bound than a quiet workstation would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.bench.schema import BenchSchemaError, validate_payload

#: Default relative tolerance: 15% slower than baseline flags a regression.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class CaseComparison:
    """Comparison of one (case, policy) timing row against the baseline."""

    case: str
    policy: str
    baseline_s: float
    current_s: float

    @property
    def ratio(self) -> float:
        """current / baseline wall-clock (1.0 = unchanged, >1 = slower)."""
        if self.baseline_s <= 0:
            return float("inf") if self.current_s > 0 else 1.0
        return self.current_s / self.baseline_s

    def regressed(self, tolerance: float) -> bool:
        """Whether this row is slower than the tolerance allows."""
        return self.ratio > 1.0 + tolerance


@dataclass
class ComparisonReport:
    """Outcome of comparing a payload against a baseline."""

    tolerance: float
    rows: List[CaseComparison]
    #: (case, policy) pairs present in only one of the payloads.
    only_in_current: List[Tuple[str, str]]
    only_in_baseline: List[Tuple[str, str]]

    @property
    def regressions(self) -> List[CaseComparison]:
        """Rows slower than the tolerance allows, worst first."""
        flagged = [row for row in self.rows if row.regressed(self.tolerance)]
        return sorted(flagged, key=lambda row: row.ratio, reverse=True)

    @property
    def ok(self) -> bool:
        """True when no row regressed and no baseline row went unmeasured.

        Rows present only in the baseline mean coverage *shrank* -- a case or
        policy the baseline tracks is no longer being measured -- which must
        fail the gate just like a slow-down would (otherwise renaming a case
        silently stops measuring it).  Rows present only in the current
        payload are new coverage and merely reported.
        """
        return not self.regressions and not self.only_in_baseline

    def format(self) -> str:
        """Human-readable comparison table plus the verdict."""
        lines = [
            f"{'case':<20} {'policy':<10} {'baseline s':>11} {'current s':>11} "
            f"{'ratio':>7}  verdict"
        ]
        for row in sorted(self.rows, key=lambda r: (r.case, r.policy)):
            verdict = "REGRESSED" if row.regressed(self.tolerance) else "ok"
            lines.append(
                f"{row.case:<20} {row.policy:<10} {row.baseline_s:>11.3f} "
                f"{row.current_s:>11.3f} {row.ratio:>6.2f}x  {verdict}"
            )
        for case, policy in self.only_in_current:
            lines.append(f"{case:<20} {policy:<10} {'-':>11} {'?':>11} {'':>7}  new (no baseline)")
        for case, policy in self.only_in_baseline:
            lines.append(f"{case:<20} {policy:<10} {'?':>11} {'-':>11} {'':>7}  missing from current")
        count = len(self.regressions)
        if count:
            lines.append(
                f"{count} regression(s) beyond +{self.tolerance:.0%} tolerance"
            )
        else:
            lines.append(f"no regressions beyond +{self.tolerance:.0%} tolerance")
        if self.only_in_baseline:
            lines.append(
                f"{len(self.only_in_baseline)} baseline row(s) not measured by the "
                "current payload -- coverage shrank; refresh the baseline if intended"
            )
        return "\n".join(lines)


def _rows_by_key(payload: Dict[str, Any]) -> Dict[Tuple[str, str], float]:
    rows: Dict[Tuple[str, str], float] = {}
    for case in payload["cases"]:
        for row in case["policies"]:
            rows[(case["name"], row["policy"])] = float(row["wall_clock_s"])
    return rows


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> ComparisonReport:
    """Compare two schema-valid payloads row by row.

    Raises :class:`~repro.bench.schema.BenchSchemaError` when either payload
    is invalid and ``ValueError`` for a negative tolerance.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance!r}")
    # Mixed schema versions are fine: v2 only *adds* optional latency fields,
    # and the (case, policy, wall_clock_s) rows this comparison reads are
    # identical across v1 and v2 -- so a fresh v2 payload compares cleanly
    # against a committed v1 baseline.  validate_payload rejects anything
    # outside the supported set.
    validate_payload(current)
    validate_payload(baseline)
    current_rows = _rows_by_key(current)
    baseline_rows = _rows_by_key(baseline)
    shared = sorted(set(current_rows) & set(baseline_rows))
    if not shared:
        # A comparison with zero matched rows would pass vacuously -- and a
        # CI gate comparing a renamed suite against a stale baseline would
        # go green while checking nothing.  Treat it as operator error.
        raise BenchSchemaError(
            "no (case, policy) rows in common between the payloads; "
            f"current has {sorted(current_rows)}, baseline has {sorted(baseline_rows)} "
            "-- regenerate the baseline for the current suite"
        )
    return ComparisonReport(
        tolerance=tolerance,
        rows=[
            CaseComparison(
                case=case,
                policy=policy,
                baseline_s=baseline_rows[(case, policy)],
                current_s=current_rows[(case, policy)],
            )
            for case, policy in shared
        ],
        only_in_current=sorted(set(current_rows) - set(baseline_rows)),
        only_in_baseline=sorted(set(baseline_rows) - set(current_rows)),
    )
