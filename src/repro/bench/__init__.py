"""Performance-tracking subsystem (``repro bench``).

The simulation core is engineered as a fast path; this package is what keeps
it one.  It runs *timed scenario suites* -- named, versioned collections of
declarative scenarios built on the experiment/scenario machinery of
:mod:`repro.experiments` -- and emits machine-readable JSON results
(wall-clock, events/sec, peak RSS, per-policy breakdown, git SHA) that CI
uploads as artifacts and compares against a committed baseline.

Public surface:

* :data:`~repro.bench.suites.SUITES` / :func:`~repro.bench.suites.get_suite`
  -- the named suites (``quick`` for CI, ``full`` for real machines),
* :func:`~repro.bench.runner.run_suite` -- execute a suite, returning the
  result payload,
* :func:`~repro.bench.schema.validate_payload` -- schema-check a payload
  (raises :class:`~repro.bench.schema.BenchSchemaError`),
* :func:`~repro.bench.compare.compare_payloads` -- baseline comparison with
  a relative tolerance, powering ``repro bench --compare`` (exit 3 on
  regression).
"""

from repro.bench.compare import CaseComparison, ComparisonReport, compare_payloads
from repro.bench.runner import run_suite
from repro.bench.schema import (
    SCHEMA_ID,
    SCHEMA_V1,
    SUPPORTED_SCHEMAS,
    BenchSchemaError,
    validate_payload,
)
from repro.bench.suites import SUITES, BenchCase, get_suite

__all__ = [
    "SCHEMA_ID",
    "SCHEMA_V1",
    "SUPPORTED_SCHEMAS",
    "SUITES",
    "BenchCase",
    "BenchSchemaError",
    "CaseComparison",
    "ComparisonReport",
    "compare_payloads",
    "get_suite",
    "run_suite",
    "validate_payload",
]
