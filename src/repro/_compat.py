"""Small compatibility shims shared across the library.

Currently: pickle support for frozen, slotted dataclasses on Python 3.10.
The hot record classes (trace events, queries, updates, transfer records)
are declared with ``@dataclass(frozen=True, slots=True)`` to cut per-instance
memory and attribute-lookup cost on the simulation hot path.  Python 3.11+
generates ``__getstate__``/``__setstate__`` for such classes automatically,
but 3.10 does not: its default reduction tries ``setattr`` on a frozen
instance and fails.  Records cross process boundaries whenever a sweep runs
with ``jobs > 1``, so the mixin below provides the explicit state protocol.
"""

from __future__ import annotations

from typing import Tuple


class SlottedFrozenPickle:
    """Explicit pickle state for ``@dataclass(frozen=True, slots=True)``.

    Must precede the dataclass decorator in the MRO (i.e. be a base class of
    the record).  Declares empty ``__slots__`` so subclasses keep their
    ``__dict__``-free layout.
    """

    __slots__ = ()

    def __getstate__(self) -> Tuple[object, ...]:
        return tuple(
            getattr(self, name) for name in self.__dataclass_fields__  # type: ignore[attr-defined]
        )

    def __setstate__(self, state: Tuple[object, ...]) -> None:
        for name, value in zip(self.__dataclass_fields__, state, strict=True):  # type: ignore[attr-defined]
            object.__setattr__(self, name, value)
