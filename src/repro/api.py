"""The stable public facade of the Delta reproduction.

Everything the CLI, the examples and the benchmarks need is reachable from
this one module; its functions are the supported entry points and their
signatures are kept stable:

* :func:`list_experiments` / :func:`get_experiment` -- enumerate the
  declarative experiment registry,
* :func:`run_experiment` -- run a registered experiment with flat overrides
  (``{"query_count": 400, "fractions": (0.1, 0.3)}``) and optional worker
  parallelism,
* :func:`load_scenario` / :func:`run_scenario` -- run a scenario declared as
  pure data (a :class:`~repro.experiments.spec.ScenarioSpec`, possibly read
  from a JSON/TOML file) against any subset of policies,
* :func:`format_result` -- render an experiment result the way its module's
  ``format_*`` helper does,
* :func:`run_bench` / :func:`compare_bench` -- execute a timed benchmark
  suite and diff two result payloads (the library face of ``repro bench``),
* :func:`ingest_scenario` -- read a CSV/JSONL/parquet query log, fit the
  scenario knobs to it and return the replayable
  :class:`~repro.experiments.spec.ScenarioSpec` (the library face of
  ``repro ingest``),
* :func:`draw_fuzzed_scenario` / :func:`load_fuzzed_scenario` -- one seeded
  draw of the adversarial scenario fuzzer, and a saved minimal-repro file
  read back (see :mod:`repro.workload.fuzz`),
* :func:`run_lint` -- run the repro static analyser (determinism and
  contract rules) over a path set (the library face of ``repro lint``),
* :func:`run_loadgen` -- serve a scenario through the asyncio cache
  middleware and drive it with the closed-loop load harness, returning the
  load report and a ``repro.bench/v2`` payload with measured latency
  percentiles (the library face of ``repro loadgen``; see
  :mod:`repro.serve`).

Quickstart::

    from repro import api

    for name in api.list_experiments():
        print(name, "-", api.get_experiment(name).title)

    result = api.run_experiment(
        "headline", overrides={"query_count": 1500, "update_count": 1500}, jobs=4
    )
    print(api.format_result("headline", result))

    spec = api.load_scenario("my_scenario.json")
    comparison = api.run_scenario(spec, policies=("nocache", "vcover"))
    print(comparison.as_table())
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

# Importing the experiments package registers every experiment.
import repro.experiments  # noqa: F401  (imported for its registration side effect)
from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    DuplicateExperimentError,
    ExperimentSpec,
    InvalidOverrideError,
    UnknownExperimentError,
    UnknownOverrideError,
    experiment_names,
    experiment_specs,
    get_experiment,
    run_experiment,
)
from repro.experiments.spec import (
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    save_scenario,
)
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import compare_policies, default_policy_specs
from repro.workload.fuzz import (
    CompositionSpec,
    FuzzError,
    draw_composition_spec,
    load_composition,
)
from repro.workload.ingest import CalibrationResult, IngestError, ingest_scenario

#: The paper's two algorithms plus the three yardsticks.
DEFAULT_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")

__all__ = [
    "DEFAULT_POLICIES",
    "CalibrationResult",
    "CompositionSpec",
    "DuplicateExperimentError",
    "ExperimentConfig",
    "ExperimentSpec",
    "FuzzError",
    "IngestError",
    "InvalidOverrideError",
    "ScenarioError",
    "ScenarioSpec",
    "UnknownExperimentError",
    "UnknownOverrideError",
    "compare_bench",
    "draw_fuzzed_scenario",
    "experiment_specs",
    "format_result",
    "get_experiment",
    "ingest_scenario",
    "list_experiments",
    "load_fuzzed_scenario",
    "load_scenario",
    "run_bench",
    "run_experiment",
    "run_lint",
    "run_loadgen",
    "run_scenario",
    "save_scenario",
]


def draw_fuzzed_scenario(seed: int, max_segments: int = 3) -> CompositionSpec:
    """One seeded draw of the adversarial scenario fuzzer.

    The returned :class:`~repro.workload.fuzz.CompositionSpec` is a sweep
    scenario source (hand it to the runner directly) and JSON
    round-trippable; the draw is fully determined by ``seed``.
    """
    return draw_composition_spec(seed, max_segments=max_segments)


def load_fuzzed_scenario(path: Union[str, Path]) -> CompositionSpec:
    """Read back a fuzzer composition file (e.g. a saved minimal repro)."""
    return load_composition(path)


def list_experiments() -> List[str]:
    """Names of every registered experiment, in registration order."""
    return experiment_names()


def run_bench(suite: str = "quick", jobs: int = 1) -> dict:
    """Run a benchmark suite and return its schema-valid result payload.

    See :mod:`repro.bench` for the payload layout and the available suites.
    """
    from repro.bench import run_suite

    return run_suite(suite, jobs=jobs)


def run_lint(
    paths: Sequence[Union[str, Path]] = ("src", "tests"),
    *,
    rule: Optional[str] = None,
):
    """Run the repro static analyser and return its ``LintReport``.

    ``report.ok`` is True when no error-severity finding survived
    suppression filtering; ``report.to_dict()`` is the JSON payload the
    CLI emits under ``--format json``.  ``rule`` narrows the run to one
    rule id.  See :mod:`repro.lint` for the rule catalogue.
    """
    from repro.lint import run_lint as _run_lint

    return _run_lint(paths, rule=rule)


def run_loadgen(
    config: Optional[ExperimentConfig] = None,
    policy: str = "vcover",
    clients: int = 4,
    connect: Optional[tuple] = None,
    with_latency_model: bool = False,
):
    """Serve a scenario and load it; returns ``(LoadReport, payload)``.

    Boots an in-process :class:`~repro.serve.server.CacheServer` (or, with
    ``connect=(host, port)``, drives an already-running ``repro serve``
    process built from the same scenario config) and replays the scenario
    trace through N closed-loop clients.  The payload validates against
    ``repro.bench/v2`` and carries measured p50/p99/p999 per-request
    latency; ``with_latency_model`` adds the analytic
    :class:`~repro.network.latency.LatencyModel` predictions side by side.
    """
    from repro.network.latency import LatencyModel
    from repro.serve.harness import run_loadgen as _run_loadgen

    return _run_loadgen(
        config=config,
        policy=policy,
        clients=clients,
        connect=connect,
        latency_model=LatencyModel() if with_latency_model else None,
    )


def compare_bench(current: dict, baseline: dict, tolerance: float = 0.15):
    """Compare two bench payloads; returns a ``ComparisonReport``.

    ``report.ok`` is False when any (case, policy) timing regressed beyond
    the relative ``tolerance``.
    """
    from repro.bench import compare_payloads

    return compare_payloads(current, baseline, tolerance=tolerance)


def format_result(name: str, result: object) -> str:
    """Render an experiment result with its registered formatter.

    Falls back to ``repr(result)`` for experiments without one.
    """
    spec = get_experiment(name)
    if spec.format_result is None:
        return repr(result)
    return spec.format_result(result)


def run_scenario(
    scenario: Union[ScenarioSpec, ExperimentConfig, CompositionSpec, str, Path],
    policies: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_fraction: Optional[float] = None,
    cache_capacity: Optional[float] = None,
    streaming: bool = False,
) -> ComparisonResult:
    """Run a declarative scenario against several policies.

    Parameters
    ----------
    scenario:
        A :class:`ScenarioSpec`, a bare :class:`ExperimentConfig`, a fuzzer
        :class:`~repro.workload.fuzz.CompositionSpec` (e.g. a saved minimal
        repro read back with :func:`load_fuzzed_scenario`), or a path to a
        JSON/TOML scenario file (see :func:`load_scenario`).
    policies:
        Policy names to compare (default: the full paper set,
        :data:`DEFAULT_POLICIES`).
    jobs:
        Worker processes for the per-policy runs (1 = serial; results are
        identical either way).
    cache_fraction / cache_capacity:
        Cache size override; defaults to the scenario config's
        ``cache_fraction`` (the absolute capacity wins if both are given).
    streaming:
        When ``True``, replay the scenario through its lazily-generated
        :class:`~repro.workload.trace.TraceStream` instead of materialising
        the trace first.  Results are byte-identical either way (the
        equivalence tests pin this); streaming keeps memory constant in the
        trace length, at the price of regenerating events on each pass.
    """
    if isinstance(scenario, (str, Path)):
        scenario = load_scenario(scenario)
    if isinstance(scenario, ExperimentConfig):
        scenario = ScenarioSpec(scenario)
    if isinstance(scenario, CompositionSpec):
        return _run_composition(
            scenario,
            policies=policies,
            jobs=jobs,
            cache_fraction=cache_fraction,
            cache_capacity=cache_capacity,
            streaming=streaming,
        )
    config = scenario.config
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=tuple(policies) if policies else DEFAULT_POLICIES,
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    fraction = config.cache_fraction if cache_fraction is None else cache_fraction
    if streaming:
        # Hand workers the recipe; each realises the stream lazily and
        # replays it without materialising the event list.
        return compare_policies(
            None,
            None,
            cache_fraction=fraction,
            cache_capacity=cache_capacity,
            specs=specs,
            engine_config=engine,
            jobs=jobs,
            source=scenario,
            streaming=True,
        )
    built = scenario.build()
    return compare_policies(
        built.catalog,
        built.trace,
        cache_fraction=fraction,
        cache_capacity=cache_capacity,
        specs=specs,
        engine_config=engine,
        jobs=jobs,
    )


def _run_composition(
    composition: CompositionSpec,
    policies: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_fraction: Optional[float] = None,
    cache_capacity: Optional[float] = None,
    streaming: bool = False,
) -> ComparisonResult:
    """The :func:`run_scenario` path for fuzzer compositions.

    A composition carries its own drawn ``cache_fraction`` (the adversary
    segment is sized against it), which becomes the default cache size.
    """
    specs = default_policy_specs(
        include=tuple(policies) if policies else DEFAULT_POLICIES
    )
    fraction = (
        composition.cache_fraction if cache_fraction is None else cache_fraction
    )
    if streaming:
        return compare_policies(
            None,
            None,
            cache_fraction=fraction,
            cache_capacity=cache_capacity,
            specs=specs,
            jobs=jobs,
            source=composition,
            streaming=True,
        )
    catalog, trace = composition.realise()
    return compare_policies(
        catalog,
        trace,
        cache_fraction=fraction,
        cache_capacity=cache_capacity,
        specs=specs,
        jobs=jobs,
    )
