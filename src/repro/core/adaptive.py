"""Adaptive meta-policy: follow the leader among shadowed online policies.

The middleware the paper models is configured with *one* policy per run, yet
its workloads drift: a flash crowd looks nothing like an update storm, and
the best static policy differs between them.  :class:`AdaptivePolicy` closes
that gap without any new decision theory of its own.  It runs every candidate
policy as a *shadow*: all of them observe the full event stream against
private traffic ledgers, the meta-policy's real traffic mirrors whichever
candidate is currently *live*, and at fixed epoch boundaries the discounted
per-epoch traffic scores (read through the candidates'
:class:`~repro.cache.observer.PolicyObserver` seam -- this is the
observe/decide contract doing real work) pick a new leader:

* ``score[arm] = discount * score[arm] + epoch_traffic[arm]`` (lower wins),
* the live arm is replaced only when the leader undercuts it by more than
  ``switch_margin`` (hysteresis against flapping),
* a switch is *paid for*: objects resident in the new arm's cache but not in
  the old one's are loaded over the real link at the boundary timestamp.

Because the serve stack owns the policy behind a single writer, epoch
switches serialise naturally and the same object is servable online.

Shadowing is safe on a shared repository: candidates never ingest updates
(the engine does, once) and repository reads only bump server-side counters.
The cost of shadowing is linear in the number of candidates -- this is the
classic "expert advice" setup where every expert's loss is observable each
round, so follow-the-leader needs no explore/exploit randomisation.

When ``track_regret`` is on, a :class:`~repro.core.regret.RegretTracker`
compares the meta-policy's realised traffic per epoch against the exact
offline decoupling optimum (:mod:`repro.core.offline`'s Theorem 1 instance)
built from observed interactions; the summary lands in
:class:`~repro.sim.results.RunResult` and the bench payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.core.decoupling import QueryOutcome
from repro.core.policy import BaseCachePolicy, CachePolicy
from repro.core.regret import RegretTracker
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update

__all__ = ["ADAPTIVE_CANDIDATES", "AdaptiveConfig", "AdaptivePolicy"]

#: Candidate arms the meta-policy can shadow (every online policy; the
#: offline SOptimal yardstick cannot be shadowed because it reads the future).
ADAPTIVE_CANDIDATES = ("nocache", "replica", "benefit", "vcover")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive meta-policy.

    Attributes
    ----------
    epoch_length:
        Events (queries plus updates) per scoring epoch.
    candidates:
        Arms to shadow, in priority order (ties break towards the front).
    initial:
        The arm that is live before the first epoch closes.
    discount:
        Exponential discount on past epoch scores (0 = only the last epoch
        counts, values near 1 = long memory).
    switch_margin:
        Relative undercut the leader needs before a switch happens:
        the live arm is replaced only when
        ``score[leader] < (1 - switch_margin) * score[live]``.
    switch_horizon:
        Epochs over which a switch must amortise: the leader's estimated
        per-epoch saving, ``(score[live] - score[leader]) * (1 - discount)``,
        times this horizon must exceed the one-off cost of loading the
        leader's extra resident objects.
    benefit_window:
        Window size handed to the shadowed Benefit arm.
    vcover:
        Configuration handed to the shadowed VCover arm.
    flow_method:
        Max-flow solver for the per-epoch offline regret instances.
    track_regret:
        Whether to build and solve the per-epoch regret instances (exact
        solves; turn off for pure speed runs).
    """

    epoch_length: int = 250
    candidates: Tuple[str, ...] = ADAPTIVE_CANDIDATES
    initial: str = "nocache"
    discount: float = 0.5
    switch_margin: float = 0.1
    switch_horizon: float = 10.0
    benefit_window: int = 1000
    vcover: Optional[VCoverConfig] = None
    flow_method: str = "auto"
    track_regret: bool = True

    def __post_init__(self) -> None:
        if self.epoch_length < 1:
            raise ValueError(f"epoch_length must be >= 1, got {self.epoch_length!r}")
        if not self.candidates:
            raise ValueError("candidates must not be empty")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError(f"duplicate candidate names in {self.candidates!r}")
        unknown = [name for name in self.candidates if name not in ADAPTIVE_CANDIDATES]
        if unknown:
            raise ValueError(
                f"unknown candidates {unknown}; shadowable: {list(ADAPTIVE_CANDIDATES)}"
            )
        if self.initial not in self.candidates:
            raise ValueError(
                f"initial arm {self.initial!r} is not among candidates {self.candidates!r}"
            )
        if not 0.0 <= self.discount < 1.0:
            raise ValueError(f"discount must be in [0, 1), got {self.discount!r}")
        if not 0.0 <= self.switch_margin < 1.0:
            raise ValueError(
                f"switch_margin must be in [0, 1), got {self.switch_margin!r}"
            )
        if self.switch_horizon <= 0.0:
            raise ValueError(
                f"switch_horizon must be positive, got {self.switch_horizon!r}"
            )


class AdaptivePolicy(CachePolicy):
    """Follow-the-leader over shadowed candidate policies (see module docs).

    Parameters
    ----------
    repository:
        The server the cache talks to (shared read-only by all shadows).
    capacity:
        Cache capacity in MB, applied to every capacity-bound candidate.
    link:
        The real traffic ledger; mirrors the live arm's charges.
    config:
        Meta-policy knobs (:class:`AdaptiveConfig`).
    """

    name = "adaptive"

    def __init__(
        self,
        repository: Repository,
        capacity: float,
        link: NetworkLink,
        config: Optional[AdaptiveConfig] = None,
    ) -> None:
        self._repository = repository
        self._link = link
        self._config = config or AdaptiveConfig()
        self._candidates: Dict[str, BaseCachePolicy] = {
            name: self._build_candidate(name, capacity) for name in self._config.candidates
        }
        self._live_name = self._config.initial
        self._live_marks = self._live.link.total_by_mechanism()
        self._scores: Dict[str, float] = {name: 0.0 for name in self._config.candidates}
        self._arm_epochs: Dict[str, int] = {name: 0 for name in self._config.candidates}
        self._events_in_epoch = 0
        self._queries_seen = 0
        self._updates_seen = 0
        self._epochs = 0
        self._switches = 0
        self._switch_traffic = 0.0
        self._regret: Optional[RegretTracker] = (
            RegretTracker(self._config.flow_method) if self._config.track_regret else None
        )

    def _build_candidate(self, name: str, capacity: float) -> BaseCachePolicy:
        """Construct one shadow arm with a private traffic ledger."""
        shadow_link = NetworkLink()
        if name == "nocache":
            return NoCachePolicy(self._repository, capacity, shadow_link)
        if name == "replica":
            return ReplicaPolicy(self._repository, capacity, shadow_link)
        if name == "benefit":
            return BenefitPolicy(
                self._repository,
                capacity,
                shadow_link,
                BenefitConfig(window_size=self._config.benefit_window),
            )
        if name == "vcover":
            return VCoverPolicy(
                self._repository,
                capacity,
                shadow_link,
                self._config.vcover or VCoverConfig(),
            )
        raise ValueError(f"unknown candidate {name!r}")  # pragma: no cover - config guards

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def _live(self) -> BaseCachePolicy:
        return self._candidates[self._live_name]

    @property
    def live_arm(self) -> str:
        """Name of the currently live candidate."""
        return self._live_name

    @property
    def link(self) -> NetworkLink:
        """The real (mirrored) traffic ledger."""
        return self._link

    @property
    def total_traffic(self) -> float:
        """Total traffic booked on the real link so far."""
        return self._link.total_cost

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> None:
        """Feed the update to every shadow; mirror the live arm's traffic."""
        self._updates_seen += 1
        for name in self._config.candidates:
            self._candidates[name].on_update(update)
        moved = self._mirror_live(update.timestamp, event_id=update.update_id)
        if self._regret is not None and moved:
            self._regret.observe_update_traffic(sum(moved.values()))
        self._after_event(update.timestamp)

    def on_query(self, query: Query) -> QueryOutcome:
        """Feed the query to every shadow; answer with the live arm's outcome."""
        self._queries_seen += 1
        interacting: Dict[int, float] = {}
        in_instance = False
        if self._regret is not None:
            live = self._live
            # Theorem 1 scopes the decoupling subproblem to cached objects:
            # only fully-resident queries join the instance; the rest are
            # forced ships on both sides of the comparison.
            in_instance = live.store.contains_all(query.object_ids)
            if in_instance:
                for object_id in query.object_ids:
                    for update in live.interacting_updates(query, object_id):
                        interacting[update.update_id] = update.cost
        outcome: Optional[QueryOutcome] = None
        for name in self._config.candidates:
            candidate_outcome = self._candidates[name].on_query(query)
            if name == self._live_name:
                outcome = candidate_outcome
        assert outcome is not None  # the live arm is always a candidate
        moved = self._mirror_live(query.timestamp, event_id=query.query_id)
        if self._regret is not None:
            shipped = not outcome.answered_at_cache
            if in_instance:
                self._regret.observe_query(
                    query.query_id, query.cost, interacting, shipped
                )
            else:
                self._regret.observe_forced_query(query.cost)
            side_traffic = sum(moved.values())
            if shipped:
                # The query-shipping part is booked by observe_query /
                # observe_forced_query at the instance's (raw) price; only
                # the rest goes in separately.
                side_traffic -= moved.get("query_shipping", 0.0)
            self._regret.observe_update_traffic(side_traffic)
        self._after_event(query.timestamp)
        return outcome

    def _mirror_live(self, timestamp: float, event_id: Optional[int]) -> Dict[str, float]:
        """Book the live arm's new shadow charges onto the real link."""
        totals = self._live.link.total_by_mechanism()
        moved: Dict[str, float] = {}
        for mechanism, total in totals.items():
            delta = total - self._live_marks.get(mechanism, 0.0)
            if delta > 0.0:
                self._link.absorb(mechanism, delta, timestamp, event_id=event_id)
                moved[mechanism] = delta
        self._live_marks = totals
        return moved

    def _after_event(self, timestamp: float) -> None:
        """Count the event towards the epoch; close it at the boundary."""
        self._events_in_epoch += 1
        if self._events_in_epoch >= self._config.epoch_length:
            self._close_epoch(timestamp, allow_switch=True)

    # ------------------------------------------------------------------
    # Epoch boundaries
    # ------------------------------------------------------------------
    def _close_epoch(self, timestamp: float, allow_switch: bool) -> None:
        """Score the closing epoch, update regret, maybe switch arms."""
        config = self._config
        for name in config.candidates:
            snapshot = self._candidates[name].close_epoch()
            self._scores[name] = config.discount * self._scores[name] + snapshot.traffic
        self._arm_epochs[self._live_name] += 1
        self._epochs += 1
        self._events_in_epoch = 0
        if self._regret is not None:
            self._regret.close_epoch()
        if not allow_switch:
            return
        leader = min(
            config.candidates,
            key=lambda name: (self._scores[name], config.candidates.index(name)),
        )
        if leader == self._live_name:
            return
        leader_score = self._scores[leader]
        live_score = self._scores[self._live_name]
        if leader_score >= (1.0 - config.switch_margin) * live_score:
            return
        # Adopting the leader means loading every object it caches that the
        # live arm does not -- a real, paid cost.  Only switch when the
        # estimated per-epoch saving, amortised over the configured horizon,
        # exceeds that one-off cost.
        to_load = sorted(
            self._candidates[leader].store.resident_ids()
            - self._live.store.resident_ids()
        )
        switch_cost = 0.0
        for object_id in to_load:
            record = self._candidates[leader].store.get(object_id)
            assert record is not None  # resident ids come from the same store
            switch_cost += record.size
        saving_per_epoch = (live_score - leader_score) * (1.0 - config.discount)
        if saving_per_epoch * config.switch_horizon <= switch_cost:
            return
        self._switch_to(leader, to_load, timestamp)

    def _switch_to(self, leader: str, to_load: List[int], timestamp: float) -> None:
        """Make ``leader`` live, paying for the cache-content difference."""
        incoming = self._candidates[leader]
        for object_id in to_load:
            record = incoming.store.get(object_id)
            assert record is not None  # resident ids come from the same store
            cost = self._link.load_object(record.size, timestamp, object_id=object_id)
            self._switch_traffic += cost
            if self._regret is not None:
                self._regret.observe_update_traffic(cost)
        self._live_name = leader
        self._live_marks = self._live.link.total_by_mechanism()
        self._switches += 1

    def finalize(self) -> None:
        """Close the trailing partial epoch (scores and regret, no switch)."""
        if self._events_in_epoch > 0:
            self._close_epoch(timestamp=0.0, allow_switch=False)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Summary counters for reports (meta-level, not per-shadow)."""
        stats: Dict[str, float] = {
            "queries_seen": float(self._queries_seen),
            "updates_seen": float(self._updates_seen),
            "total_traffic": self.total_traffic,
            "epochs": float(self._epochs),
            "switches": float(self._switches),
            "switch_traffic": self._switch_traffic,
        }
        for name in self._config.candidates:
            stats[f"arm_{name}_epochs"] = float(self._arm_epochs[name])
            stats[f"arm_{name}_score"] = self._scores[name]
        summary = self.regret_summary()
        if summary is not None:
            for key, value in summary.items():
                stats[f"regret_{key}"] = value
        return stats

    def regret_summary(self) -> Optional[Dict[str, float]]:
        """Aggregate per-epoch regret vs the offline optimum (None if off).

        The simulation engine duck-types on this method to surface the
        summary in :class:`~repro.sim.results.RunResult`.
        """
        if self._regret is None:
            return None
        return self._regret.summary()
