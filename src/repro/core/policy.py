"""Cache-policy interface and shared bookkeeping.

A *policy* is the decision-making brain of the middleware cache: it reacts to
the interleaved stream of updates (arriving at the repository) and queries
(arriving at the cache), decides which data-communication mechanism to use,
and charges all resulting traffic to its :class:`repro.network.link.NetworkLink`.

:class:`BaseCachePolicy` implements the bookkeeping every concrete policy
needs -- a capacity-constrained :class:`repro.cache.store.CacheStore`, the
per-object list of *outstanding* updates (updates the server has applied that
the cached copy has not seen), and helpers for loading/evicting objects and
shipping updates with correct cost accounting -- so the concrete policies
(VCover, Benefit, the yardsticks) contain only their decision logic.

The base class follows an explicit *observe/decide* contract: everything a
policy learns about the workload flows through its
:class:`repro.cache.observer.PolicyObserver` (see :meth:`BaseCachePolicy.note_query`
and the notifications wired into :meth:`BaseCachePolicy.ship_query`,
:meth:`BaseCachePolicy.record_cache_answer` and update registration), while
the mechanism helpers below carry only decisions.  Meta-policies read the
observation side per epoch via :meth:`BaseCachePolicy.close_epoch`; see
``docs/policies.md`` for the full contract.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.cache.observer import EpochSnapshot, PolicyObserver
from repro.cache.store import CacheStore
from repro.core.decoupling import QueryOutcome
from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update
from repro.workload.trace import Trace


class CachePolicy(abc.ABC):
    """Abstract interface of a middleware-cache decision policy."""

    #: Human-readable policy name used in reports and experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def on_update(self, update: Update) -> None:
        """React to an update arriving at the repository.

        The repository itself has already ingested the update before this
        hook is called (the simulation engine guarantees the ordering).
        """

    @abc.abstractmethod
    def on_query(self, query: Query) -> QueryOutcome:
        """Answer a query, charging all traffic to the policy's link."""

    def prepare(self, trace: Trace) -> None:
        """Optional offline preparation before a run (used by SOptimal).

        Online policies must not inspect the future; the default
        implementation does nothing.
        """

    def finalize(self) -> None:
        """Optional hook called after the last event of a run."""


class BaseCachePolicy(CachePolicy):
    """Common residency / freshness bookkeeping for concrete policies.

    Parameters
    ----------
    repository:
        The server the cache talks to.
    capacity:
        Cache capacity in MB (``float('inf')`` for unbounded yardsticks).
    link:
        Traffic ledger all costs are charged to.
    """

    def __init__(self, repository: Repository, capacity: float, link: NetworkLink) -> None:
        self._repository = repository
        self._link = link
        self._store = CacheStore(capacity)
        #: Updates applied at the server but not yet at the cached copy,
        #: tracked only for resident objects, oldest first.
        self._outstanding: Dict[int, List[Update]] = {}
        #: The same updates indexed by update id, so a decision naming an
        #: update (e.g. a vertex-cover pick) resolves in O(1) instead of a
        #: scan over every resident object's outstanding list.
        self._outstanding_by_id: Dict[int, Update] = {}
        #: Upper bound on the newest outstanding timestamp per object,
        #: maintained on registration and dropped with the object.  Lets
        #: :meth:`interacting_updates` answer the common "query tolerates
        #: nothing, every outstanding update interacts" case without touching
        #: the per-update timestamps at all (removals may leave the bound
        #: stale-high, which only skips the shortcut, never falsifies it).
        self._outstanding_max_ts: Dict[int, float] = {}
        #: The observation half of the observe/decide contract: every
        #: workload fact the policy learns (queries, updates, answers,
        #: shipped queries, epoch traffic) is recorded here and nowhere else.
        self._observer = PolicyObserver(link)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def repository(self) -> Repository:
        """The server repository."""
        return self._repository

    @property
    def link(self) -> NetworkLink:
        """The policy's traffic ledger."""
        return self._link

    @property
    def store(self) -> CacheStore:
        """The policy's cache store."""
        return self._store

    @property
    def observer(self) -> PolicyObserver:
        """The policy's workload observer (the observation half)."""
        return self._observer

    @property
    def total_traffic(self) -> float:
        """Total traffic the policy has charged so far."""
        return self._link.total_cost

    def outstanding_updates(self, object_id: int) -> List[Update]:
        """Outstanding (unshipped) updates for a resident object."""
        return list(self._outstanding.get(object_id, ()))

    def outstanding_update(self, update_id: int) -> Optional[Update]:
        """Look up one outstanding update by id (None if not outstanding)."""
        return self._outstanding_by_id.get(update_id)

    def is_resident(self, object_id: int) -> bool:
        """Whether an object is currently cached."""
        return object_id in self._store

    def resident_objects(self) -> List[int]:
        """Ids of all currently cached objects."""
        return sorted(self._store.resident_ids())

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def note_query(self, query: Query) -> None:
        """Report a query arrival to the observer.

        Concrete policies call this once at the top of :meth:`on_query`;
        the answer itself is reported by the mechanism helpers
        (:meth:`ship_query` / :meth:`record_cache_answer`).
        """
        self._observer.note_query(query)

    def close_epoch(self) -> EpochSnapshot:
        """Close the observer's current epoch and return its snapshot."""
        return self._observer.close_epoch()

    # ------------------------------------------------------------------
    # Update arrival bookkeeping
    # ------------------------------------------------------------------
    def _register_update(self, update: Update) -> None:
        """Record an update against the cached copy of its object (if any)."""
        self._observer.note_update(update)
        object_id = update.object_id
        if object_id in self._store:
            self._store.mark_stale(object_id)
            self._outstanding.setdefault(object_id, []).append(update)
            self._outstanding_by_id[update.update_id] = update
            known = self._outstanding_max_ts.get(object_id)
            if known is None or update.timestamp > known:
                self._outstanding_max_ts[object_id] = update.timestamp

    # ------------------------------------------------------------------
    # Currency reasoning
    # ------------------------------------------------------------------
    def interacting_updates(self, query: Query, object_id: int) -> List[Update]:
        """Outstanding updates on ``object_id`` that ``query`` must see.

        These are the updates older than the query's tolerance window
        (``u.timestamp <= q.timestamp - t(q)``); newer outstanding updates may
        be ignored without violating the query's currency requirement.

        The common case -- an intolerant query replayed from a time-ordered
        trace, where every outstanding update is older than the query -- is
        answered from the per-object timestamp bound without filtering.
        """
        pending = self._outstanding.get(object_id)
        if not pending:
            return []
        threshold = query.staleness_threshold
        newest = self._outstanding_max_ts.get(object_id)
        if newest is not None and newest <= threshold:
            return list(pending)
        return [update for update in pending if update.timestamp <= threshold]

    def cache_satisfies(self, query: Query) -> bool:
        """Whether the cached copies alone satisfy the query's currency."""
        if not self._store.contains_all(query.object_ids):
            return False
        return all(
            not self.interacting_updates(query, object_id) for object_id in query.object_ids
        )

    # ------------------------------------------------------------------
    # Mechanism helpers (all charge the link)
    # ------------------------------------------------------------------
    def ship_query(self, query: Query) -> float:
        """Ship a query to the server and charge its cost."""
        cost = self._repository.answer_query(query)
        self._link.ship_query(cost, query.timestamp, query_id=query.query_id)
        self._observer.note_shipped_query(query)
        return cost

    def ship_update(self, update: Update, timestamp: float) -> float:
        """Ship one outstanding update to the cache and charge its cost.

        Applies the update to the cached copy: it is removed from the
        outstanding list and, if none remain, the object is marked fresh at
        the current server version.
        """
        object_id = update.object_id
        pending = self._outstanding.get(object_id)
        if not pending or update not in pending:
            raise ValueError(
                f"update {update.update_id} is not outstanding for object {object_id}"
            )
        pending.remove(update)
        self._outstanding_by_id.pop(update.update_id, None)
        self._link.ship_update(
            update.cost, timestamp, object_id=object_id, update_id=update.update_id
        )
        if not pending:
            self._outstanding.pop(object_id, None)
            self._outstanding_max_ts.pop(object_id, None)
            if object_id in self._store:
                self._store.mark_fresh(object_id, self._repository.object_version(object_id))
        return update.cost

    def ship_all_outstanding(self, object_id: int, timestamp: float) -> float:
        """Ship every outstanding update for one object; returns total cost."""
        total = 0.0
        for update in list(self._outstanding.get(object_id, ())):
            total += self.ship_update(update, timestamp)
        return total

    def load_object(self, object_id: int, timestamp: float, charge: bool = True) -> float:
        """Load a full snapshot of an object into the cache.

        The snapshot reflects every update the server has applied, so the
        object arrives fresh and any outstanding-update bookkeeping for it is
        cleared.  Returns the load cost (charged unless ``charge`` is False,
        which the Replica yardstick uses because the paper ignores its load
        costs).
        """
        snapshot, size = self._repository.load_object(object_id, timestamp)
        self._store.insert(
            object_id, size=size, version=snapshot.version, timestamp=timestamp
        )
        self._drop_outstanding(object_id)
        if charge:
            self._link.load_object(size, timestamp, object_id=object_id)
            return size
        return 0.0

    def evict_object(self, object_id: int) -> float:
        """Evict an object from the cache; returns the freed capacity."""
        record = self._store.evict(object_id)
        self._drop_outstanding(object_id)
        return record.size

    def _drop_outstanding(self, object_id: int) -> None:
        """Forget all outstanding updates of one object (evicted/reloaded)."""
        for update in self._outstanding.pop(object_id, ()):
            self._outstanding_by_id.pop(update.update_id, None)
        self._outstanding_max_ts.pop(object_id, None)

    def record_cache_answer(self, query: Query) -> None:
        """Record a cache hit on every object the query touches."""
        for object_id in query.object_ids:
            self._store.record_hit(object_id, query.timestamp)
        self._observer.note_cache_answer(query)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Summary counters for reports."""
        return {
            "queries_seen": float(self._observer.queries_seen),
            "updates_seen": float(self._observer.updates_seen),
            "total_traffic": self.total_traffic,
            **{f"store_{key}": value for key, value in self._store.stats().items()},
        }
