"""The data decoupling problem: shared decision and outcome types.

The decoupling problem (Section 3) asks, for an online sequence of queries
and updates: which objects to load, which to evict, which queries to ship,
and which updates to ship -- so that the cache never exceeds its capacity,
every query is answered within its tolerance for staleness, and total network
traffic is minimised.

Every algorithm in :mod:`repro.core` answers a query with a
:class:`QueryOutcome` that records *how* it was satisfied and what traffic it
caused, so the simulator and the tests can audit both cost accounting and
currency guarantees uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List


class QueryAction:
    """How a query was ultimately answered."""

    #: Answered entirely from the cache (possibly after shipping updates).
    ANSWERED_AT_CACHE = "answered_at_cache"
    #: Shipped to the repository and answered there.
    SHIPPED_TO_SERVER = "shipped_to_server"

    ALL = (ANSWERED_AT_CACHE, SHIPPED_TO_SERVER)


@dataclass
class QueryOutcome:
    """The audited result of processing one query.

    Attributes
    ----------
    query_id:
        The query processed.
    action:
        One of :class:`QueryAction`.
    query_shipping_cost:
        Traffic charged for shipping the query (0 when answered at cache).
    update_shipping_cost:
        Traffic charged for updates shipped in order to answer this query.
    load_cost:
        Traffic charged for objects loaded as a consequence of this query
        (VCover's LoadManager works in the background of a shipped query, so
        the cost is attributed to the triggering query for accounting).
    loaded_objects / evicted_objects:
        Objects loaded into / evicted from the cache while handling the query.
    shipped_updates:
        Ids of updates shipped while handling the query.
    """

    query_id: int
    action: str
    query_shipping_cost: float = 0.0
    update_shipping_cost: float = 0.0
    load_cost: float = 0.0
    loaded_objects: List[int] = field(default_factory=list)
    evicted_objects: List[int] = field(default_factory=list)
    shipped_updates: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.action not in QueryAction.ALL:
            raise ValueError(f"unknown query action {self.action!r}")

    @property
    def total_cost(self) -> float:
        """Total traffic attributed to this query."""
        return self.query_shipping_cost + self.update_shipping_cost + self.load_cost

    @property
    def answered_at_cache(self) -> bool:
        """Whether the query was answered from the cache."""
        return self.action == QueryAction.ANSWERED_AT_CACHE


@dataclass(frozen=True)
class DecouplingDecision:
    """A static decoupling: which objects live at the cache.

    Produced by the offline analyses (:mod:`repro.core.offline`) and by
    SOptimal; online algorithms produce a decision implicitly through their
    load/evict behaviour.
    """

    cached_objects: FrozenSet[int]
    #: Estimated total traffic of the decision over the analysed sequence.
    estimated_cost: float

    def caches(self, object_id: int) -> bool:
        """Whether the decision keeps ``object_id`` at the cache."""
        return object_id in self.cached_objects
