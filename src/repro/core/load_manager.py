"""The LoadManager module of VCover.

Invoked (conceptually "in the background") for queries that access at least
one object not resident in the cache.  Such queries have already been shipped
to the server; the LoadManager's job is to decide whether any of the missing
objects have become worth loading.

Following Figure 6 of the paper, the manager walks the missing objects of the
query in random order, attributing the query's shipping cost ``c = nu(q)`` to
them: an object whose load cost is fully covered by the remaining attribution
becomes a load candidate outright; the last, partially covered object becomes
a candidate with probability ``c / l(o)`` (randomized loading -- in
expectation an object is loaded only after shipping costs equal to its load
cost have been paid for it, without keeping a per-object counter).  Candidates
go through the *lazy* admission wrapper so that objects that would be loaded
only to be immediately evicted are skipped.

A deterministic, counter-based variant is provided for the ablation study
(E8 in DESIGN.md): it maintains an explicit accumulated-cost counter per
object and promotes the object once the counter exceeds its load cost -- the
behaviour the randomized mechanism simulates in expectation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.base import EvictionPolicy
from repro.cache.gds import GreedyDualSize
from repro.cache.lazy import LazyAdmission
from repro.cache.store import CacheStore
from repro.repository.queries import Query


@dataclass
class LoadDecision:
    """Outcome of one LoadManager invocation."""

    #: Objects to load (in order), with the size each will occupy.
    load_object_ids: List[int] = field(default_factory=list)
    #: Objects to evict first (in order).
    evict_object_ids: List[int] = field(default_factory=list)
    #: Load candidates that were considered but not admitted.
    skipped_object_ids: List[int] = field(default_factory=list)


class LoadManager:
    """Randomized, lazily admitted object loading (Figure 6).

    Parameters
    ----------
    store:
        The policy's cache store (read for capacity/residency; never mutated
        here -- the policy applies the returned decision).
    policy:
        The object caching algorithm ``A_obj`` (Greedy-Dual-Size by default).
    load_cost_of:
        Callback returning the *current* load cost of an object (its size at
        the server, including growth).
    rng:
        Source of randomness for the randomized loading; injected so runs are
        reproducible.
    randomized:
        When ``False`` the deterministic counter-based variant is used
        (ablation E8).
    """

    def __init__(
        self,
        store: CacheStore,
        policy: Optional[EvictionPolicy] = None,
        load_cost_of=None,
        rng: Optional[random.Random] = None,
        randomized: bool = True,
    ) -> None:
        if load_cost_of is None:
            raise ValueError("load_cost_of callback is required")
        self._store = store
        self._policy = policy or GreedyDualSize()
        self._lazy = LazyAdmission(self._policy, store)
        self._load_cost_of = load_cost_of
        self._rng = rng or random.Random(0)
        self._randomized = randomized
        #: Accumulated attributed cost per object (deterministic variant only).
        self._accumulated: Dict[int, float] = {}
        self._invocations = 0
        self._candidates_emitted = 0

    @property
    def eviction_policy(self) -> EvictionPolicy:
        """The underlying object caching algorithm."""
        return self._policy

    # ------------------------------------------------------------------
    # Decision making
    # ------------------------------------------------------------------
    def consider(self, query: Query, timestamp: float) -> LoadDecision:
        """Process one shipped query and decide which objects to load.

        Returns a :class:`LoadDecision`; the caller applies it (charging load
        costs, updating the store, notifying the eviction policy).
        """
        self._invocations += 1
        missing = sorted(self._store.missing(query.object_ids))
        if not missing:
            return LoadDecision()

        remaining = query.cost
        order = list(missing)
        self._rng.shuffle(order)
        for object_id in order:
            if remaining <= 0:
                break
            load_cost = self._load_cost_of(object_id)
            if load_cost <= 0:
                continue
            if not self._store.can_ever_fit(load_cost):
                # The object cannot fit even in an empty cache; never a candidate.
                continue
            if self._randomized:
                remaining = self._consider_randomized(object_id, load_cost, remaining, timestamp)
            else:
                remaining = self._consider_counted(object_id, load_cost, remaining, timestamp)

        plan = self._lazy.flush()
        return LoadDecision(
            load_object_ids=[intent.object_id for intent in plan.loads],
            evict_object_ids=list(plan.evictions),
            skipped_object_ids=[intent.object_id for intent in plan.skipped],
        )

    def _consider_randomized(
        self, object_id: int, load_cost: float, remaining: float, timestamp: float
    ) -> float:
        """Randomized loading (Lines 27-35 of Figure 6)."""
        if remaining >= load_cost:
            self._emit_candidate(object_id, load_cost, timestamp)
            return remaining - load_cost
        if self._rng.random() < remaining / load_cost:
            self._emit_candidate(object_id, load_cost, timestamp)
        return 0.0

    def _consider_counted(
        self, object_id: int, load_cost: float, remaining: float, timestamp: float
    ) -> float:
        """Deterministic counter-based variant (ablation)."""
        attributed = min(remaining, load_cost)
        self._accumulated[object_id] = self._accumulated.get(object_id, 0.0) + attributed
        if self._accumulated[object_id] >= load_cost:
            self._emit_candidate(object_id, load_cost, timestamp)
            self._accumulated[object_id] = 0.0
        return remaining - attributed

    def _emit_candidate(self, object_id: int, load_cost: float, timestamp: float) -> None:
        self._candidates_emitted += 1
        self._lazy.request(object_id, size=load_cost, cost=load_cost, timestamp=timestamp)

    # ------------------------------------------------------------------
    # Notifications from the policy
    # ------------------------------------------------------------------
    def note_load(self, object_id: int, size: float, timestamp: float) -> None:
        """Tell the eviction policy an object was actually loaded."""
        self._policy.on_load(object_id, size=size, cost=size, timestamp=timestamp)
        self._accumulated.pop(object_id, None)

    def note_evict(self, object_id: int) -> None:
        """Tell the eviction policy an object was evicted."""
        self._policy.on_evict(object_id)

    def note_hit(self, query: Query) -> None:
        """Refresh the eviction policy for every object a cache answer touched."""
        for object_id in query.object_ids:
            if object_id in self._store:
                self._policy.on_hit(object_id, query.timestamp)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for reports and tests."""
        return {
            "invocations": float(self._invocations),
            "candidates_emitted": float(self._candidates_emitted),
        }
