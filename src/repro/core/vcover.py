"""VCover: the online data-decoupling algorithm of Delta (Section 4).

VCover reacts to each arriving query as follows (Figure 3):

* if every object the query accesses is resident, the **UpdateManager**
  chooses -- via an incremental minimum-weight vertex cover of the internal
  interaction graph -- between shipping the query and shipping its outstanding
  interacting updates;
* otherwise the query is shipped to the server, and the **LoadManager**
  decides in the background whether any of the missing objects have become
  worth loading (randomized cost attribution over a lazy Greedy-Dual-Size
  cache).

All traffic (query shipping, update shipping, object loading) is charged to
the policy's :class:`repro.network.link.NetworkLink`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.base import EvictionPolicy
from repro.core.decoupling import QueryAction, QueryOutcome
from repro.core.load_manager import LoadManager
from repro.core.policy import BaseCachePolicy
from repro.core.update_manager import UpdateManager
from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update


@dataclass
class VCoverConfig:
    """Configuration of the VCover policy."""

    #: Max-flow solver used by the UpdateManager: "edmonds-karp", "dinic",
    #: "push-relabel", or "auto" (the default -- Edmonds-Karp on small
    #: interaction graphs, gap-heuristic push-relabel on large covers).
    flow_method: str = "auto"
    #: Use the randomized loading mechanism (False = deterministic counters).
    randomized_loading: bool = True
    #: Seed for the LoadManager's randomness.
    seed: int = 17
    #: Eviction policy name for the LoadManager ("gds", "lru", "lfu", "landlord").
    eviction_policy: str = "gds"
    #: Preshipping (paper Section 4, discussion): proactively ship updates for
    #: resident objects that have recently answered queries, so future queries
    #: on them do not have to wait for update shipping.  Improves response
    #: time at the cost of potentially shipping updates that a cover would
    #: never have justified; network traffic can only go up.
    preship: bool = False
    #: An object qualifies for preshipping once it has served this many cache
    #: answers since being loaded.
    preship_min_hits: int = 1


def _make_eviction_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (small local factory)."""
    from repro.cache.base import registry

    return registry.create(name)


class VCoverPolicy(BaseCachePolicy):
    """The VCover online decision policy."""

    name = "vcover"

    def __init__(
        self,
        repository: Repository,
        capacity: float,
        link: NetworkLink,
        config: Optional[VCoverConfig] = None,
    ) -> None:
        super().__init__(repository, capacity, link)
        self._config = config or VCoverConfig()
        self._update_manager = UpdateManager(method=self._config.flow_method)
        eviction = _make_eviction_policy(self._config.eviction_policy)
        self._load_manager = LoadManager(
            store=self.store,
            policy=eviction,
            load_cost_of=self._current_load_cost,
            rng=random.Random(self._config.seed),
            randomized=self._config.randomized_loading,
        )

    # ------------------------------------------------------------------
    # Helper callbacks
    # ------------------------------------------------------------------
    def _current_load_cost(self, object_id: int) -> float:
        """Current load cost of an object: its size at the server right now."""
        return self._repository.object_size(object_id)

    @property
    def update_manager(self) -> UpdateManager:
        """The UpdateManager (exposed for tests and diagnostics)."""
        return self._update_manager

    @property
    def load_manager(self) -> LoadManager:
        """The LoadManager (exposed for tests and diagnostics)."""
        return self._load_manager

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> None:
        """Record an update; resident copies of its object become stale.

        With preshipping enabled, updates for recently used resident objects
        are pushed to the cache immediately instead of waiting for a query to
        justify them through the cover.
        """
        self._register_update(update)
        if not self._config.preship:
            return
        record = self.store.get(update.object_id)
        if record is None or record.hits < self._config.preship_min_hits:
            return
        for outstanding in self.outstanding_updates(update.object_id):
            self.ship_update(outstanding, update.timestamp)

    def on_query(self, query: Query) -> QueryOutcome:
        """Process one query per Figure 3."""
        self.note_query(query)
        if self.store.contains_all(query.object_ids):
            return self._handle_in_cache(query)
        return self._handle_missing(query)

    def ship_update(self, update: Update, timestamp: float) -> float:
        """Ship one outstanding update, keeping the interaction graph in sync.

        Updates shipped outside a cover decision (preshipping, any future
        direct ship path) would otherwise leave their vertex in the interaction
        graph, inflating later cover weights; for cover-picked updates the
        graph has already retired the vertex, so the drop is a no-op.
        """
        cost = super().ship_update(update, timestamp)
        self._update_manager.forget_updates((update.update_id,))
        return cost

    # ------------------------------------------------------------------
    # In-cache path: UpdateManager
    # ------------------------------------------------------------------
    def _handle_in_cache(self, query: Query) -> QueryOutcome:
        interacting: Dict[int, List[Update]] = {}
        for object_id in query.object_ids:
            updates = self.interacting_updates(query, object_id)
            if updates:
                interacting[object_id] = updates
        decision = self._update_manager.decide(query, interacting)

        outcome = QueryOutcome(query_id=query.query_id, action=QueryAction.ANSWERED_AT_CACHE)

        # Ship every update the cover picked (they are now cost-justified).
        # The cover may pick updates beyond this query's own objects (vertices
        # that interact with earlier, still-active queries), so picks are
        # resolved through the policy's O(1) outstanding-update index rather
        # than by rebuilding a map over every resident object's updates.
        for update_id in decision.ship_update_ids:
            update = self.outstanding_update(update_id)
            if update is None:
                continue
            cost = self.ship_update(update, query.timestamp)
            outcome.update_shipping_cost += cost
            outcome.shipped_updates.append(update_id)

        if decision.ship_query:
            cost = self.ship_query(query)
            outcome.action = QueryAction.SHIPPED_TO_SERVER
            outcome.query_shipping_cost = cost
        else:
            self.record_cache_answer(query)
            self._load_manager.note_hit(query)
        return outcome

    # ------------------------------------------------------------------
    # Missing-object path: ship query, LoadManager in background
    # ------------------------------------------------------------------
    def _handle_missing(self, query: Query) -> QueryOutcome:
        cost = self.ship_query(query)
        outcome = QueryOutcome(
            query_id=query.query_id,
            action=QueryAction.SHIPPED_TO_SERVER,
            query_shipping_cost=cost,
        )
        decision = self._load_manager.consider(query, query.timestamp)

        for object_id in decision.evict_object_ids:
            dropped = self.outstanding_updates(object_id)
            self.evict_object(object_id)
            self._load_manager.note_evict(object_id)
            if dropped:
                self._update_manager.forget_updates(u.update_id for u in dropped)
            outcome.evicted_objects.append(object_id)

        for object_id in decision.load_object_ids:
            if self.is_resident(object_id):
                continue
            superseded = self.outstanding_updates(object_id)
            if superseded:
                # A fresh snapshot includes these updates; they can no longer
                # interact with future queries.
                self._update_manager.forget_updates(u.update_id for u in superseded)
            load_cost = self.load_object(object_id, query.timestamp)
            self._load_manager.note_load(object_id, size=load_cost, timestamp=query.timestamp)
            outcome.load_cost += load_cost
            outcome.loaded_objects.append(object_id)
        return outcome

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Aggregated counters from the policy and both managers."""
        data = super().stats()
        data.update({f"update_manager_{k}": v for k, v in self._update_manager.stats().items()})
        data.update({f"load_manager_{k}": v for k, v in self._load_manager.stats().items()})
        return data
