"""The three yardstick policies of the evaluation (Section 6.1).

* **NoCache** -- no cache at all: every query is shipped to the server.  Any
  algorithm performing worse than NoCache is useless.
* **Replica** -- a cache as large as the server holding every object; all
  updates are shipped to it the moment they arrive.  Load costs and the cache
  size limit are ignored (as in the paper).  Beating Replica while respecting
  a real cache size is the bar for "good".
* **SOptimal** -- the best *static* set of objects chosen with hindsight over
  the full sequence (conceptually one Benefit decision with a window as large
  as the whole trace): the chosen objects are loaded once at the start, never
  evicted, kept current by shipping their updates; queries fully covered are
  answered at the cache, the rest are shipped.  An online algorithm close to
  SOptimal is outstanding.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.decoupling import DecouplingDecision, QueryAction, QueryOutcome
from repro.core.policy import BaseCachePolicy
from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update
from repro.workload.trace import Trace


class NoCachePolicy(BaseCachePolicy):
    """Ship every query to the server; never cache anything."""

    name = "nocache"

    def __init__(self, repository: Repository, capacity: float, link: NetworkLink) -> None:
        # The capacity argument is accepted for interface uniformity but the
        # policy never loads anything.
        super().__init__(repository, 0.0, link)

    def on_update(self, update: Update) -> None:
        """Updates never travel: there is no cache to keep fresh."""
        self._register_update(update)

    def on_query(self, query: Query) -> QueryOutcome:
        """Ship the query and charge its cost."""
        self.note_query(query)
        cost = self.ship_query(query)
        return QueryOutcome(
            query_id=query.query_id,
            action=QueryAction.SHIPPED_TO_SERVER,
            query_shipping_cost=cost,
        )


class ReplicaPolicy(BaseCachePolicy):
    """A full replica of the repository kept current by shipping every update.

    The paper ignores the replica's load costs and cache-size limitation, so
    the policy pre-populates its (unbounded) store without charging and then
    simply pays for every update.
    """

    name = "replica"

    def __init__(self, repository: Repository, capacity: float, link: NetworkLink) -> None:
        super().__init__(repository, float("inf"), link)
        for obj in repository.catalog:
            self.load_object(obj.object_id, timestamp=0.0, charge=False)

    def on_update(self, update: Update) -> None:
        """Ship the update to the replica immediately (charged)."""
        self._register_update(update)
        for outstanding in self.outstanding_updates(update.object_id):
            self.ship_update(outstanding, update.timestamp)

    def on_query(self, query: Query) -> QueryOutcome:
        """Answer at the replica: it is always complete and current."""
        self.note_query(query)
        self.record_cache_answer(query)
        return QueryOutcome(query_id=query.query_id, action=QueryAction.ANSWERED_AT_CACHE)


class SOptimalPolicy(BaseCachePolicy):
    """Best static cache contents chosen in hindsight (offline).

    :meth:`prepare` must be called with the full trace before the run; it
    ranks objects by their whole-trace benefit (query-share saved minus update
    traffic minus load cost, exactly one Benefit window spanning everything)
    and greedily fills the cache.  During the run the chosen objects are kept
    current by shipping their updates; queries fully covered by the static set
    are free, the rest are shipped.
    """

    name = "soptimal"

    def __init__(self, repository: Repository, capacity: float, link: NetworkLink) -> None:
        super().__init__(repository, capacity, link)
        self._decision: Optional[DecouplingDecision] = None

    @property
    def decision(self) -> Optional[DecouplingDecision]:
        """The static decoupling chosen by :meth:`prepare` (None before)."""
        return self._decision

    def prepare(self, trace: Trace) -> None:
        """Choose the static cached set with full knowledge of the trace."""
        catalog = self._repository.catalog
        query_share: Dict[int, float] = {oid: 0.0 for oid in catalog.object_ids}
        update_cost: Dict[int, float] = {oid: 0.0 for oid in catalog.object_ids}

        for query in trace.queries():
            sizes = {oid: max(catalog.size_of(oid), 1e-9) for oid in query.object_ids}
            total = sum(sizes.values())
            for object_id, size in sizes.items():
                if object_id in query_share:
                    query_share[object_id] += query.cost * size / total
        for update in trace.updates():
            if update.object_id in update_cost:
                update_cost[update.object_id] += update.cost

        benefits = {
            oid: query_share[oid] - update_cost[oid] - catalog.size_of(oid)
            for oid in catalog.object_ids
        }
        ranked = sorted(
            ((oid, benefit) for oid, benefit in benefits.items() if benefit > 0),
            key=lambda item: item[1],
            reverse=True,
        )
        chosen: Set[int] = set()
        used = 0.0
        estimated = 0.0
        for object_id, benefit in ranked:
            size = catalog.size_of(object_id)
            if used + size <= self.store.capacity + 1e-9:
                chosen.add(object_id)
                used += size
                estimated += benefit
        self._decision = DecouplingDecision(
            cached_objects=frozenset(chosen), estimated_cost=estimated
        )
        # Load the static set up front, paying the load costs.
        for object_id in sorted(chosen):
            self.load_object(object_id, timestamp=0.0)

    def on_update(self, update: Update) -> None:
        """Ship updates for statically cached objects as they arrive."""
        self._register_update(update)
        if self.is_resident(update.object_id):
            for outstanding in self.outstanding_updates(update.object_id):
                self.ship_update(outstanding, update.timestamp)

    def on_query(self, query: Query) -> QueryOutcome:
        """Answer from the static set when it covers the query, else ship."""
        self.note_query(query)
        if self.cache_satisfies(query):
            self.record_cache_answer(query)
            return QueryOutcome(
                query_id=query.query_id, action=QueryAction.ANSWERED_AT_CACHE
            )
        cost = self.ship_query(query)
        return QueryOutcome(
            query_id=query.query_id,
            action=QueryAction.SHIPPED_TO_SERVER,
            query_shipping_cost=cost,
        )
