"""Offline optimal decoupling (Section 3.1).

Given full knowledge of a (sub)sequence of queries and updates over objects
that are resident in the cache, the optimal choice of which queries to ship
and which updates to ship is the minimum-weight vertex cover of the internal
interaction graph (Theorem 1).  :class:`OfflineDecoupler` builds that graph
from a trace and solves it exactly -- it is both a standalone analysis tool
(used in the worked-example test that reproduces the paper's Figure 2
numbers) and the hindsight baseline the property tests compare the online
UpdateManager against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.flow.vertex_cover import BipartiteCoverInstance, min_weight_vertex_cover
from repro.repository.queries import Query
from repro.repository.updates import Update


@dataclass(frozen=True)
class OfflineDecision:
    """The offline-optimal shipping decision for a known sequence.

    Attributes
    ----------
    shipped_queries:
        Query ids that should be shipped to the server.
    shipped_updates:
        Update ids that should be shipped to the cache.
    total_cost:
        Total network traffic of the decision (the cover weight).
    """

    shipped_queries: FrozenSet[int]
    shipped_updates: FrozenSet[int]
    total_cost: float


class OfflineDecoupler:
    """Exact hindsight solver for the in-cache decoupling subproblem.

    Parameters
    ----------
    cached_objects:
        The objects resident in the cache for the analysed period.
    flow_method:
        Max-flow solver to use.
    """

    def __init__(self, cached_objects: Iterable[int], flow_method: str = "edmonds-karp") -> None:
        self._cached = set(cached_objects)
        self._flow_method = flow_method

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def build_instance(
        self, queries: Sequence[Query], updates: Sequence[Update]
    ) -> BipartiteCoverInstance:
        """Build the internal interaction graph for a known sequence.

        An edge (query, update) exists when the update affects an object the
        query accesses, the object is cached, the update arrived before the
        query, and the update is older than the query's staleness tolerance.
        Queries are only included if all their accessed objects are cached
        (other queries are shipped outright and are not part of the internal
        graph); updates to non-cached objects are ignored.
        """
        query_weights: Dict[object, float] = {}
        update_weights: Dict[object, float] = {}
        edges: Set[Tuple[object, object]] = set()

        relevant_updates = [u for u in updates if u.object_id in self._cached]
        for query in queries:
            if not set(query.object_ids) <= self._cached:
                continue
            query_weights[query.query_id] = query.cost
            for update in relevant_updates:
                if update.object_id not in query.object_ids:
                    continue
                if update.timestamp > query.timestamp:
                    continue
                if not query.requires_update(update.timestamp):
                    continue
                update_weights[update.update_id] = update.cost
                edges.add((query.query_id, update.update_id))

        return BipartiteCoverInstance(
            left_weights=query_weights,
            right_weights=update_weights,
            edges=frozenset(edges),
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, queries: Sequence[Query], updates: Sequence[Update]) -> OfflineDecision:
        """Return the offline-optimal shipping decision for the sequence."""
        instance = self.build_instance(queries, updates)
        cover = min_weight_vertex_cover(instance, method=self._flow_method)
        return OfflineDecision(
            shipped_queries=frozenset(cover.left_in_cover),
            shipped_updates=frozenset(cover.right_in_cover),
            total_cost=cover.weight,
        )

    def evaluate_full_choice(
        self,
        queries: Sequence[Query],
        updates: Sequence[Update],
        load_objects: Dict[int, float],
    ) -> float:
        """Traffic of a complete decoupling choice (Figure 2-style analysis).

        ``load_objects`` maps object ids to their load costs for objects the
        choice loads at the start of the sequence.  Queries whose objects are
        all covered (cached objects plus loaded objects) participate in the
        in-cache cover; other queries are shipped outright.  Returns the total
        traffic: loads + cover weight + shipped out-of-cache queries.
        """
        effective_cached = self._cached | set(load_objects)
        total = sum(load_objects.values())
        in_cache: List[Query] = []
        for query in queries:
            if set(query.object_ids) <= effective_cached:
                in_cache.append(query)
            else:
                total += query.cost
        solver = OfflineDecoupler(effective_cached, flow_method=self._flow_method)
        decision = solver.solve(in_cache, updates)
        return total + decision.total_cost
