"""Delta: the user-facing middleware cache facade.

:class:`Delta` wires together the pieces a deployment needs -- a repository,
a cache of a given size, a network-cost ledger and a decision policy -- behind
the small API a client application (or the simulator) talks to:

* :meth:`Delta.ingest_update` -- the telescope pipeline delivers a new update
  to the repository,
* :meth:`Delta.submit_query` -- an astronomer submits a query at the cache,
* :meth:`Delta.traffic_report` -- the traffic ledger, broken down by
  data-communication mechanism.

The facade is what the example programs use; the experiment harness drives
policies directly through :mod:`repro.sim` for tighter control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Type

from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.core.decoupling import QueryOutcome
from repro.core.policy import CachePolicy
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy, SOptimalPolicy
from repro.network.cost import LinearCostModel, TrafficCostModel
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update

#: Mapping of policy names to classes for config-driven construction.
POLICY_CLASSES: Dict[str, Type[CachePolicy]] = {
    "vcover": VCoverPolicy,
    "benefit": BenefitPolicy,
    "nocache": NoCachePolicy,
    "replica": ReplicaPolicy,
    "soptimal": SOptimalPolicy,
}


@dataclass
class DeltaConfig:
    """Configuration of a Delta deployment.

    Attributes
    ----------
    cache_fraction:
        Cache capacity as a fraction of the repository's total size (the
        paper's default is 0.3).  Ignored when ``cache_capacity`` is given.
    cache_capacity:
        Absolute cache capacity in MB (overrides ``cache_fraction``).
    policy:
        Name of the decision policy ("vcover", "benefit", "nocache",
        "replica" or "soptimal").
    vcover / benefit:
        Policy-specific configuration blocks.
    keep_transfer_records:
        Whether the network link retains every individual transfer.
    """

    cache_fraction: float = 0.3
    cache_capacity: Optional[float] = None
    policy: str = "vcover"
    vcover: VCoverConfig = field(default_factory=VCoverConfig)
    benefit: BenefitConfig = field(default_factory=BenefitConfig)
    keep_transfer_records: bool = False

    def __post_init__(self) -> None:
        if self.cache_capacity is None and not 0.0 <= self.cache_fraction:
            raise ValueError("cache_fraction must be non-negative")
        if self.policy not in POLICY_CLASSES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICY_CLASSES)}"
            )


class Delta:
    """A Delta middleware-cache deployment.

    Parameters
    ----------
    catalog:
        The object catalogue describing the repository's data objects.
    config:
        Deployment configuration; defaults mirror the paper's setup
        (VCover policy, cache 30 % of the server).
    cost_model:
        Traffic cost model; defaults to the paper's linear model.
    """

    def __init__(
        self,
        catalog: ObjectCatalog,
        config: Optional[DeltaConfig] = None,
        cost_model: Optional[TrafficCostModel] = None,
    ) -> None:
        self._config = config or DeltaConfig()
        self._repository = Repository(catalog)
        self._link = NetworkLink(
            cost_model=cost_model or LinearCostModel(),
            keep_records=self._config.keep_transfer_records,
        )
        capacity = self._config.cache_capacity
        if capacity is None:
            capacity = catalog.total_size * self._config.cache_fraction
        self._policy = self._build_policy(capacity)
        self._queries_processed = 0
        self._updates_processed = 0

    def _build_policy(self, capacity: float) -> CachePolicy:
        name = self._config.policy
        if name == "vcover":
            return VCoverPolicy(self._repository, capacity, self._link, self._config.vcover)
        if name == "benefit":
            return BenefitPolicy(self._repository, capacity, self._link, self._config.benefit)
        policy_class = POLICY_CLASSES[name]
        return policy_class(self._repository, capacity, self._link)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def repository(self) -> Repository:
        """The server repository."""
        return self._repository

    @property
    def policy(self) -> CachePolicy:
        """The active decision policy."""
        return self._policy

    @property
    def link(self) -> NetworkLink:
        """The traffic ledger."""
        return self._link

    @property
    def config(self) -> DeltaConfig:
        """The deployment configuration."""
        return self._config

    def ingest_update(self, update: Update) -> None:
        """Apply a pipeline update at the repository and notify the policy."""
        self._repository.ingest_update(update)
        self._policy.on_update(update)
        self._updates_processed += 1

    def submit_query(self, query: Query) -> QueryOutcome:
        """Submit a user query at the cache and return the audited outcome."""
        outcome = self._policy.on_query(query)
        self._queries_processed += 1
        return outcome

    def traffic_report(self) -> Dict[str, float]:
        """Total traffic and per-mechanism breakdown, in MB."""
        report = {"total": self._link.total_cost}
        report.update(self._link.total_by_mechanism())
        return report

    def cache_report(self) -> Dict[str, float]:
        """Cache occupancy and hit statistics."""
        stats = self._policy.stats() if hasattr(self._policy, "stats") else {}
        stats["queries_processed"] = float(self._queries_processed)
        stats["updates_processed"] = float(self._updates_processed)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Delta(policy={self._config.policy!r}, "
            f"traffic={self._link.total_cost:.1f}MB)"
        )
