"""The UpdateManager module of VCover.

Invoked for queries whose objects are *all* resident in the cache.  The
UpdateManager decides between shipping the query and shipping the outstanding
updates the query interacts with, by maintaining the internal interaction
graph and computing its minimum-weight vertex cover incrementally
(Figure 4/5 of the paper).

The manager does not own the cache or the network link -- it receives thin
callbacks from the policy so it can be unit-tested with fakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.interaction_graph import InteractionGraph
from repro.repository.queries import Query
from repro.repository.updates import Update


@dataclass
class UpdateManagerResult:
    """What the UpdateManager decided for one query."""

    #: Whether the query must be shipped to the server.
    ship_query: bool
    #: Updates (ids) that must be shipped to the cache.
    ship_update_ids: List[int]
    #: Weight of the cover that produced the decision (diagnostics).
    cover_weight: float


class UpdateManager:
    """Choose between query shipping and update shipping for in-cache queries.

    Parameters
    ----------
    method:
        Max-flow solver used for the incremental cover computation.
    """

    def __init__(self, method: str = "edmonds-karp") -> None:
        self._graph = InteractionGraph(method=method)
        self._decisions = 0
        self._queries_shipped = 0
        self._updates_shipped = 0

    @property
    def graph(self) -> InteractionGraph:
        """The interaction (remainder) graph."""
        return self._graph

    # ------------------------------------------------------------------
    # Decision making
    # ------------------------------------------------------------------
    def decide(
        self,
        query: Query,
        interacting_updates: Dict[int, List[Update]],
    ) -> UpdateManagerResult:
        """Decide how to satisfy ``query``.

        Parameters
        ----------
        query:
            The arriving query; every object it accesses is resident.
        interacting_updates:
            For each *stale* object the query touches, the outstanding updates
            the query must see (older than its staleness tolerance).  Empty
            when the cache already satisfies the query.
        """
        self._decisions += 1
        all_updates = [
            update for updates in interacting_updates.values() for update in updates
        ]
        if not all_updates:
            # Fast path: every interacting update has already been shipped.
            return UpdateManagerResult(ship_query=False, ship_update_ids=[], cover_weight=0.0)

        self._graph.add_query(query)
        for update in all_updates:
            self._graph.add_update(update)
            self._graph.add_interaction(query, update)

        advice = self._graph.advise(query)
        if advice.ship_query:
            self._queries_shipped += 1
        shipped = [uid for uid in advice.ship_updates]
        self._updates_shipped += len(shipped)
        return UpdateManagerResult(
            ship_query=advice.ship_query,
            ship_update_ids=shipped,
            cover_weight=advice.cover_weight,
        )

    # ------------------------------------------------------------------
    # Cache-change notifications
    # ------------------------------------------------------------------
    def forget_updates(self, update_ids: Iterable[int]) -> None:
        """Drop update vertices that became irrelevant (object evicted/reloaded)."""
        self._graph.drop_updates(update_ids)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for reports and tests."""
        return {
            "decisions": float(self._decisions),
            "queries_shipped": float(self._queries_shipped),
            "updates_shipped": float(self._updates_shipped),
            "covers_computed": float(self._graph.covers_computed),
            "graph_queries": float(self._graph.active_query_count),
            "graph_updates": float(self._graph.active_update_count),
            "graph_edges": float(self._graph.edge_count),
        }
