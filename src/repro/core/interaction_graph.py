"""The query/update interaction graph.

The *internal* interaction graph (Section 3.1) has one vertex per query whose
objects are all in cache, one vertex per outstanding update those queries
interact with, and an edge whenever satisfying the query's currency would
require shipping the update.  Its minimum-weight vertex cover tells the
UpdateManager which queries to ship and which updates to ship.

:class:`InteractionGraph` wraps :class:`repro.flow.incremental.IncrementalMaxFlow`
with the domain vocabulary (queries and updates instead of left/right
vertices), maintains the *remainder subgraph* of Section 4 -- update nodes
picked in a cover and query nodes not picked are retired -- and exposes the
cover as explicit "ship this query" / "ship these updates" advice.

Vertex keys are *generation-scoped*: every ``add_query`` call mints a fresh
internal key, and an update id observed with a different identity (different
timestamp/cost/object, as happens when independently generated traces reuse
ids) silently starts a new generation.  External callers therefore never need
globally unique ids for correctness; uniqueness is only required *among the
currently outstanding updates*, which the policy bookkeeping guarantees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.flow.incremental import IncrementalMaxFlow
from repro.flow.vertex_cover import BipartiteCoverInstance
from repro.repository.queries import Query
from repro.repository.updates import Update

#: Internal vertex key types: ("q", query_id, generation) / ("u", update_id, generation).
QueryKey = Tuple[str, int, int]
UpdateKey = Tuple[str, int, int]


@dataclass(frozen=True)
class CoverAdvice:
    """The UpdateManager-facing result of one cover computation.

    Attributes
    ----------
    ship_query:
        Whether the newly arrived query should be shipped to the server.
    ship_updates:
        Ids of every update vertex picked in the cover.  Shipping them is now
        cost-justified by the accumulated query weights they interact with,
        and they leave the remainder subgraph, so the UpdateManager ships them
        regardless of whether the triggering query itself is shipped.
    cover_weight:
        Total weight of the computed cover (diagnostics).
    """

    ship_query: bool
    ship_updates: FrozenSet[int]
    cover_weight: float


class InteractionGraph:
    """Incrementally maintained interaction graph with remainder pruning."""

    #: Compact the underlying flow network once it carries this many retired
    #: vertices more than active ones (pure performance knob; decisions are
    #: unaffected, see :meth:`repro.flow.incremental.IncrementalMaxFlow.compact`).
    COMPACTION_SLACK = 256

    def __init__(self, method: str = "edmonds-karp") -> None:
        self._flow = IncrementalMaxFlow(method=method)
        self._sequence = itertools.count()
        #: Active (non-retired) query vertex keys.
        self._active_query_keys: Set[QueryKey] = set()
        #: Most recent vertex key minted for each query id.
        self._latest_query_key: Dict[int, QueryKey] = {}
        #: Active update vertex key per update id.
        self._active_update_keys: Dict[int, UpdateKey] = {}
        #: The Update value each active update vertex represents (identity check).
        self._update_identity: Dict[int, Update] = {}
        #: Edges between active vertex keys, stored as per-vertex incidence
        #: sets so retiring a vertex removes exactly its own edges instead of
        #: rebuilding the whole edge set (the remainder subgraph is small but
        #: the accumulated edge set is not).
        self._edges_by_query: Dict[QueryKey, Set[UpdateKey]] = {}
        self._edges_by_update: Dict[UpdateKey, Set[QueryKey]] = {}
        self._covers_computed = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_query(self, query: Query) -> None:
        """Add a query vertex weighted by its shipping cost."""
        key: QueryKey = ("q", query.query_id, next(self._sequence))
        self._flow.add_left(key, query.cost)
        self._active_query_keys.add(key)
        self._latest_query_key[query.query_id] = key

    def add_update(self, update: Update) -> None:
        """Add an update vertex weighted by its shipping cost (idempotent).

        Re-adding the *same* outstanding update is a no-op; an update id seen
        with a different identity (id reuse across traces) starts a fresh
        vertex generation and retires the stale one.
        """
        existing = self._active_update_keys.get(update.update_id)
        if existing is not None:
            if self._update_identity.get(update.update_id) == update:
                return
            # Same id, different update: retire the stale vertex first.
            self._retire_update_keys([existing])
        key: UpdateKey = ("u", update.update_id, next(self._sequence))
        self._flow.add_right(key, update.cost)
        self._active_update_keys[update.update_id] = key
        self._update_identity[update.update_id] = update

    def add_interaction(self, query: Query, update: Update) -> None:
        """Add an edge between a query and an update it interacts with."""
        query_key = self._latest_query_key.get(query.query_id)
        if query_key is None or query_key not in self._active_query_keys:
            raise KeyError(f"query {query.query_id} has not been added")
        update_key = self._active_update_keys.get(update.update_id)
        if update_key is None:
            raise KeyError(f"update {update.update_id} has not been added")
        self._flow.add_edge(query_key, update_key)
        self._edges_by_query.setdefault(query_key, set()).add(update_key)
        self._edges_by_update.setdefault(update_key, set()).add(query_key)

    # ------------------------------------------------------------------
    # Cover computation and remainder maintenance
    # ------------------------------------------------------------------
    def advise(self, query: Query) -> CoverAdvice:
        """Compute the current cover and translate it into shipping advice.

        After the computation the remainder subgraph is pruned exactly as
        Section 4 prescribes: update vertices picked in the cover are retired
        (their shipping is now justified and paid), and query vertices *not*
        picked are retired (they were answered from cache; they can never
        justify future shipping).
        """
        cover = self._flow.compute_cover()
        self._covers_computed += 1
        query_key = self._latest_query_key.get(query.query_id)
        ship_query = query_key in cover.left_in_cover if query_key is not None else False

        # Every update picked in the cover is now cost-justified and shipped.
        cover_update_keys = set(cover.right_in_cover)
        ship_updates = frozenset(key[1] for key in cover_update_keys)

        # Remainder pruning.
        # Sorted: the retire order feeds the flow network's bookkeeping.
        retired_queries = [
            key
            for key in sorted(self._active_query_keys)
            if key not in cover.left_in_cover
        ]
        self._flow.retire(left=retired_queries, right=list(cover_update_keys))
        self._active_query_keys.difference_update(retired_queries)
        self._remove_query_edges(retired_queries)
        self._retire_update_keys(cover_update_keys, already_retired_in_flow=True)
        self._prune_isolated_queries()
        self._maybe_compact()

        return CoverAdvice(
            ship_query=ship_query,
            ship_updates=ship_updates,
            cover_weight=cover.weight,
        )

    def drop_updates(self, update_ids: Iterable[int]) -> None:
        """Retire update vertices that became irrelevant.

        Used when an object is evicted or reloaded: its outstanding updates
        can no longer interact with future queries, so they leave the
        remainder subgraph.
        """
        keys = [
            self._active_update_keys[update_id]
            for update_id in update_ids
            if update_id in self._active_update_keys
        ]
        if not keys:
            return
        self._retire_update_keys(keys)
        self._prune_isolated_queries()
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Internal maintenance
    # ------------------------------------------------------------------
    def _retire_update_keys(
        self, keys: Iterable[UpdateKey], already_retired_in_flow: bool = False
    ) -> None:
        keys = list(keys)
        if not already_retired_in_flow and keys:
            self._flow.retire(right=keys)
        for key in keys:
            update_id = key[1]
            if self._active_update_keys.get(update_id) == key:
                self._active_update_keys.pop(update_id, None)
                self._update_identity.pop(update_id, None)
            for query_key in self._edges_by_update.pop(key, ()):
                edges = self._edges_by_query.get(query_key)
                if edges is not None:
                    edges.discard(key)
                    if not edges:
                        del self._edges_by_query[query_key]

    def _remove_query_edges(self, query_keys: Iterable[QueryKey]) -> None:
        """Drop the edges of retired query vertices from the incidence maps."""
        for key in query_keys:
            for update_key in self._edges_by_query.pop(key, ()):
                edges = self._edges_by_update.get(update_key)
                if edges is not None:
                    edges.discard(key)
                    if not edges:
                        del self._edges_by_update[update_key]

    def _prune_isolated_queries(self) -> None:
        """Retire query vertices with no remaining active edges.

        Edges are only ever added for a *newly arrived* query, so an old query
        whose interacting updates have all been shipped or dropped can never
        influence a future cover; keeping it would only bloat the network.
        """
        edges_by_query = self._edges_by_query
        isolated = [
            key
            for key in sorted(self._active_query_keys)
            if not edges_by_query.get(key)
        ]
        if not isolated:
            return
        self._flow.retire(left=isolated)
        self._active_query_keys.difference_update(isolated)
        for key in isolated:
            edges_by_query.pop(key, None)

    def _maybe_compact(self) -> None:
        """Compact the flow network when retired vertices dominate it."""
        active = len(self._active_query_keys) + len(self._active_update_keys)
        if self._flow.retired_count > active + self.COMPACTION_SLACK:
            self._flow.compact()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_query_count(self) -> int:
        """Number of query vertices in the remainder subgraph."""
        return len(self._active_query_keys)

    @property
    def active_update_count(self) -> int:
        """Number of update vertices in the remainder subgraph."""
        return len(self._active_update_keys)

    @property
    def edge_count(self) -> int:
        """Number of edges in the remainder subgraph."""
        return sum(len(edges) for edges in self._edges_by_query.values())

    @property
    def covers_computed(self) -> int:
        """Number of cover computations performed so far."""
        return self._covers_computed

    def active_update_ids(self) -> FrozenSet[int]:
        """Ids of the update vertices currently in the remainder subgraph."""
        return frozenset(self._active_update_keys)

    def to_instance(self) -> BipartiteCoverInstance:
        """Export the remainder subgraph as a standalone cover instance."""
        return self._flow.to_instance(active_only=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InteractionGraph(queries={self.active_query_count}, "
            f"updates={self.active_update_count}, edges={self.edge_count})"
        )
