"""Benefit: the exponential-smoothing greedy baseline (Section 5).

Benefit divides the event sequence into windows of ``delta`` events.  During
a window it behaves like a conventional dynamic-data cache: updates for
resident objects are shipped eagerly as they arrive, queries fully covered by
fresh resident objects are answered at the cache, everything else is shipped.

At each window boundary it computes, for every object, the *benefit* the
object accrued (or would have accrued) during the closing window:

* resident objects: query traffic saved (each cache-answered query's cost is
  split among the objects it accesses in proportion to their sizes) minus the
  update traffic shipped for the object;
* non-resident objects: the query traffic they *would* have saved minus the
  update traffic they *would* have caused, minus their load cost.

The forecast ``mu_i = (1 - alpha) * mu_{i-1} + alpha * b_{i-1}`` is smoothed
exponentially; objects with positive forecasts are ranked in decreasing order
and greedily loaded until the cache is full (already-resident objects keep
their slot for free; resident objects that fall off the list are evicted to
make room).

The paper uses Benefit as the stand-in for heuristics common in commercial
dynamic-data caches and online view materialisation, and shows it scales
poorly on evolving scientific workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.decoupling import QueryAction, QueryOutcome
from repro.core.policy import BaseCachePolicy
from repro.network.link import NetworkLink
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update


@dataclass
class BenefitConfig:
    """Configuration of the Benefit policy."""

    #: Window size delta, in events (the paper's default is 1000).
    window_size: int = 1000
    #: Exponential smoothing parameter alpha in [0, 1].
    alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")


@dataclass
class _WindowStats:
    """Per-object accounting accumulated during the current window."""

    #: Query cost shares attributable to the object (saved if resident).
    query_share: float = 0.0
    #: Update traffic addressed to the object during the window.
    update_cost: float = 0.0


class BenefitPolicy(BaseCachePolicy):
    """The window-based, exponentially smoothed greedy heuristic."""

    name = "benefit"

    def __init__(
        self,
        repository: Repository,
        capacity: float,
        link: NetworkLink,
        config: Optional[BenefitConfig] = None,
    ) -> None:
        super().__init__(repository, capacity, link)
        self._config = config or BenefitConfig()
        self._window_events = 0
        self._window_index = 0
        self._window_stats: Dict[int, _WindowStats] = {}
        #: Exponentially smoothed benefit forecast per object.
        self._forecast: Dict[int, float] = {}
        self._current_time = 0.0

    @property
    def config(self) -> BenefitConfig:
        """The policy's configuration."""
        return self._config

    @property
    def window_index(self) -> int:
        """Number of completed windows."""
        return self._window_index

    def forecast_of(self, object_id: int) -> float:
        """Current smoothed benefit forecast of an object (0 if unseen)."""
        return self._forecast.get(object_id, 0.0)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_update(self, update: Update) -> None:
        """Eagerly ship updates for resident objects; account the traffic."""
        self._current_time = update.timestamp
        self._register_update(update)
        stats = self._window_stats.setdefault(update.object_id, _WindowStats())
        stats.update_cost += update.cost
        if self.is_resident(update.object_id):
            # Commercial-cache behaviour: keep resident objects current.
            for outstanding in self.outstanding_updates(update.object_id):
                self.ship_update(outstanding, update.timestamp)
        self._tick_window()

    def on_query(self, query: Query) -> QueryOutcome:
        """Answer from cache when possible, otherwise ship the query."""
        self.note_query(query)
        self._current_time = query.timestamp
        if self.cache_satisfies(query):
            self.record_cache_answer(query)
            outcome = QueryOutcome(
                query_id=query.query_id, action=QueryAction.ANSWERED_AT_CACHE
            )
        else:
            cost = self.ship_query(query)
            outcome = QueryOutcome(
                query_id=query.query_id,
                action=QueryAction.SHIPPED_TO_SERVER,
                query_shipping_cost=cost,
            )
        self._attribute_query_shares(query, answered_at_cache=outcome.answered_at_cache)
        self._tick_window()
        return outcome

    # ------------------------------------------------------------------
    # Window accounting
    # ------------------------------------------------------------------
    def _attribute_query_shares(self, query: Query, answered_at_cache: bool) -> None:
        """Split the query's cost among accessed objects, by size.

        Resident objects are only credited for queries the cache *actually*
        answered (that is the traffic they demonstrably saved).  Non-resident
        objects are credited hypothetically for every query touching them --
        the heuristic cannot know whether the query would have been a cache
        answer had the object been resident, so it assumes the best.  This
        optimistic-load / realistic-credit asymmetry is exactly what makes
        Benefit-style heuristics chase evolving hotspots (Section 5).
        """
        sizes = {
            object_id: max(self._repository.catalog.size_of(object_id), 1e-9)
            for object_id in query.object_ids
        }
        total_size = sum(sizes.values())
        for object_id, size in sizes.items():
            share = query.cost * size / total_size
            if self.is_resident(object_id) and not answered_at_cache:
                continue
            stats = self._window_stats.setdefault(object_id, _WindowStats())
            stats.query_share += share

    def _tick_window(self) -> None:
        self._window_events += 1
        if self._window_events >= self._config.window_size:
            self._close_window()
            self._window_events = 0

    def _close_window(self) -> None:
        """Compute benefits, update forecasts and re-plan the cache contents."""
        alpha = self._config.alpha
        catalog = self._repository.catalog
        benefits: Dict[int, float] = {}
        for object_id in catalog.object_ids:
            stats = self._window_stats.get(object_id, _WindowStats())
            if self.is_resident(object_id):
                benefit = stats.query_share - stats.update_cost
            else:
                load_cost = self._repository.object_size(object_id)
                benefit = stats.query_share - stats.update_cost - load_cost
            benefits[object_id] = benefit
            previous = self._forecast.get(object_id, 0.0)
            self._forecast[object_id] = (1.0 - alpha) * previous + alpha * benefit
        self._window_stats.clear()
        self._window_index += 1
        self._replan_cache()

    def _replan_cache(self) -> None:
        """Greedily (re)build the cached set from positive forecasts."""
        ranked = sorted(
            (
                (object_id, forecast)
                for object_id, forecast in self._forecast.items()
                if forecast > 0
            ),
            key=lambda item: item[1],
            reverse=True,
        )
        capacity = self.store.capacity
        target: Set[int] = set()
        used = 0.0
        for object_id, _ in ranked:
            size = self._repository.object_size(object_id)
            if used + size <= capacity + 1e-9:
                target.add(object_id)
                used += size

        # Evict residents that fell out of the target set.
        for object_id in list(self.store.resident_ids()):
            if object_id not in target:
                self.evict_object(object_id)

        # Load target objects that are not resident yet (paying load costs).
        for object_id, _ in ranked:
            if object_id in target and not self.is_resident(object_id):
                if self.store.fits(self._repository.object_size(object_id)):
                    self.load_object(object_id, self._current_time)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters including window progress."""
        data = super().stats()
        data["windows_completed"] = float(self._window_index)
        data["positive_forecasts"] = float(
            sum(1 for value in self._forecast.values() if value > 0)
        )
        return data
