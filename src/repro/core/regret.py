"""Online regret against the offline-optimal decoupling, per epoch.

The adaptive meta-policy (:mod:`repro.core.adaptive`) wants to know not just
which candidate it followed but how far its *realised* traffic sits above the
hindsight optimum.  :class:`RegretTracker` builds, epoch by epoch, the same
weighted bipartite interaction instance that
:class:`repro.core.offline.OfflineDecoupler` solves (Theorem 1: the optimal
ship-query vs ship-update choice is a minimum-weight vertex cover), but from
*observed* interactions only:

* a query whose objects are all resident contributes a left vertex weighted
  by its shipping cost, and one edge per outstanding update the live
  candidate would have to resolve (the updates interacting with the query at
  its arrival, given the candidate's resident set),
* a query over non-resident objects is *forced*: no decoupling schedule over
  the current cache contents can answer it locally, so its shipping cost is
  charged to both sides of the comparison (exactly as Theorem 1 scopes the
  subproblem to cached objects),
* the traffic the meta-policy actually booked in the epoch is the "online"
  side of the comparison,
* at an epoch boundary the instance is solved exactly and

  ``regret = max(observed_traffic - (forced_cost + offline_cover_weight), 0.0)``.

The cover weight plus the forced cost is a *feasible-decoupling* lower bound
for the observed instance, so per-epoch regret is non-negative by
construction: any schedule that answers an in-instance query at the cache
must have shipped all of its interacting updates (that is exactly a vertex
cover of the instance), any schedule that ships it pays its left-vertex
weight, and forced queries cost the same on both sides.  The
``max(..., 0)`` clamp only absorbs floating-point noise from the max-flow
certificate.

Two honest caveats, also documented in ``docs/policies.md``:

* the instance is built at query-*arrival* time from the live candidate's
  cache contents, so policies that ship updates eagerly (Replica, Benefit)
  or load objects are charged for traffic outside the instance -- regret
  deliberately penalises eagerness and loading, not just bad covers;
* each epoch is solved in isolation (cross-epoch interactions attach to the
  epoch in which the query arrives), matching how the adaptive policy scores
  and switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.flow.vertex_cover import BipartiteCoverInstance, min_weight_vertex_cover

__all__ = ["EpochRegret", "RegretTracker"]


@dataclass(frozen=True)
class EpochRegret:
    """Observed vs offline-optimal traffic for one epoch."""

    #: Zero-based epoch index.
    index: int
    #: Traffic the meta-policy actually booked during the epoch (MB).
    observed_cost: float
    #: Offline lower bound: forced shipping plus the minimum-weight vertex
    #: cover of the epoch's observed instance (MB).
    offline_cost: float

    @property
    def regret(self) -> float:
        """Non-negative excess of observed over offline-optimal traffic."""
        return max(self.observed_cost - self.offline_cost, 0.0)


class RegretTracker:
    """Accumulate per-epoch observed interaction instances and solve them.

    Parameters
    ----------
    flow_method:
        Max-flow solver handed to
        :func:`repro.flow.vertex_cover.min_weight_vertex_cover`.
    """

    __slots__ = (
        "_flow_method",
        "_left_weights",
        "_right_weights",
        "_edges",
        "_observed",
        "_forced",
        "_epochs",
        "_total_regret",
        "_total_observed",
        "_total_offline",
    )

    def __init__(self, flow_method: str = "edmonds-karp") -> None:
        self._flow_method = flow_method
        self._left_weights: Dict[int, float] = {}
        self._right_weights: Dict[int, float] = {}
        self._edges: List[Tuple[int, int]] = []
        self._observed = 0.0
        self._forced = 0.0
        self._epochs: List[EpochRegret] = []
        self._total_regret = 0.0
        self._total_observed = 0.0
        self._total_offline = 0.0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_query(
        self,
        query_id: int,
        cost: float,
        interacting: Mapping[int, float],
        shipped: bool,
    ) -> None:
        """Record one query of the current epoch.

        Parameters
        ----------
        query_id / cost:
            The query's id and shipping cost (its left-vertex weight).
        interacting:
            ``update_id -> shipping cost`` of every outstanding update the
            query interacts with at arrival (the edge set / right-vertex
            weights it contributes).
        shipped:
            Whether the meta-policy actually shipped the query this event;
            its cost is then part of the epoch's observed traffic.
        """
        self._left_weights[query_id] = cost
        for update_id, update_cost in interacting.items():
            self._right_weights.setdefault(update_id, update_cost)
            self._edges.append((query_id, update_id))
        if shipped:
            self._observed += cost

    def observe_forced_query(self, cost: float) -> None:
        """Record a query over non-resident objects (forced to ship).

        Its cost is charged to both sides of the comparison: the offline
        decoupling subproblem only optimises over cached objects, so no
        schedule could have answered this query locally either.
        """
        self._observed += cost
        self._forced += cost

    def observe_update_traffic(self, cost: float) -> None:
        """Record update-shipping (or loading) traffic booked this epoch."""
        self._observed += cost

    # ------------------------------------------------------------------
    # Epoch boundaries
    # ------------------------------------------------------------------
    def close_epoch(self) -> EpochRegret:
        """Solve the epoch's observed instance and reset for the next one."""
        instance = BipartiteCoverInstance.from_iterables(
            self._left_weights, self._right_weights, self._edges
        )
        cover = min_weight_vertex_cover(instance, method=self._flow_method)
        epoch = EpochRegret(
            index=len(self._epochs),
            observed_cost=self._observed,
            offline_cost=self._forced + cover.weight,
        )
        self._epochs.append(epoch)
        self._total_regret += epoch.regret
        self._total_observed += epoch.observed_cost
        self._total_offline += epoch.offline_cost
        self._left_weights = {}
        self._right_weights = {}
        self._edges = []
        self._observed = 0.0
        self._forced = 0.0
        return epoch

    # ------------------------------------------------------------------
    # Reading the totals
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> List[EpochRegret]:
        """Every closed epoch, in order."""
        return list(self._epochs)

    @property
    def pending_observed(self) -> float:
        """Observed traffic of the still-open epoch."""
        return self._observed

    def summary(self) -> Dict[str, float]:
        """Aggregate regret numbers over all closed epochs.

        Keys: ``epochs``, ``observed_traffic``, ``offline_traffic``,
        ``total`` (summed per-epoch regret) and ``mean_per_epoch``.
        """
        count = len(self._epochs)
        return {
            "epochs": float(count),
            "observed_traffic": self._total_observed,
            "offline_traffic": self._total_offline,
            "total": self._total_regret,
            "mean_per_epoch": self._total_regret / count if count else 0.0,
        }
