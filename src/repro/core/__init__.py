"""Delta's core decision framework.

This package implements the paper's primary contribution:

* :mod:`repro.core.decoupling` -- the data decoupling problem: decision and
  outcome types shared by every algorithm,
* :mod:`repro.core.policy` -- the cache-policy interface and common
  freshness/residency bookkeeping,
* :mod:`repro.core.interaction_graph` -- the query/update interaction graph
  backed by incremental max-flow,
* :mod:`repro.core.update_manager` / :mod:`repro.core.load_manager` -- the two
  modules of VCover,
* :mod:`repro.core.vcover` -- the VCover online algorithm,
* :mod:`repro.core.benefit` -- the exponential-smoothing greedy baseline,
* :mod:`repro.core.yardsticks` -- NoCache, Replica and SOptimal,
* :mod:`repro.core.offline` -- the offline optimal decoupling of Section 3.1,
* :mod:`repro.core.delta` -- the user-facing Delta middleware facade.
"""

from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.core.decoupling import QueryAction, QueryOutcome
from repro.core.delta import Delta, DeltaConfig
from repro.core.offline import OfflineDecoupler, OfflineDecision
from repro.core.policy import BaseCachePolicy, CachePolicy
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy, SOptimalPolicy

__all__ = [
    "BenefitConfig",
    "BenefitPolicy",
    "QueryAction",
    "QueryOutcome",
    "Delta",
    "DeltaConfig",
    "OfflineDecoupler",
    "OfflineDecision",
    "BaseCachePolicy",
    "CachePolicy",
    "VCoverConfig",
    "VCoverPolicy",
    "NoCachePolicy",
    "ReplicaPolicy",
    "SOptimalPolicy",
]
