"""Runtime state of one middleware-cache site.

A :class:`Site` is one cache of the fleet: its decision policy, its own
:class:`repro.network.link.NetworkLink` to the shared repository, and its
resolved cache capacity.  :func:`build_sites` instantiates a
:class:`repro.topology.spec.TopologySpec` against a shared repository --
every site's policy talks to the *same* :class:`Repository` (the paper's
single backend) but charges traffic to its own link, so per-site and
aggregate traffic can both be read off the ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.policy import CachePolicy
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.topology.spec import TopologySpec


@dataclass
class Site:
    """One live cache site of a topology."""

    site_id: int
    policy: CachePolicy
    link: NetworkLink
    capacity: float


def build_sites(spec: TopologySpec, repository: Repository) -> List[Site]:
    """Instantiate every site of a topology against one shared repository.

    Capacities are resolved against the catalogue's base size (not the grown
    server size), matching how single-cache runs size their cache.
    """
    server_size = repository.catalog.total_size
    sites: List[Site] = []
    for site_spec in spec.sites:
        link = NetworkLink()
        capacity = site_spec.resolve_capacity(server_size)
        policy = site_spec.spec.factory(repository, capacity, link)
        sites.append(
            Site(site_id=site_spec.site_id, policy=policy, link=link, capacity=capacity)
        )
    return sites
