"""Multi-cache topology: a fleet of middleware caches, one repository.

The paper evaluates one cache on one link, but its deployment setting --
and the middlebox platforms and context-aware middleware surveys in the
related work -- assume *many* cooperating caches in front of a single
rapidly-growing repository.  This package models that fleet:

* :class:`~repro.topology.spec.SiteSpec` / :class:`~repro.topology.spec.TopologySpec`
  -- picklable description of the fleet (per-site policy and cache size,
  partition strategy), sweep-ready like ``PolicySpec``;
* :class:`~repro.topology.site.Site` / :func:`~repro.topology.site.build_sites`
  -- runtime instantiation: each site gets its own policy and
  :class:`~repro.network.link.NetworkLink`, all sharing one
  :class:`~repro.repository.server.Repository`;
* :class:`~repro.topology.results.TopologyResult` -- per-site
  :class:`~repro.sim.results.RunResult`\\ s plus the fleet aggregate.

The query stream is split across sites by
:class:`repro.workload.partition.TracePartitioner` (sky region or hotspot
affinity); updates are broadcast to every site.  The replay engine lives in
:mod:`repro.sim.multicache` (:class:`MultiCacheEngine`, :func:`run_topology`).
"""

from repro.topology.results import TopologyResult
from repro.topology.site import Site, build_sites
from repro.topology.spec import DEFAULT_SITE_CACHE_FRACTION, SiteSpec, TopologySpec

__all__ = [
    "DEFAULT_SITE_CACHE_FRACTION",
    "Site",
    "SiteSpec",
    "TopologyResult",
    "TopologySpec",
    "build_sites",
]
