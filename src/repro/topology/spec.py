"""Declarative description of a multi-cache topology.

A :class:`TopologySpec` describes a fleet of middleware caches in front of
one shared repository: how many sites, which decision policy and cache size
each runs, and how the query stream is partitioned across them.  The spec is
a frozen, picklable value -- like :class:`repro.sim.runner.PolicySpec`, it
can cross a process boundary, so multi-site grids fan out over the sweep
runner's worker pool exactly like single-cache grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.runner import PolicySpec
from repro.workload.partition import PARTITION_STRATEGIES

#: Cache size used when a site sets neither fraction nor capacity (the
#: paper's default: 30 % of the server, per site).
DEFAULT_SITE_CACHE_FRACTION = 0.3


@dataclass(frozen=True)
class SiteSpec:
    """One site of a topology: a policy plus its cache size.

    Parameters
    ----------
    site_id:
        Position of the site in the topology (0-based; also the partitioner
        slice the site serves).
    spec:
        The decision policy the site runs (picklable, see
        :class:`repro.sim.runner.PolicySpec`).
    cache_fraction / cache_capacity:
        Cache size, as a fraction of the server or an absolute capacity in
        MB (the absolute value wins; defaults to
        :data:`DEFAULT_SITE_CACHE_FRACTION` of the server).
    """

    site_id: int
    spec: PolicySpec
    cache_fraction: Optional[float] = None
    cache_capacity: Optional[float] = None

    def resolve_capacity(self, server_size: float) -> float:
        """The site's cache capacity in MB for a given server size."""
        if self.cache_capacity is not None:
            return self.cache_capacity
        fraction = (
            DEFAULT_SITE_CACHE_FRACTION
            if self.cache_fraction is None
            else self.cache_fraction
        )
        return server_size * fraction


@dataclass(frozen=True)
class TopologySpec:
    """A fleet of sites sharing one repository.

    Parameters
    ----------
    name:
        Label used in results and artifacts (e.g. ``"vcover-x4"``).
    sites:
        One :class:`SiteSpec` per site, in site order.
    strategy:
        Object-to-site assignment strategy
        (see :data:`repro.workload.partition.PARTITION_STRATEGIES`).
    """

    name: str
    sites: Tuple[SiteSpec, ...]
    strategy: str = "region"

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("a topology needs at least one site")
        if self.strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {self.strategy!r}; "
                f"known: {PARTITION_STRATEGIES}"
            )
        for index, site in enumerate(self.sites):
            if site.site_id != index:
                raise ValueError(
                    f"site_id {site.site_id} at position {index}; "
                    "site ids must be 0..N-1 in order"
                )

    @property
    def site_count(self) -> int:
        """Number of sites in the topology."""
        return len(self.sites)

    @staticmethod
    def uniform(
        spec: PolicySpec,
        site_count: int,
        cache_fraction: Optional[float] = None,
        cache_capacity: Optional[float] = None,
        strategy: str = "region",
        name: Optional[str] = None,
    ) -> "TopologySpec":
        """A homogeneous topology: every site runs the same policy and size."""
        if site_count < 1:
            raise ValueError("site_count must be at least 1")
        return TopologySpec(
            name=name or f"{spec.name}-x{site_count}",
            sites=tuple(
                SiteSpec(
                    site_id=index,
                    spec=spec,
                    cache_fraction=cache_fraction,
                    cache_capacity=cache_capacity,
                )
                for index in range(site_count)
            ),
            strategy=strategy,
        )

    def metadata(self) -> Dict[str, object]:
        """Flat, JSON-serialisable description for artifacts and reports."""
        return {
            "name": self.name,
            "site_count": self.site_count,
            "strategy": self.strategy,
            "policies": [site.spec.name for site in self.sites],
            "cache_fractions": [site.cache_fraction for site in self.sites],
            "cache_capacities": [site.cache_capacity for site in self.sites],
        }
