"""Result container for multi-cache topology runs.

:class:`TopologyResult` collects what one
:class:`repro.sim.multicache.MultiCacheEngine` replay produced: one
:class:`repro.sim.results.RunResult` per site (each backed by that site's own
link ledger, occupancy series included) plus an *aggregate* ``RunResult``
summing the fleet, which is what sweep artifacts and comparisons consume --
a topology point slots into a :class:`repro.sim.results.ComparisonResult`
exactly like a single-cache run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.results import RunResult


@dataclass
class TopologyResult:
    """Outcome of replaying one trace against a fleet of sites."""

    #: Topology label (usually the spec's ``name``).
    name: str
    #: Per-site results, in site order.
    site_runs: List[RunResult]
    #: Fleet-wide aggregate (traffic summed over sites; per-site stats folded
    #: into ``policy_stats`` so they survive into flat sweep artifacts).
    aggregate: RunResult
    #: Partition strategy the query stream was split with.
    strategy: str = "region"
    #: Partitioner statistics (objects per site).
    partition: Dict[str, float] = field(default_factory=dict)

    @property
    def site_count(self) -> int:
        """Number of sites."""
        return len(self.site_runs)

    @property
    def total_traffic(self) -> float:
        """Fleet-wide total traffic in MB."""
        return self.aggregate.total_traffic

    @property
    def measured_traffic(self) -> float:
        """Fleet-wide traffic inside the measurement window."""
        return self.aggregate.measured_traffic

    def traffic_of_site(self, site: int, measured_only: bool = True) -> float:
        """Traffic of one site (measurement window by default)."""
        run = self.site_runs[site]
        return run.measured_traffic if measured_only else run.total_traffic

    def summary(self) -> Dict[str, float]:
        """Flat summary: aggregate figures plus per-site traffic."""
        data = {f"aggregate_{k}": v for k, v in self.aggregate.summary().items()}
        data["site_count"] = float(self.site_count)
        for site, run in enumerate(self.site_runs):
            data[f"site{site}_total_traffic"] = run.total_traffic
            data[f"site{site}_measured_traffic"] = run.measured_traffic
            data[f"site{site}_cache_answer_fraction"] = run.cache_answer_fraction
        return data

    def as_payload(self) -> Dict[str, object]:
        """JSON-serialisable representation (per-site plus aggregate)."""
        return {
            "name": self.name,
            "strategy": self.strategy,
            "site_count": self.site_count,
            "partition": dict(self.partition),
            "aggregate": self.aggregate.as_payload(),
            "sites": [run.as_payload() for run in self.site_runs],
        }

    def format_table(self, measured_only: bool = True) -> str:
        """Fixed-width per-site table with the aggregate row last."""
        lines = [
            f"topology {self.name}: {self.site_count} sites, strategy={self.strategy}",
            f"{'site':<12} {'traffic (MB)':>14} {'cache answers':>14} {'queries':>9}",
        ]
        for site, run in enumerate(self.site_runs):
            queries = run.queries_answered_at_cache + run.queries_shipped
            lines.append(
                f"site {site:<7} {self.traffic_of_site(site, measured_only):>14.1f} "
                f"{run.cache_answer_fraction:>14.2%} {queries:>9}"
            )
        aggregate = (
            self.aggregate.measured_traffic if measured_only else self.aggregate.total_traffic
        )
        total_queries = (
            self.aggregate.queries_answered_at_cache + self.aggregate.queries_shipped
        )
        lines.append(
            f"{'aggregate':<12} {aggregate:>14.1f} "
            f"{self.aggregate.cache_answer_fraction:>14.2%} {total_queries:>9}"
        )
        return "\n".join(lines)
