"""Query specifications.

Each user query ``q`` in Delta is a read-only, SQL-like query that accesses a
set of data objects ``B(q)``, has a network shipping cost ``nu(q)``
(proportional to the size of its result set) and an optional tolerance for
staleness ``t(q)``: the answer must reflect every update on the accessed
objects except those that arrived within the last ``t(q)`` time units.

The decision framework never inspects query text; the semantic mapping from a
SQL string to ``B(q)`` is performed up front by the workload substrate (for
astronomy workloads, by intersecting the query's sky region with the object
partitioning -- see :mod:`repro.sky`).  The optional :attr:`Query.sql` and
:attr:`Query.template` fields carry provenance for inspection and examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional

from repro._compat import SlottedFrozenPickle


class QueryTemplate:
    """Names of the query shapes observed in the SDSS trace (Section 6.1)."""

    __slots__ = ()

    RANGE = "range"
    SPATIAL_JOIN = "spatial_join"
    SELECTION = "selection"
    AGGREGATION = "aggregation"
    FULL_SCAN = "full_scan"

    ALL = (RANGE, SPATIAL_JOIN, SELECTION, AGGREGATION, FULL_SCAN)


@dataclass(frozen=True, slots=True)
class Query(SlottedFrozenPickle):
    """A single read-only query event.

    Attributes
    ----------
    query_id:
        Monotonically increasing identifier, unique within a trace.
    object_ids:
        The set ``B(q)`` of data objects the query accesses.
    cost:
        Network traffic cost (MB) of shipping the query to the server --
        the size of its result set.
    timestamp:
        Event-sequence time at which the query arrives at the cache.
    tolerance:
        Tolerance for staleness ``t(q)`` in time units.  ``0`` means the
        answer must include every update that has arrived; ``float('inf')``
        means any cached copy is acceptable.
    template:
        The query shape (range / join / selection / aggregation), provenance
        only.
    sql:
        Optional illustrative SQL text, provenance only.
    """

    query_id: int
    object_ids: FrozenSet[int]
    cost: float
    timestamp: float
    tolerance: float = 0.0
    template: str = QueryTemplate.SELECTION
    sql: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.object_ids, frozenset):
            object.__setattr__(self, "object_ids", frozenset(self.object_ids))
        if not self.object_ids:
            raise ValueError(f"query {self.query_id} accesses no objects")
        if self.cost < 0:
            raise ValueError(f"query {self.query_id} has negative cost {self.cost!r}")
        if self.tolerance < 0:
            raise ValueError(f"query {self.query_id} has negative tolerance {self.tolerance!r}")
        if self.template not in QueryTemplate.ALL:
            raise ValueError(f"query {self.query_id} has unknown template {self.template!r}")

    @property
    def shipping_cost(self) -> float:
        """Alias for :attr:`cost` matching the paper's ``nu(q)`` notation."""
        return self.cost

    @property
    def accessed_objects(self) -> FrozenSet[int]:
        """Alias for :attr:`object_ids` matching the paper's ``B(q)`` notation."""
        return self.object_ids

    @property
    def staleness_threshold(self) -> float:
        """Newest update timestamp the answer must still reflect.

        The single definition of the currency rule: an update interacts with
        this query iff ``update.timestamp <= staleness_threshold``.  Both
        :meth:`requires_update` and the policy-layer fast paths derive from
        it so the inequality can never diverge.
        """
        return self.timestamp - self.tolerance

    def requires_update(self, update_timestamp: float) -> bool:
        """Whether an update at ``update_timestamp`` must be reflected in the answer.

        Given the query's tolerance ``t(q)``, updates that arrived within the
        last ``t(q)`` time units (relative to the query's own timestamp) may be
        omitted; everything older must be incorporated.
        """
        return update_timestamp <= self.staleness_threshold

    def touches(self, object_id: int) -> bool:
        """Whether the query accesses ``object_id``."""
        return object_id in self.object_ids


class QueryIdAllocator:
    """Hands out unique query identifiers for trace generators."""

    __slots__ = ("_counter",)

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        """Return the next unused query id."""
        return next(self._counter)

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - convenience
        return self._counter


def total_query_cost(queries: Iterable[Query]) -> float:
    """Sum of shipping costs over an iterable of queries.

    This is exactly the traffic the ``NoCache`` yardstick pays, so it doubles
    as a quick upper-bound sanity check in tests and reports.
    """
    return sum(query.cost for query in queries)
