"""The server-side repository substrate.

:class:`Repository` is an in-memory stand-in for the SQL Server database of
the paper's prototype.  It stores per-object state (current version, applied
updates, row counts), accepts the continuous update stream from the telescope
pipeline, and serves the three data-communication mechanisms the cache may
invoke:

* **query shipping** -- answer a query directly (always possible, always
  up to date),
* **update shipping** -- return the outstanding updates for an object so the
  cache can apply them,
* **object loading** -- return a full, current snapshot of an object.

The repository also keeps an *update log* per object so that the cache (and
the decision algorithms) can reason about which updates a given cached
version is missing.  The log grows with every ingested update and nothing in
the simulation hot path reads it (policies track their own outstanding
updates), so the simulation runners construct their repositories with
``keep_update_log=False``: version counters, sizes and growth bookkeeping
are identical, only the per-object update history is dropped -- which is
what keeps a streaming replay of a multi-million-event trace in constant
memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.repository.objects import ObjectCatalog
from repro.repository.queries import Query
from repro.repository.updates import Update


@dataclass(slots=True)
class ObjectState:
    """Mutable server-side state of one data object."""

    object_id: int
    #: Version counter; bumped once per applied update.
    version: int = 0
    #: Total rows currently in the object (bookkeeping only).
    rows: int = 0
    #: Cumulative bytes (MB) added by updates since the initial snapshot.
    grown_by: float = 0.0
    #: Full update log in arrival order (empty when history is disabled).
    update_log: List[Update] = field(default_factory=list)

    def apply(self, update: Update, keep_log: bool = True) -> None:
        """Apply one update to this object's state.

        ``keep_log=False`` performs the same version/size bookkeeping but
        drops the update itself, bounding memory for history-free replays.
        """
        self.version += 1
        self.rows += update.rows
        self.grown_by += update.cost
        if keep_log:
            self.update_log.append(update)


@dataclass(frozen=True, slots=True)
class ObjectSnapshot:
    """An immutable snapshot handed to the cache when an object is loaded."""

    object_id: int
    version: int
    size: float
    #: Timestamp of the latest update included in this snapshot.
    as_of: float


class Repository:
    """In-memory scientific repository (the 'server').

    Parameters
    ----------
    catalog:
        The object catalogue defining identifiers and base sizes.
    keep_update_log:
        Whether to retain every ingested update in the per-object logs.
        ``True`` (the default) preserves the full history API
        (:meth:`update_log`, :meth:`updates_since`, :meth:`ship_updates`);
        ``False`` keeps only version counters and growth bookkeeping, so
        memory stays constant no matter how many updates are ingested (the
        simulation runners use this -- no policy reads the server-side log).
    """

    __slots__ = (
        "_catalog",
        "_keep_update_log",
        "_states",
        "_updates_received",
        "_queries_answered",
    )

    def __init__(self, catalog: ObjectCatalog, keep_update_log: bool = True) -> None:
        self._catalog = catalog
        self._keep_update_log = keep_update_log
        self._states: Dict[int, ObjectState] = {
            obj.object_id: ObjectState(object_id=obj.object_id) for obj in catalog
        }
        self._updates_received = 0
        self._queries_answered = 0

    # ------------------------------------------------------------------
    # Catalogue access
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> ObjectCatalog:
        """The shared object catalogue."""
        return self._catalog

    @property
    def total_size(self) -> float:
        """Current total repository size in MB (base size plus growth)."""
        base = self._catalog.total_size
        growth = sum(state.grown_by for state in self._states.values())
        return base + growth

    def object_size(self, object_id: int) -> float:
        """Current size of one object (base size plus growth), in MB.

        This is the *load cost* a cache pays to pull the object right now.
        """
        state = self._states[object_id]
        return self._catalog.size_of(object_id) + state.grown_by

    def object_version(self, object_id: int) -> int:
        """Current version counter of an object."""
        return self._states[object_id].version

    # ------------------------------------------------------------------
    # Update pipeline
    # ------------------------------------------------------------------
    def ingest_update(self, update: Update) -> None:
        """Apply one pipeline update to the repository.

        Raises ``KeyError`` if the update references an unknown object.
        """
        state = self._states[update.object_id]
        state.apply(update, keep_log=self._keep_update_log)
        self._updates_received += 1

    def ingest_updates(self, updates: Iterable[Update]) -> None:
        """Apply a batch of updates in order."""
        for update in updates:
            self.ingest_update(update)

    def ingest_update_columns(self, object_ids, rows, costs) -> None:
        """Apply a batch of updates given as columnar numpy arrays.

        The vectorised twin of calling :meth:`ingest_update` once per event:
        version counters and row totals advance by exact integer counts, and
        each object's ``grown_by`` accumulates its costs in event order via
        an unbuffered ``np.add.at``, which performs the same sequence of IEEE
        additions as the scalar path.  Only available on history-free
        repositories (``keep_update_log=False``) -- the batch drops the
        update objects themselves, so a log could not be maintained.

        Raises ``KeyError`` if any update references an unknown object.
        """
        if self._keep_update_log:
            raise RuntimeError(
                "ingest_update_columns requires keep_update_log=False; "
                "logged repositories must ingest event by event"
            )
        count = len(object_ids)
        if count == 0:
            return
        import numpy

        unique_ids, inverse = numpy.unique(object_ids, return_inverse=True)
        states = [self._states[int(object_id)] for object_id in unique_ids]
        version_add = numpy.bincount(inverse, minlength=len(unique_ids))
        rows_add = numpy.zeros(len(unique_ids), dtype=numpy.int64)
        numpy.add.at(rows_add, inverse, rows)
        grown = numpy.array([state.grown_by for state in states], dtype=numpy.float64)
        numpy.add.at(grown, inverse, costs)
        for position, state in enumerate(states):
            state.version += int(version_add[position])
            state.rows += int(rows_add[position])
            state.grown_by = float(grown[position])
        self._updates_received += count

    def update_log(self, object_id: int) -> Sequence[Update]:
        """Full update log of one object, oldest first."""
        self._require_update_log()
        return tuple(self._states[object_id].update_log)

    @property
    def keeps_update_log(self) -> bool:
        """Whether per-object update history is being retained."""
        return self._keep_update_log

    def _require_update_log(self) -> None:
        if not self._keep_update_log:
            raise RuntimeError(
                "this repository was built with keep_update_log=False; "
                "per-object update history is not retained"
            )

    def updates_since(self, object_id: int, version: int) -> List[Update]:
        """Updates applied to ``object_id`` after the given version.

        A cache holding a snapshot at ``version`` needs exactly these updates
        shipped to become current.
        """
        self._require_update_log()
        log = self._states[object_id].update_log
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        return list(log[version:])

    def outstanding_update_cost(self, object_id: int, version: int) -> float:
        """Total shipping cost (MB) of the updates a cached version is missing."""
        return sum(update.cost for update in self.updates_since(object_id, version))

    # ------------------------------------------------------------------
    # Data communication mechanisms
    # ------------------------------------------------------------------
    def answer_query(self, query: Query) -> float:
        """Ship a query: answer it at the server.

        Returns the network traffic cost of the result (``nu(q)``).  The
        repository always has the latest data, so every currency requirement
        is satisfied here.
        """
        for object_id in query.object_ids:
            if object_id not in self._states:
                raise KeyError(f"query {query.query_id} touches unknown object {object_id}")
        self._queries_answered += 1
        return query.cost

    def answer_query_batch(self, touched_object_ids, count: int) -> None:
        """Book ``count`` shipped queries at once (the batched replay path).

        ``touched_object_ids`` is the flat numpy array of every object id the
        batch's queries touch; membership is validated against the catalogue
        exactly as :meth:`answer_query` does per query.
        """
        import numpy

        for object_id in numpy.unique(touched_object_ids):
            if int(object_id) not in self._states:
                raise KeyError(f"query batch touches unknown object {int(object_id)}")
        self._queries_answered += count

    def ship_updates(self, object_id: int, version: int) -> Tuple[List[Update], float]:
        """Ship the outstanding updates for one object.

        Returns the updates (oldest first) and their total shipping cost.
        """
        updates = self.updates_since(object_id, version)
        return updates, sum(update.cost for update in updates)

    def load_object(self, object_id: int, timestamp: float) -> Tuple[ObjectSnapshot, float]:
        """Ship a full current snapshot of one object (object loading).

        Returns the snapshot and the load cost, which is the object's *current*
        size (base size plus all growth so far).
        """
        state = self._states[object_id]
        size = self.object_size(object_id)
        snapshot = ObjectSnapshot(
            object_id=object_id, version=state.version, size=size, as_of=timestamp
        )
        return snapshot, size

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counters for reports and tests."""
        return {
            "updates_received": float(self._updates_received),
            "queries_answered": float(self._queries_answered),
            "total_size": self.total_size,
            "object_count": float(len(self._catalog)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Repository(objects={len(self._catalog)}, "
            f"size={self.total_size:.1f}MB, updates={self._updates_received})"
        )
