"""Repository substrate: data objects, queries, updates and the server.

The Delta paper models a scientific repository as a set of spatially
partitioned *data objects* receiving a continuous stream of updates, queried
by read-only SQL-like queries that each touch a set of objects and carry a
tolerance for staleness.  This package provides those models plus an
in-memory server (:class:`repro.repository.server.Repository`) that stores
object contents, applies updates, versions objects, and can answer queries --
the substrate the simulated middleware cache talks to.
"""

from repro.repository.objects import DataObject, ObjectCatalog
from repro.repository.queries import Query
from repro.repository.server import Repository
from repro.repository.updates import Update

__all__ = ["DataObject", "ObjectCatalog", "Query", "Repository", "Update"]
