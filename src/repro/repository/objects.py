"""Data objects and object catalogues.

A *data object* in Delta is a spatial partition of the repository's primary
table (``PhotoObj`` in the SDSS): a contiguous region of the sky holding all
rows whose position falls inside it.  The decision framework only ever needs
an object's identifier, its size in bytes (which doubles as its network-load
cost) and, for workload generation, its sky region and row density.

:class:`ObjectCatalog` is the authoritative listing of all objects on the
server; both the repository and the cache policies share a single catalogue so
sizes and identifiers stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from repro._compat import SlottedFrozenPickle

#: Conversion helpers; costs in this library are expressed in megabytes (MB)
#: so the numbers stay human-readable at laptop scale.
GB = 1024.0
MB = 1.0


@dataclass(frozen=True, slots=True)
class DataObject(SlottedFrozenPickle):
    """A single cacheable data object (one spatial partition).

    Attributes
    ----------
    object_id:
        Integer identifier, unique within a catalogue (the paper numbers the
        68-object partitioning 1..68).
    size:
        Total size in MB.  This is also the object's *load cost*: loading it
        into the cache transfers the whole object.
    region_id:
        Identifier of the sky region (HTM trixel) this object corresponds to;
        ``None`` for synthetic catalogues built without a sky model.
    density:
        Relative row density of the region, used to scale update sizes (the
        paper sizes updates proportionally to the density of the object).
    level:
        HTM subdivision level the object was cut at, for provenance.
    """

    object_id: int
    size: float
    region_id: Optional[int] = None
    density: float = 1.0
    level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"object {self.object_id} has negative size {self.size!r}")
        if self.density < 0:
            raise ValueError(f"object {self.object_id} has negative density {self.density!r}")

    @property
    def load_cost(self) -> float:
        """Network traffic cost (MB) of loading this object into the cache."""
        return self.size


class ObjectCatalog:
    """An immutable-ish collection of :class:`DataObject` indexed by id.

    The catalogue is the shared vocabulary between the workload generators,
    the repository, the cache, and the decision algorithms.  It offers O(1)
    lookup by id plus convenience aggregates (total size, size vector).
    """

    __slots__ = ("_objects",)

    def __init__(self, objects: Iterable[DataObject]) -> None:
        self._objects: Dict[int, DataObject] = {}
        for obj in objects:
            if obj.object_id in self._objects:
                raise ValueError(f"duplicate object id {obj.object_id}")
            self._objects[obj.object_id] = obj
        if not self._objects:
            raise ValueError("an ObjectCatalog requires at least one object")

    # ------------------------------------------------------------------
    # Mapping-style access
    # ------------------------------------------------------------------
    def __getitem__(self, object_id: int) -> DataObject:
        return self._objects[object_id]

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __iter__(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def get(self, object_id: int) -> Optional[DataObject]:
        """Return the object with ``object_id`` or ``None``."""
        return self._objects.get(object_id)

    @property
    def object_ids(self) -> List[int]:
        """All object ids in ascending order."""
        return sorted(self._objects)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_size(self) -> float:
        """Combined size of every object (the 'server size'), in MB."""
        return sum(obj.size for obj in self._objects.values())

    def size_of(self, object_id: int) -> float:
        """Size (== load cost) of one object, in MB."""
        return self._objects[object_id].size

    def sizes(self) -> Dict[int, float]:
        """Mapping of object id to size."""
        return {object_id: obj.size for object_id, obj in self._objects.items()}

    def densities(self) -> Dict[int, float]:
        """Mapping of object id to relative density."""
        return {object_id: obj.density for object_id, obj in self._objects.items()}

    def largest(self, count: int = 1) -> List[DataObject]:
        """The ``count`` largest objects, descending by size."""
        return sorted(self._objects.values(), key=lambda obj: obj.size, reverse=True)[:count]

    def smallest(self, count: int = 1) -> List[DataObject]:
        """The ``count`` smallest objects, ascending by size."""
        return sorted(self._objects.values(), key=lambda obj: obj.size)[:count]

    def describe(self) -> Dict[str, float]:
        """Summary statistics used in reports and EXPERIMENTS.md."""
        sizes = sorted(obj.size for obj in self._objects.values())
        total = sum(sizes)
        return {
            "count": float(len(sizes)),
            "total_size": total,
            "min_size": sizes[0],
            "max_size": sizes[-1],
            "mean_size": total / len(sizes),
            "median_size": sizes[len(sizes) // 2],
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(count: int, size: float, level: Optional[int] = None) -> "ObjectCatalog":
        """A catalogue of ``count`` equally sized objects (ids 1..count)."""
        if count <= 0:
            raise ValueError("count must be positive")
        return ObjectCatalog(
            DataObject(object_id=i, size=size, density=1.0, level=level)
            for i in range(1, count + 1)
        )

    @staticmethod
    def from_sizes(sizes: Mapping[int, float]) -> "ObjectCatalog":
        """Build a catalogue directly from an id -> size mapping."""
        return ObjectCatalog(
            DataObject(object_id=object_id, size=size) for object_id, size in sizes.items()
        )

    @staticmethod
    def heavy_tailed(
        count: int,
        total_size: float,
        alpha: float = 1.1,
        min_size: Optional[float] = None,
        seed: int = 7,
        level: Optional[int] = None,
    ) -> "ObjectCatalog":
        """A catalogue with a heavy-tailed (Zipf-like) size distribution.

        The paper reports object sizes between 50 MB and 90 GB for the
        68-object partitioning of an ~800 GB table: a few large objects and a
        long tail of small ones.  We draw sizes proportional to a Zipf law of
        exponent ``alpha`` (shuffled so size is not correlated with id) and
        rescale so the catalogue totals ``total_size``.

        Parameters
        ----------
        count:
            Number of objects.
        total_size:
            Desired total size of the catalogue, in MB.
        alpha:
            Zipf exponent; larger means more skew.
        min_size:
            Optional floor for the smallest object, applied before rescaling.
        seed:
            Seed for the shuffle, so catalogues are reproducible.
        level:
            Optional HTM level recorded on every object.
        """
        import random

        if count <= 0:
            raise ValueError("count must be positive")
        if total_size <= 0:
            raise ValueError("total_size must be positive")
        raw = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
        if min_size is not None:
            floor = min_size * sum(raw) / total_size
            raw = [max(value, floor) for value in raw]
        rng = random.Random(seed)
        rng.shuffle(raw)
        scale = total_size / sum(raw)
        densities = [value * scale for value in raw]
        mean = total_size / count
        return ObjectCatalog(
            DataObject(
                object_id=i + 1,
                size=densities[i],
                density=densities[i] / mean,
                level=level,
            )
            for i in range(count)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjectCatalog(count={len(self)}, total_size={self.total_size:.1f}MB)"
