"""SDSS-flavoured catalogue builders.

The paper's server is the SDSS ``PhotoObj`` table (~1 TB; ~800 GB of it falls
in the 68 queried partitions), cut into spatial data objects by the
hierarchical triangular mesh at different levels.  Running at that scale on a
laptop is pointless -- the decision algorithms only see relative costs -- so
the builders here produce catalogues whose *shape* matches the paper
(object-count per level, heavy-tailed sizes spanning roughly three orders of
magnitude, 50 MB .. 90 GB at level "68") at a configurable scale factor.

``DEFAULT_SCALE`` of ``1/1024`` maps the paper's ~800 GB server to ~800 MB of
simulated bytes, which keeps full experiment sweeps in the seconds-to-minutes
range while preserving every ratio the evaluation reports.
"""

from __future__ import annotations

from typing import Dict

from repro.repository.objects import GB, ObjectCatalog

#: Object-set sizes used in the granularity experiment (Figure 8b).
PARTITION_LEVELS = (10, 20, 68, 91, 134, 285, 532)

#: The paper's default partitioning.
DEFAULT_OBJECT_COUNT = 68

#: Total size of the queried portion of PhotoObj, in MB (~800 GB).
PAPER_SERVER_SIZE_MB = 800.0 * GB

#: Smallest object in the 68-object partitioning, in MB (~50 MB).
PAPER_MIN_OBJECT_SIZE_MB = 50.0

#: Default down-scaling applied to all byte figures for laptop-scale runs.
DEFAULT_SCALE = 1.0 / 1024.0


def sdss_catalog(
    object_count: int = DEFAULT_OBJECT_COUNT,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    skew: float = 1.1,
) -> ObjectCatalog:
    """Build an SDSS ``PhotoObj``-shaped catalogue.

    Parameters
    ----------
    object_count:
        Number of spatial partitions (one of :data:`PARTITION_LEVELS` for the
        paper's experiments, but any positive count works).
    scale:
        Multiplier applied to the paper's byte figures.  ``1.0`` reproduces
        the full 800 GB server; the default shrinks everything by 1024x.
    seed:
        Seed for the (reproducible) size shuffle.
    skew:
        Zipf exponent controlling how heavy-tailed object sizes are.
    """
    if object_count <= 0:
        raise ValueError("object_count must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    total = PAPER_SERVER_SIZE_MB * scale
    # The minimum object size shrinks with finer partitionings; at the paper's
    # 68-object level it is ~50 MB out of ~800 GB.
    min_size = PAPER_MIN_OBJECT_SIZE_MB * scale * (DEFAULT_OBJECT_COUNT / object_count)
    return ObjectCatalog.heavy_tailed(
        count=object_count,
        total_size=total,
        alpha=skew,
        min_size=min_size,
        seed=seed,
        level=object_count,
    )


def granularity_catalogs(
    scale: float = DEFAULT_SCALE, seed: int = 7
) -> Dict[int, ObjectCatalog]:
    """One catalogue per partitioning level used in Figure 8(b).

    Every catalogue covers the same total data (the whole sky), just cut into
    a different number of objects.
    """
    return {
        count: sdss_catalog(object_count=count, scale=scale, seed=seed)
        for count in PARTITION_LEVELS
    }
