"""Update specifications.

Updates in Delta are predominantly data *inserts* produced by the telescope
pipeline.  Each update affects exactly one data object (Section 3 of the
paper) and carries a network shipping cost proportional to the number of bytes
inserted.  Updates are the unit of invalidation: when an update arrives at the
server for an object that is cached, the cached copy becomes stale until that
update is shipped (or the object is reloaded).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro._compat import SlottedFrozenPickle


class UpdateKind:
    """Enumeration of update kinds.

    Scientific repositories are append-mostly; the decision framework does not
    care which kind an update is (Section 4, Discussion), but the repository
    substrate applies them differently.
    """

    __slots__ = ()

    INSERT = "insert"
    MODIFY = "modify"
    DELETE = "delete"

    ALL = (INSERT, MODIFY, DELETE)


@dataclass(frozen=True, slots=True)
class Update(SlottedFrozenPickle):
    """A single update event.

    Attributes
    ----------
    update_id:
        Monotonically increasing identifier, unique within a trace.
    object_id:
        The single data object this update affects (``o(u)`` in the paper).
    cost:
        Network traffic cost (MB) of shipping this update to the cache --
        proportional to the size of the inserted/modified data.
    timestamp:
        Event-sequence time at which the update arrives at the server.
    kind:
        One of :class:`UpdateKind`; defaults to ``insert``.
    rows:
        Number of rows inserted/affected (bookkeeping for the repository
        substrate; not used by the decision algorithms).
    """

    update_id: int
    object_id: int
    cost: float
    timestamp: float
    kind: str = UpdateKind.INSERT
    rows: int = 0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"update {self.update_id} has negative cost {self.cost!r}")
        if self.kind not in UpdateKind.ALL:
            raise ValueError(f"update {self.update_id} has unknown kind {self.kind!r}")

    @property
    def shipping_cost(self) -> float:
        """Alias for :attr:`cost` matching the paper's ``nu(u)`` notation."""
        return self.cost


class UpdateIdAllocator:
    """Hands out unique update identifiers for trace generators."""

    __slots__ = ("_counter",)

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        """Return the next unused update id."""
        return next(self._counter)

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - convenience
        return self._counter
