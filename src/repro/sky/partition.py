"""Sky partitioning: grouping trixels into data objects.

The paper's data objects are roughly equi-area sky partitions obtained by
choosing an HTM level and (for the default experiments) keeping 68 of them --
the partitions that actually receive queries.  Figure 8(b) varies the object
count across 10/20/68/91/134/285/532.  Those counts are not powers of four,
so they cannot all be literal HTM levels; the paper groups trixels into the
requested number of partitions.  :class:`SkyPartition` does the same: it takes
the finest convenient mesh level, orders trixels by name (which keeps spatial
locality, since sibling trixels share prefixes) and assigns them round-robin
free / contiguously to the requested number of objects.

The partition also carries a *density model*: a smooth function over the sky
(a sum of Gaussian bumps representing the survey's deep fields) that gives
each object a relative density.  Object sizes are proportional to density so
the resulting catalogue has the heavy-tailed size distribution the paper
reports, and update sizes can be scaled by the density of the object they hit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.repository.objects import DataObject, ObjectCatalog
from repro.sky.htm import HTMMesh, Trixel
from repro.sky.regions import CircularRegion, SkyPoint


@dataclass(frozen=True)
class DensityBump:
    """One Gaussian density bump on the sky (a 'deep field')."""

    center: SkyPoint
    #: Angular standard deviation in degrees.
    sigma: float
    #: Peak multiplier added on top of the uniform background.
    amplitude: float

    def value_at(self, point: SkyPoint) -> float:
        """Density contribution of this bump at ``point``."""
        distance = self.center.angular_distance(point)
        return self.amplitude * math.exp(-0.5 * (distance / self.sigma) ** 2)


class SkyDensityModel:
    """Background density plus a handful of Gaussian bumps."""

    def __init__(self, bumps: Sequence[DensityBump], background: float = 1.0) -> None:
        if background <= 0:
            raise ValueError("background density must be positive")
        self._bumps = list(bumps)
        self._background = background

    def value_at(self, point: SkyPoint) -> float:
        """Relative density at a sky point (>= background)."""
        return self._background + sum(bump.value_at(point) for bump in self._bumps)

    @staticmethod
    def survey_default(seed: int = 13, bump_count: int = 6) -> "SkyDensityModel":
        """A reproducible default density model with a few deep fields."""
        rng = np.random.default_rng(seed)
        bumps = []
        for _ in range(bump_count):
            z = rng.uniform(-1.0, 1.0)
            center = SkyPoint(ra=float(rng.uniform(0, 360)), dec=math.degrees(math.asin(z)))
            bumps.append(
                DensityBump(
                    center=center,
                    sigma=float(rng.uniform(8.0, 25.0)),
                    amplitude=float(rng.uniform(2.0, 12.0)),
                )
            )
        return SkyDensityModel(bumps=bumps, background=1.0)


class SkyPartition:
    """A partitioning of the sky into a fixed number of data objects.

    Parameters
    ----------
    object_count:
        Number of data objects to cut the sky into.
    mesh_level:
        HTM level used as the underlying tiling; must produce at least
        ``object_count`` trixels.  Defaults to the smallest adequate level.
    density:
        Optional density model; defaults to
        :meth:`SkyDensityModel.survey_default`.
    """

    def __init__(
        self,
        object_count: int,
        mesh_level: Optional[int] = None,
        density: Optional[SkyDensityModel] = None,
    ) -> None:
        if object_count <= 0:
            raise ValueError("object_count must be positive")
        if mesh_level is None:
            mesh_level = 0
            while HTMMesh.trixel_count(mesh_level) < object_count:
                mesh_level += 1
        if HTMMesh.trixel_count(mesh_level) < object_count:
            raise ValueError(
                f"mesh level {mesh_level} has only {HTMMesh.trixel_count(mesh_level)} trixels, "
                f"fewer than the requested {object_count} objects"
            )
        self._object_count = object_count
        self._mesh = HTMMesh(mesh_level)
        self._density = density or SkyDensityModel.survey_default()
        self._assignment: Dict[str, int] = {}
        self._build_assignment()

    def _build_assignment(self) -> None:
        """Assign trixels to objects contiguously in name order.

        Name order groups sibling trixels together (they share name prefixes),
        so each object is a spatially compact group of trixels.
        """
        trixels = self._mesh.trixels()
        total = len(trixels)
        base, remainder = divmod(total, self._object_count)
        index = 0
        for object_index in range(self._object_count):
            span = base + (1 if object_index < remainder else 0)
            for _ in range(span):
                self._assignment[trixels[index].name] = object_index + 1
                index += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def object_count(self) -> int:
        """Number of objects in the partition."""
        return self._object_count

    @property
    def mesh(self) -> HTMMesh:
        """The underlying trixel mesh."""
        return self._mesh

    @property
    def density_model(self) -> SkyDensityModel:
        """The density model used to weight objects."""
        return self._density

    def object_of_point(self, point: SkyPoint) -> int:
        """The object id containing a sky point."""
        trixel = self._mesh.locate(point)
        return self._assignment[trixel.name]

    def objects_of_region(self, region: CircularRegion) -> List[int]:
        """Sorted object ids overlapping a circular region."""
        objects = {
            self._assignment[trixel.name] for trixel in self._mesh.overlapping(region)
        }
        return sorted(objects)

    def trixels_of_object(self, object_id: int) -> List[Trixel]:
        """The trixels making up one object."""
        return [
            self._mesh.by_name(name)
            for name, assigned in self._assignment.items()
            if assigned == object_id
        ]

    def object_center(self, object_id: int) -> SkyPoint:
        """Approximate center of an object (centroid of its trixel centers)."""
        trixels = self.trixels_of_object(object_id)
        if not trixels:
            raise KeyError(f"object {object_id} has no trixels")
        xs = ys = zs = 0.0
        for trixel in trixels:
            x, y, z = trixel.center.to_cartesian()
            xs, ys, zs = xs + x, ys + y, zs + z
        return SkyPoint.from_cartesian(xs, ys, zs)

    # ------------------------------------------------------------------
    # Density / catalogue construction
    # ------------------------------------------------------------------
    def object_densities(self) -> Dict[int, float]:
        """Relative density of each object (mean density over its trixels)."""
        densities: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for name, object_id in self._assignment.items():
            trixel = self._mesh.by_name(name)
            densities[object_id] = densities.get(object_id, 0.0) + self._density.value_at(
                trixel.center
            )
            counts[object_id] = counts.get(object_id, 0) + 1
        return {
            object_id: densities[object_id] / counts[object_id] for object_id in densities
        }

    def build_catalog(self, total_size: float, min_size: float = 0.0) -> ObjectCatalog:
        """Build an :class:`ObjectCatalog` with sizes proportional to density.

        Parameters
        ----------
        total_size:
            Total catalogue size in MB.
        min_size:
            Floor applied to every object before rescaling.
        """
        densities = self.object_densities()
        raw = {oid: max(value, 1e-9) for oid, value in densities.items()}
        if min_size > 0:
            floor = min_size * sum(raw.values()) / total_size
            raw = {oid: max(value, floor) for oid, value in raw.items()}
        scale = total_size / sum(raw.values())
        mean = total_size / len(raw)
        return ObjectCatalog(
            DataObject(
                object_id=oid,
                size=value * scale,
                region_id=oid,
                density=value * scale / mean,
                level=self._object_count,
            )
            for oid, value in sorted(raw.items())
        )


def build_partition(
    object_count: int,
    density_seed: int = 13,
    mesh_level: Optional[int] = None,
) -> SkyPartition:
    """Convenience constructor with a seeded default density model."""
    return SkyPartition(
        object_count=object_count,
        mesh_level=mesh_level,
        density=SkyDensityModel.survey_default(seed=density_seed),
    )


def contiguous_sky_slices(
    object_ids: Sequence[int], slice_count: int
) -> List[List[int]]:
    """Split object ids into ``slice_count`` contiguous sky slices.

    Object ids are assigned contiguously over the sky (trixels are grouped in
    name order, and names encode spatial position), so contiguous id ranges
    are spatially compact sky regions.  Used by the multi-cache topology to
    give each site its own region of the sky; sizes differ by at most one
    object, and slices are deterministic for a given input order.
    """
    if slice_count <= 0:
        raise ValueError("slice_count must be positive")
    ids = sorted(object_ids)
    if len(ids) < slice_count:
        raise ValueError(
            f"cannot split {len(ids)} objects into {slice_count} slices"
        )
    base, remainder = divmod(len(ids), slice_count)
    slices: List[List[int]] = []
    index = 0
    for slice_index in range(slice_count):
        span = base + (1 if slice_index < remainder else 0)
        slices.append(ids[index : index + span])
        index += span
    return slices
