"""A self-contained Hierarchical Triangular Mesh (HTM).

The HTM (Kunszt, Szalay & Thakar 2001) recursively subdivides the celestial
sphere into spherical triangles ("trixels").  Level 0 consists of the eight
faces of an octahedron inscribed in the sphere; each level splits every trixel
into four children by connecting the midpoints of its edges.  SDSS assigns
every row of ``PhotoObj`` to the trixel containing its position, and Delta's
data objects are (groups of) trixels at a chosen level.

This implementation supports:

* generating all trixels at a level,
* locating the trixel containing a sky point (top-down descent),
* testing trixel / circular-region overlap (conservative, via corner and
  center tests plus angular-size bounds), which is what maps a query's sky
  region to the data objects it touches.

The geometry is deliberately simple -- it does not implement the full HTM
ranges/bitlist machinery -- but the identifiers follow the standard HTM naming
(N0..N3 / S0..S3 roots, two bits appended per level).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.sky.regions import CircularRegion, SkyPoint

Vector = Tuple[float, float, float]


def _normalize(vec: Sequence[float]) -> Vector:
    x, y, z = vec
    norm = math.sqrt(x * x + y * y + z * z)
    return (x / norm, y / norm, z / norm)


def _midpoint(a: Vector, b: Vector) -> Vector:
    return _normalize((a[0] + b[0], a[1] + b[1], a[2] + b[2]))


#: The six vertices of the octahedron that seeds the mesh.
_OCTAHEDRON_VERTICES: Dict[str, Vector] = {
    "v0": (0.0, 0.0, 1.0),
    "v1": (1.0, 0.0, 0.0),
    "v2": (0.0, 1.0, 0.0),
    "v3": (-1.0, 0.0, 0.0),
    "v4": (0.0, -1.0, 0.0),
    "v5": (0.0, 0.0, -1.0),
}

#: The eight root trixels (name, corner vertex keys) following HTM convention.
_ROOT_TRIXELS: List[Tuple[str, Tuple[str, str, str]]] = [
    ("S0", ("v1", "v5", "v2")),
    ("S1", ("v2", "v5", "v3")),
    ("S2", ("v3", "v5", "v4")),
    ("S3", ("v4", "v5", "v1")),
    ("N0", ("v1", "v0", "v4")),
    ("N1", ("v4", "v0", "v3")),
    ("N2", ("v3", "v0", "v2")),
    ("N3", ("v2", "v0", "v1")),
]


@dataclass(frozen=True)
class Trixel:
    """One spherical triangle of the mesh."""

    name: str
    level: int
    corners: Tuple[Vector, Vector, Vector]

    @property
    def center(self) -> SkyPoint:
        """The trixel's centroid projected back onto the sphere."""
        cx = sum(c[0] for c in self.corners)
        cy = sum(c[1] for c in self.corners)
        cz = sum(c[2] for c in self.corners)
        return SkyPoint.from_cartesian(cx, cy, cz)

    @property
    def angular_radius(self) -> float:
        """Angular distance (degrees) from the centroid to the farthest corner."""
        center = self.center
        return max(
            center.angular_distance(SkyPoint.from_cartesian(*corner)) for corner in self.corners
        )

    def children(self) -> List["Trixel"]:
        """The four child trixels one level down."""
        a, b, c = self.corners
        ab = _midpoint(a, b)
        bc = _midpoint(b, c)
        ca = _midpoint(c, a)
        next_level = self.level + 1
        return [
            Trixel(name=self.name + "0", level=next_level, corners=(a, ab, ca)),
            Trixel(name=self.name + "1", level=next_level, corners=(b, bc, ab)),
            Trixel(name=self.name + "2", level=next_level, corners=(c, ca, bc)),
            Trixel(name=self.name + "3", level=next_level, corners=(ab, bc, ca)),
        ]

    def contains(self, point: SkyPoint) -> bool:
        """Whether the point lies inside the spherical triangle.

        A point is inside iff it is on the positive side of all three planes
        through the origin and consecutive corner pairs (corners are ordered
        counter-clockwise as seen from outside the sphere).
        """
        p = np.array(point.to_cartesian())
        a, b, c = (np.array(v) for v in self.corners)
        tolerance = -1e-12
        return (
            float(np.dot(np.cross(a, b), p)) >= tolerance
            and float(np.dot(np.cross(b, c), p)) >= tolerance
            and float(np.dot(np.cross(c, a), p)) >= tolerance
        )

    def overlaps(self, region: CircularRegion) -> bool:
        """Conservative overlap test against a circular region.

        Returns ``True`` when the region's center is inside the trixel, any
        corner of the trixel is inside the region, or the angular distance
        between centers is below the sum of the two angular radii (a
        bounding-cap test).  The test can over-report near trixel edges, which
        only makes query footprints slightly larger -- harmless for workload
        generation.
        """
        if self.contains(region.center):
            return True
        for corner in self.corners:
            if region.contains(SkyPoint.from_cartesian(*corner)):
                return True
        center_distance = self.center.angular_distance(region.center)
        return center_distance <= self.angular_radius + region.radius


class HTMMesh:
    """All trixels of the mesh at a fixed subdivision level."""

    def __init__(self, level: int) -> None:
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        if level > 8:
            raise ValueError("levels above 8 generate >500k trixels; not supported")
        self._level = level
        self._trixels = self._build(level)
        self._by_name = {trixel.name: trixel for trixel in self._trixels}

    @staticmethod
    def _build(level: int) -> List[Trixel]:
        current = [
            Trixel(
                name=name,
                level=0,
                corners=tuple(_OCTAHEDRON_VERTICES[key] for key in corner_keys),
            )
            for name, corner_keys in _ROOT_TRIXELS
        ]
        for _ in range(level):
            current = [child for trixel in current for child in trixel.children()]
        return current

    @property
    def level(self) -> int:
        """The subdivision level of this mesh."""
        return self._level

    def __len__(self) -> int:
        return len(self._trixels)

    def __iter__(self) -> Iterator[Trixel]:
        return iter(self._trixels)

    def trixels(self) -> List[Trixel]:
        """All trixels at this level in deterministic (name) order."""
        return sorted(self._trixels, key=lambda t: t.name)

    def by_name(self, name: str) -> Trixel:
        """Look up a trixel by its HTM name."""
        return self._by_name[name]

    def locate(self, point: SkyPoint) -> Trixel:
        """Return the trixel containing ``point``.

        Descends from the root trixels; ties on shared edges resolve to the
        first matching trixel in name order, which keeps the mapping
        deterministic.
        """
        roots = [
            Trixel(
                name=name,
                level=0,
                corners=tuple(_OCTAHEDRON_VERTICES[key] for key in corner_keys),
            )
            for name, corner_keys in _ROOT_TRIXELS
        ]
        current: Optional[Trixel] = None
        for root in roots:
            if root.contains(point):
                current = root
                break
        if current is None:
            # Numerical corner case exactly on an edge; pick the nearest root.
            current = min(roots, key=lambda t: t.center.angular_distance(point))
        for _ in range(self._level):
            children = current.children()
            chosen = None
            for child in children:
                if child.contains(point):
                    chosen = child
                    break
            if chosen is None:
                chosen = min(children, key=lambda t: t.center.angular_distance(point))
            current = chosen
        return self._by_name.get(current.name, current)

    def overlapping(self, region: CircularRegion) -> List[Trixel]:
        """All trixels at this level overlapping ``region``."""
        return [trixel for trixel in self._trixels if trixel.overlaps(region)]

    @staticmethod
    def trixel_count(level: int) -> int:
        """Number of trixels at a level (8 * 4**level)."""
        return 8 * (4 ** level)
