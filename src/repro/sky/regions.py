"""Sky points and query regions.

Minimal spherical geometry for the workload substrate: points on the unit
sphere given as (right ascension, declination) in degrees, circular regions
(cone searches, the dominant SDSS spatial query), and great-circle scans
(how the telescope sweeps the sky when collecting new data, which is what
clusters updates spatially).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class SkyPoint:
    """A point on the celestial sphere.

    Attributes
    ----------
    ra:
        Right ascension in degrees, in ``[0, 360)``.
    dec:
        Declination in degrees, in ``[-90, 90]``.
    """

    ra: float
    dec: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.dec <= 90.0:
            raise ValueError(f"declination {self.dec!r} outside [-90, 90]")
        object.__setattr__(self, "ra", self.ra % 360.0)

    def to_cartesian(self) -> Tuple[float, float, float]:
        """Unit vector on the sphere corresponding to this point."""
        ra_rad = math.radians(self.ra)
        dec_rad = math.radians(self.dec)
        return (
            math.cos(dec_rad) * math.cos(ra_rad),
            math.cos(dec_rad) * math.sin(ra_rad),
            math.sin(dec_rad),
        )

    def angular_distance(self, other: "SkyPoint") -> float:
        """Great-circle distance to ``other`` in degrees."""
        x1, y1, z1 = self.to_cartesian()
        x2, y2, z2 = other.to_cartesian()
        dot = max(-1.0, min(1.0, x1 * x2 + y1 * y2 + z1 * z2))
        return math.degrees(math.acos(dot))

    @staticmethod
    def from_cartesian(x: float, y: float, z: float) -> "SkyPoint":
        """Point corresponding to a (not necessarily unit) vector."""
        norm = math.sqrt(x * x + y * y + z * z)
        if norm == 0:
            raise ValueError("zero vector has no direction")
        dec = math.degrees(math.asin(z / norm))
        ra = math.degrees(math.atan2(y, x)) % 360.0
        return SkyPoint(ra=ra, dec=dec)


@dataclass(frozen=True)
class CircularRegion:
    """A cone search region: all points within ``radius`` degrees of ``center``."""

    center: SkyPoint
    radius: float

    def __post_init__(self) -> None:
        if not 0 < self.radius <= 180.0:
            raise ValueError(f"radius {self.radius!r} must be in (0, 180]")

    def contains(self, point: SkyPoint) -> bool:
        """Whether ``point`` falls inside the region."""
        return self.center.angular_distance(point) <= self.radius

    def sample_points(self, count: int, rng: np.random.Generator) -> List[SkyPoint]:
        """Sample ``count`` points approximately uniformly inside the region.

        Uses rejection-free sampling in a cap: draw the polar angle from the
        correct cap distribution and rotate towards the center.
        """
        if count <= 0:
            return []
        points: List[SkyPoint] = []
        cos_radius = math.cos(math.radians(self.radius))
        cx, cy, cz = self.center.to_cartesian()
        # Build an orthonormal basis (u, v) perpendicular to the center vector.
        if abs(cz) < 0.9:
            ux, uy, uz = np.cross([cx, cy, cz], [0.0, 0.0, 1.0])
        else:
            ux, uy, uz = np.cross([cx, cy, cz], [1.0, 0.0, 0.0])
        norm_u = math.sqrt(ux * ux + uy * uy + uz * uz)
        ux, uy, uz = ux / norm_u, uy / norm_u, uz / norm_u
        vx, vy, vz = np.cross([cx, cy, cz], [ux, uy, uz])
        for _ in range(count):
            cos_theta = rng.uniform(cos_radius, 1.0)
            sin_theta = math.sqrt(max(0.0, 1.0 - cos_theta * cos_theta))
            phi = rng.uniform(0.0, 2.0 * math.pi)
            x = (
                cos_theta * cx
                + sin_theta * math.cos(phi) * ux
                + sin_theta * math.sin(phi) * vx
            )
            y = (
                cos_theta * cy
                + sin_theta * math.cos(phi) * uy
                + sin_theta * math.sin(phi) * vy
            )
            z = (
                cos_theta * cz
                + sin_theta * math.cos(phi) * uz
                + sin_theta * math.sin(phi) * vz
            )
            points.append(SkyPoint.from_cartesian(x, y, z))
        return points


@dataclass(frozen=True)
class GreatCircleScan:
    """A telescope scan along a great circle.

    The survey telescopes of the paper (Pan-STARRS, LSST) collect data by
    sweeping the sky along great circles; updates therefore arrive clustered
    along such scans.  A scan is parameterised by the pole of its great circle
    and a phase range; :meth:`points` walks along the circle.
    """

    pole: SkyPoint
    start_phase: float = 0.0
    end_phase: float = 360.0

    def points(self, count: int) -> List[SkyPoint]:
        """``count`` evenly spaced points along the scan."""
        if count <= 0:
            return []
        px, py, pz = self.pole.to_cartesian()
        # Basis perpendicular to the pole.
        if abs(pz) < 0.9:
            ref = np.array([0.0, 0.0, 1.0])
        else:
            ref = np.array([1.0, 0.0, 0.0])
        pole_vec = np.array([px, py, pz])
        u = np.cross(pole_vec, ref)
        u = u / np.linalg.norm(u)
        v = np.cross(pole_vec, u)
        phases = np.linspace(self.start_phase, self.end_phase, count, endpoint=False)
        result = []
        for phase in phases:
            rad = math.radians(float(phase))
            vec = math.cos(rad) * u + math.sin(rad) * v
            result.append(SkyPoint.from_cartesian(float(vec[0]), float(vec[1]), float(vec[2])))
        return result


def random_sky_point(rng: np.random.Generator) -> SkyPoint:
    """A point drawn uniformly over the sphere."""
    z = rng.uniform(-1.0, 1.0)
    ra = rng.uniform(0.0, 360.0)
    dec = math.degrees(math.asin(z))
    return SkyPoint(ra=ra, dec=dec)
