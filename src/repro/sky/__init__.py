"""Sky / spatial substrate.

The SDSS stores sky positions and partitions its primary table with the
Hierarchical Triangular Mesh (HTM), a recursive subdivision of the celestial
sphere into spherical triangles ("trixels").  Delta's data objects are groups
of trixels at a chosen subdivision level; queries specify sky regions which
are mapped to the objects they overlap.

This package implements a self-contained HTM (:mod:`repro.sky.htm`), simple
sky-region geometry (:mod:`repro.sky.regions`) and the level-to-object-set
partitioner used by the granularity experiment
(:mod:`repro.sky.partition`).
"""

from repro.sky.htm import HTMMesh, Trixel
from repro.sky.partition import SkyPartition, build_partition, contiguous_sky_slices
from repro.sky.regions import CircularRegion, GreatCircleScan, SkyPoint

__all__ = [
    "HTMMesh",
    "Trixel",
    "SkyPartition",
    "build_partition",
    "contiguous_sky_slices",
    "CircularRegion",
    "GreatCircleScan",
    "SkyPoint",
]
