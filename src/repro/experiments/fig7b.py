"""Experiment E2 -- cumulative traffic cost (Figure 7b).

Figure 7(b) plots cumulative network traffic along the (post-warm-up) event
sequence for the two algorithms (VCover, Benefit) and the three yardsticks
(NoCache, Replica, SOptimal) with a cache 30 % of the server size.  The
paper's qualitative findings, which this experiment regenerates:

* VCover ends at roughly half of NoCache's traffic,
* VCover beats Benefit, which trails closer to NoCache,
* VCover beats Replica by roughly 1.5x,
* VCover tracks SOptimal, ending within a few tens of percent of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.benefit import BenefitConfig
from repro.core.vcover import VCoverConfig
from repro.experiments.config import ExperimentConfig, Scenario
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, InlineScenario, SweepPoint

#: Policy order used in the paper's legend.
POLICY_ORDER = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass
class CumulativeTrafficResult:
    """The regenerated data behind Figure 7(b)."""

    comparison: ComparisonResult
    scenario: Scenario

    def final_costs(self) -> Dict[str, float]:
        """Final measured traffic per policy (the curves' endpoints)."""
        return {name: self.comparison.traffic_of(name) for name in self.comparison.runs}

    def series(self, policy: str) -> List[Tuple[int, float]]:
        """(event_index, cumulative traffic) samples for one policy's curve."""
        return self.comparison[policy].time_series.as_rows()

    def headline_ratios(self) -> Dict[str, float]:
        """The ratios the paper quotes in Section 6.2."""
        return self.comparison.summary()


def run(
    config: Optional[ExperimentConfig] = None,
    policies: Sequence[str] = POLICY_ORDER,
    jobs: int = 1,
) -> CumulativeTrafficResult:
    """Run the Figure 7(b) comparison on the default (or given) scenario.

    With ``jobs > 1`` the per-policy runs execute in parallel worker
    processes (results are identical to a serial run).
    """
    return execute(
        "fig7b", config=config, knobs={"policies": tuple(policies)}, jobs=jobs
    )


def format_table(result: CumulativeTrafficResult) -> str:
    """The figure's endpoint values as a fixed-width table."""
    lines = ["Figure 7(b) -- cumulative traffic cost (measured window)"]
    lines.append(result.comparison.as_table())
    ratios = result.headline_ratios()
    for key in ("nocache_over_vcover", "benefit_over_vcover", "replica_over_vcover",
                "vcover_over_soptimal"):
        if key in ratios:
            lines.append(f"{key:>24}: {ratios[key]:.2f}")
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> CumulativeTrafficResult:
    return CumulativeTrafficResult(
        comparison=context.sweep.comparison(),
        scenario=context.extras["scenario"],
    )


@register_experiment(
    name="fig7b",
    title="Cumulative traffic cost of every policy",
    paper_ref="Figure 7(b)",
    description=(
        "Replays the default workload against the two algorithms and three "
        "yardsticks at the paper's 30% cache, regenerating the cumulative "
        "traffic curves and their endpoint ratios."
    ),
    knobs={"policies": POLICY_ORDER},
    summarise=_summarise,
    format_result=format_table,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    scenario = ScenarioSpec(config).build()
    specs = default_policy_specs(
        vcover_config=VCoverConfig(),
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=knobs["policies"],
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    points = tuple(
        SweepPoint(
            key=spec.name,
            spec=spec,
            cache_fraction=config.cache_fraction,
            engine=engine,
            seed=config.seed,
        )
        for spec in specs
    )
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: InlineScenario(scenario.catalog, scenario.trace)},
        context={"scenario": scenario},
    )
