"""Shared experiment configuration and the standard scenario builder.

All experiments replay variations of the same scenario the paper's
evaluation uses: an SDSS-shaped object catalogue, a query trace with evolving
(spatially contiguous) hotspots, an update trace clustered along survey
scans in a different part of the sky, interleaved 1:1, with a cache that is a
fixed fraction of the server.  :func:`build_scenario` builds all of that from
one :class:`ExperimentConfig` so that every experiment and every benchmark is
driven by the same, explicitly documented knobs.

Scale note: the paper replays ~500k events against a ~800 GB server.  A pure
Python reproduction replays a proportionally smaller trace against a
proportionally smaller server (see ``DESIGN.md``); the default sizes below
keep a full five-policy comparison in the seconds range while preserving the
ratios the paper reports.  Benchmarks scale the event counts up.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, replace
from typing import List, Optional, Tuple

from repro.repository.catalog import DEFAULT_SCALE, PAPER_SERVER_SIZE_MB, sdss_catalog
from repro.repository.objects import ObjectCatalog
from repro.workload.mixer import interleave
from repro.workload.scenarios import (
    CacheAdversaryStream,
    DiurnalStream,
    FlashCrowdStream,
    ScenarioModelStream,
    UpdateStormStream,
)
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.stream import EvolvingTraceStream
from repro.workload.trace import Trace, TraceStream
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig

#: The workload models build_scenario/build_scenario_stream can produce.
WORKLOAD_MODELS = (
    "evolving",
    "flash_crowd",
    "diurnal",
    "update_storm",
    "cache_adversary",
)


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    The defaults reproduce the paper's default setup at laptop scale:
    68 data objects, a cache 30 % of the server, equal numbers of query and
    update events, query traffic roughly equal to update traffic in bytes,
    and a warm-up period of cheap queries at the head of the trace.
    """

    #: Number of spatial data objects (the paper's default partitioning).
    object_count: int = 68
    #: Byte-scale factor relative to the paper's ~800 GB server.
    scale: float = DEFAULT_SCALE
    #: Number of query events.
    query_count: int = 6000
    #: Number of update events.
    update_count: int = 6000
    #: Cache capacity as a fraction of the server size (paper default 0.3).
    cache_fraction: float = 0.3
    #: Total query result traffic as a fraction of the server size.  The
    #: paper's trace moves ~300 GB of query results against an ~800 GB server
    #: over ~500k events; our default trace is ~40x shorter, so the fraction
    #: is raised to preserve the per-object amortisation ratio (query bytes a
    #: hot object attracts during its hot period relative to its load cost) --
    #: the quantity that actually drives every policy's behaviour.  See
    #: DESIGN.md, "what we simulate".
    query_traffic_fraction: float = 1.5
    #: Total update traffic as a fraction of the server size; kept equal to
    #: the query traffic so NoCache and Replica stay comparable, as in the
    #: paper's default workload (Figure 8a at 250k updates).
    update_traffic_fraction: float = 1.5
    #: Fraction of the trace considered warm-up (cheap queries, excluded from
    #: measured traffic exactly as the paper excludes its warm-up period).
    warmup_fraction: float = 0.2
    #: Benefit window size (events), the paper's default.
    benefit_window: int = 1000
    #: Events between cumulative-traffic samples.
    sample_every: int = 500
    #: Base RNG seed; derived seeds are offsets from it.
    seed: int = 7

    # Query workload shape.
    #: Zipf skew of hotspot access inside focus blocks (shared by the
    #: evolving hotspot model and every scenario-diversity model; the trace
    #: ingestion calibration pass fits this to real logs).
    zipf_exponent: float = 1.2
    hotspot_focus_size: int = 8
    hotspot_phase_length: int = 2000
    hotspot_drift: float = 0.15
    hotspot_focus_probability: float = 0.85
    flare_probability: float = 0.2
    flare_phase_length: int = 60
    flare_focus_size: int = 4
    flare_cost_factor: float = 0.5
    background_cost_factor: float = 0.3
    tolerant_fraction: float = 0.2
    tolerance_window: float = 50.0

    # Update workload shape.
    scan_width: int = 6
    scan_length: int = 250
    scan_probability: float = 0.7
    update_region_fraction: float = 0.35

    # Scenario-diversity workload model (see repro.workload.scenarios and
    # docs/workloads.md).  "evolving" is the paper's default workload; the
    # other models reuse the knobs below and ignore the hotspot/scan shape
    # knobs above.
    workload_model: str = "evolving"
    # Flash-crowd model: sudden hotspot migration.
    flash_crowd_count: int = 3
    flash_crowd_arrival: float = 0.3
    flash_crowd_duration: float = 0.12
    flash_crowd_intensity: float = 0.95
    # Diurnal model: day/night load cycles.
    diurnal_cycles: int = 4
    diurnal_amplitude: float = 0.7
    # Update-storm model: correlated update bursts.
    storm_count: int = 6
    storm_length: int = 300
    storm_width: int = 4
    storm_cost_factor: float = 3.0
    # Cache-adversary model: eviction-busting cyclic/scan access patterns.
    #: Working-set size as a multiple of the cache capacity; > 1 keeps the
    #: cycled set just past capacity, the LRU/GDS worst case.
    adversary_working_set_factor: float = 1.25
    #: Probability a query starts a full sequential scan of the catalogue
    #: (cache pollution) instead of continuing the cycle.
    adversary_scan_probability: float = 0.05

    def __post_init__(self) -> None:
        if self.object_count <= 0:
            raise ValueError("object_count must be positive")
        if not 0.0 < self.cache_fraction:
            raise ValueError("cache_fraction must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must lie in [0, 1)")
        if self.workload_model not in WORKLOAD_MODELS:
            raise ValueError(
                f"unknown workload_model {self.workload_model!r}; "
                f"known models: {', '.join(WORKLOAD_MODELS)}"
            )
        self._check_model_knobs()

    def _check_model_knobs(self) -> None:
        """Range-check the scenario-model knobs at the config boundary.

        The model streams re-validate in their own ``__post_init__``, but a
        config is often built far from where the stream is (scenario files,
        ``--set`` overrides, fuzz draws); failing here keeps the offending
        key and value in the error instead of a deep build-time traceback.
        """
        positive = (
            "zipf_exponent",
            "storm_length",
            "storm_width",
            "storm_cost_factor",
            "diurnal_cycles",
            "adversary_working_set_factor",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)!r}"
                )
        non_negative = ("flash_crowd_count", "storm_count")
        for name in non_negative:
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)!r}"
                )
        unit_closed_open = (
            "flash_crowd_arrival",
            "diurnal_amplitude",
        )
        for name in unit_closed_open:
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ValueError(
                    f"{name} must lie in [0, 1), got {getattr(self, name)!r}"
                )
        if not 0.0 < self.flash_crowd_duration <= 1.0:
            raise ValueError(
                f"flash_crowd_duration must lie in (0, 1], "
                f"got {self.flash_crowd_duration!r}"
            )
        if not 0.0 <= self.flash_crowd_intensity <= 1.0:
            raise ValueError(
                f"flash_crowd_intensity must lie in [0, 1], "
                f"got {self.flash_crowd_intensity!r}"
            )
        if not 0.0 <= self.adversary_scan_probability <= 1.0:
            raise ValueError(
                f"adversary_scan_probability must lie in [0, 1], "
                f"got {self.adversary_scan_probability!r}"
            )

    @property
    def server_size(self) -> float:
        """Total server size in MB at this scale."""
        return PAPER_SERVER_SIZE_MB * self.scale

    @property
    def total_events(self) -> int:
        """Total number of trace events."""
        return self.query_count + self.update_count

    @property
    def measure_from(self) -> int:
        """Event index at which the measurement window opens."""
        return int(self.total_events * self.warmup_fraction)

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ConfiguredScenario:
    """Deprecated alias-shape for :class:`repro.experiments.spec.ScenarioSpec`.

    Kept so existing callers that hand ``ConfiguredScenario(config)`` to the
    sweep runner keep working; new code should use
    :class:`~repro.experiments.spec.ScenarioSpec`, which adds
    ``to_dict``/``from_dict`` round-tripping and file loading.
    """

    config: ExperimentConfig

    def realise(self):
        """Build the scenario; returns ``(catalog, trace)``."""
        scenario = build_scenario(self.config)
        return scenario.catalog, scenario.trace

    def cache_key(self):
        """Hashable identity of the build recipe (all config knobs).

        Matches :meth:`ScenarioSpec.cache_key` for the same config, so a
        worker never builds the same scenario twice even when the two
        representations are mixed in one sweep.
        """
        return ("scenario", astuple(self.config))


@dataclass
class Scenario:
    """A fully built experiment scenario."""

    config: ExperimentConfig
    catalog: ObjectCatalog
    trace: Trace
    #: Object ids forming the survey's update region (update hotspots).
    update_region: List[int]

    @property
    def cache_capacity(self) -> float:
        """Cache capacity in MB implied by the config."""
        return self.catalog.total_size * self.config.cache_fraction


def build_catalog(config: ExperimentConfig) -> ObjectCatalog:
    """Build the SDSS-shaped catalogue for a config."""
    return sdss_catalog(
        object_count=config.object_count, scale=config.scale, seed=config.seed
    )


def _update_workload_config(
    config: ExperimentConfig, server_size: float
) -> UpdateWorkloadConfig:
    """The survey update generator's configuration for an experiment config."""
    return UpdateWorkloadConfig(
        update_count=config.update_count,
        target_total_cost=server_size * config.update_traffic_fraction,
        scan_length=config.scan_length,
        scan_width=config.scan_width,
        scan_probability=config.scan_probability,
        region_fraction=config.update_region_fraction,
        seed=config.seed + 1,
    )


def _query_workload_config(
    config: ExperimentConfig, server_size: float, update_region: List[int]
) -> SDSSWorkloadConfig:
    """The SDSS query generator's configuration for an experiment config."""
    return SDSSWorkloadConfig(
        query_count=config.query_count,
        target_total_cost=server_size * config.query_traffic_fraction,
        phase_length=config.hotspot_phase_length,
        focus_size=config.hotspot_focus_size,
        focus_probability=config.hotspot_focus_probability,
        drift=config.hotspot_drift,
        zipf_exponent=config.zipf_exponent,
        flare_probability=config.flare_probability,
        flare_phase_length=config.flare_phase_length,
        flare_focus_size=config.flare_focus_size,
        flare_cost_factor=config.flare_cost_factor,
        background_cost_factor=config.background_cost_factor,
        warmup_fraction=config.warmup_fraction,
        tolerant_fraction=config.tolerant_fraction,
        tolerance_window=config.tolerance_window,
        excluded_hotspots=tuple(update_region),
        seed=config.seed + 2,
    )


def build_model_stream(
    catalog: ObjectCatalog, config: ExperimentConfig
) -> ScenarioModelStream:
    """The scenario-diversity model stream an experiment config names.

    Per-event mean costs are derived from the config's traffic fractions so
    that the expected query/update byte totals match what the evolving
    workload is calibrated to -- directly, with no whole-trace rescaling
    pass, which is what keeps these models single-pass and constant-memory.
    """
    server_size = catalog.total_size
    mean_query_cost = (
        server_size * config.query_traffic_fraction / config.query_count
        if config.query_count
        else 0.0
    )
    mean_update_cost = (
        server_size * config.update_traffic_fraction / config.update_count
        if config.update_count
        else 0.0
    )
    common = dict(
        catalog=catalog,
        query_count=config.query_count,
        update_count=config.update_count,
        mean_query_cost=mean_query_cost,
        mean_update_cost=mean_update_cost,
        tolerant_fraction=config.tolerant_fraction,
        tolerance_window=config.tolerance_window,
        zipf_exponent=config.zipf_exponent,
        seed=config.seed,
    )
    if config.workload_model == "flash_crowd":
        return FlashCrowdStream(
            crowd_count=config.flash_crowd_count,
            crowd_arrival=config.flash_crowd_arrival,
            crowd_duration=config.flash_crowd_duration,
            crowd_intensity=config.flash_crowd_intensity,
            update_region_fraction=config.update_region_fraction,
            **common,
        )
    if config.workload_model == "diurnal":
        return DiurnalStream(
            cycles=config.diurnal_cycles,
            amplitude=config.diurnal_amplitude,
            **common,
        )
    if config.workload_model == "update_storm":
        return UpdateStormStream(
            storm_count=config.storm_count,
            storm_length=config.storm_length,
            storm_width=config.storm_width,
            storm_cost_factor=config.storm_cost_factor,
            **common,
        )
    if config.workload_model == "cache_adversary":
        return CacheAdversaryStream(
            working_set_bytes=(
                server_size
                * config.cache_fraction
                * config.adversary_working_set_factor
            ),
            scan_probability=config.adversary_scan_probability,
            **common,
        )
    raise ValueError(
        f"workload_model {config.workload_model!r} has no scenario model stream"
    )


def build_scenario(config: Optional[ExperimentConfig] = None) -> Scenario:
    """Build catalogue plus interleaved trace for an experiment config.

    For the default ``evolving`` model the update generator is built first so
    its observed region (the update hotspots) can be excluded from the query
    generator's hotspot focus sets, keeping the two streams' hotspots
    distinct as in Figure 7(a).  The scenario-diversity models
    (``flash_crowd``/``diurnal``/``update_storm``) are generated through
    their streaming sources and materialised, so the two replay paths can
    never drift apart.
    """
    config = config or ExperimentConfig()
    catalog = build_catalog(config)
    server_size = catalog.total_size

    if config.workload_model != "evolving":
        stream = build_model_stream(catalog, config)
        return Scenario(
            config=config,
            catalog=catalog,
            trace=stream.materialise(),
            update_region=stream.update_region(),
        )

    update_config = _update_workload_config(config, server_size)
    update_generator = SurveyUpdateGenerator(catalog, update_config)
    update_region = update_generator.observed_region

    query_config = _query_workload_config(config, server_size, update_region)
    query_generator = SDSSQueryGenerator(catalog, query_config)

    trace = interleave(
        query_generator.generate(),
        update_generator.generate(),
        mode="uniform",
    )
    return Scenario(
        config=config, catalog=catalog, trace=trace, update_region=list(update_region)
    )


def build_scenario_stream(
    config: Optional[ExperimentConfig] = None,
) -> Tuple[ObjectCatalog, TraceStream]:
    """The streaming twin of :func:`build_scenario`: catalogue + lazy source.

    The returned stream produces the byte-identical event sequence
    :func:`build_scenario` would materialise (the determinism harness and
    the streaming-vs-materialised equivalence tests pin this), but generates
    it on demand, so the engines can replay it without holding the events.
    """
    config = config or ExperimentConfig()
    catalog = build_catalog(config)
    if config.workload_model != "evolving":
        return catalog, build_model_stream(catalog, config)
    server_size = catalog.total_size
    update_config = _update_workload_config(config, server_size)
    update_region = SurveyUpdateGenerator(catalog, update_config).observed_region
    query_config = _query_workload_config(config, server_size, update_region)
    return catalog, EvolvingTraceStream(catalog, query_config, update_config)
