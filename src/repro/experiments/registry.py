"""Declarative experiment registry and the shared execution driver.

An *experiment* in this repository used to be a bespoke module with a private
``run()`` loop.  The registry turns each one into data: an
:class:`ExperimentSpec` declares the default scenario config, the experiment's
extra knobs, and two hooks -- a grid builder producing the
``(sweep points, scenario sources)`` pair and a summarise hook turning the
completed sweep back into the experiment's result dataclass.  One shared
driver (:func:`execute`) runs every experiment: build the grid, fan it out
over :class:`repro.sim.sweep.SweepRunner` (``jobs=N`` parallelises, results
byte-identical to serial), summarise.

Modules register themselves with the :func:`register_experiment` decorator::

    @register_experiment(
        name="headline",
        title="Headline claims",
        paper_ref="Section 6 text",
        knobs={"small_cache_fraction": 0.2},
        summarise=_summarise,
        format_result=format_report,
    )
    def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
        ...

The registry is enumerable (:func:`experiment_names`), every spec round-trips
through :meth:`ExperimentSpec.to_dict`/:meth:`ExperimentSpec.from_dict` (the
hooks are stored as ``module:qualname`` strings), and
:mod:`repro.api` exposes the whole surface as the supported entry points.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.spec import CONFIG_FIELDS, config_from_mapping
from repro.sim.sweep import ScenarioSource, SweepPoint, SweepResult, SweepRunner


class UnknownExperimentError(ValueError):
    """No experiment is registered under the requested name."""


class UnknownOverrideError(ValueError):
    """An override names neither a config field nor an experiment knob."""


class InvalidOverrideError(ValueError):
    """An override names a valid key but carries an unusable value."""


class DuplicateExperimentError(ValueError):
    """Two experiments tried to register under the same name."""


@dataclass(frozen=True)
class ExperimentGrid:
    """What a grid builder hands the driver: points, sources and context.

    ``context`` carries parent-built objects the summarise hook needs (most
    commonly the realised default scenario); it never crosses a process
    boundary, so it may hold unpicklable values.
    """

    points: Tuple[SweepPoint, ...] = ()
    scenarios: Mapping[str, ScenarioSource] = field(default_factory=dict)
    context: Mapping[str, object] = field(default_factory=dict)


@dataclass
class ExperimentContext:
    """Everything a summarise hook sees after the sweep has run."""

    config: ExperimentConfig
    knobs: Dict[str, object]
    sweep: SweepResult
    extras: Dict[str, object] = field(default_factory=dict)
    jobs: int = 1


#: Signature of a grid builder: (config, merged knobs) -> grid.
GridBuilder = Callable[[ExperimentConfig, Mapping[str, object]], ExperimentGrid]
#: Signature of a summarise hook: completed context -> result dataclass.
Summariser = Callable[[ExperimentContext], object]
#: Signature of a result formatter: result dataclass -> printable text.
ResultFormatter = Callable[[object], str]


def _normalise_knobs(knobs: Mapping[str, object]) -> Dict[str, object]:
    """Canonicalise knob values (sequences become tuples) for stable equality."""

    def canonical(value: object) -> object:
        if isinstance(value, (list, tuple)):
            return tuple(canonical(item) for item in value)
        return value

    return {key: canonical(value) for key, value in knobs.items()}


def _listify(value: object) -> object:
    """The JSON-friendly mirror of :func:`_normalise_knobs`."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def _hook_ref(hook: Optional[Callable[..., object]]) -> Optional[str]:
    """Serialise a module-level hook as an importable ``module:qualname``."""
    if hook is None:
        return None
    return f"{hook.__module__}:{hook.__qualname__}"


def _resolve_hook(ref: Optional[str]) -> Optional[Callable[..., object]]:
    """Import a hook back from its ``module:qualname`` reference."""
    if ref is None:
        return None
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed hook reference {ref!r}; expected 'module:qualname'")
    target = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, declared: metadata, default knobs, and the two hooks.

    Parameters
    ----------
    name:
        Registry key, also the CLI name (``repro experiment run <name>``).
    title:
        One-line human description for listings.
    paper_ref:
        The paper artifact the experiment regenerates (e.g. ``Figure 7(b)``).
    description:
        Longer prose shown by ``repro experiment list``.
    config:
        Default scenario configuration; ``run_experiment`` overrides its
        fields via the flat overrides mapping.
    knobs:
        Experiment-specific parameters (grid axes, policy subsets, ...) with
        their default values; overrides must name an existing knob.
    build_grid / summarise / format_result:
        The hooks.  Must be module-level callables so the spec can be
        serialised (``to_dict`` stores them as ``module:qualname``).
    """

    name: str
    title: str
    build_grid: GridBuilder
    summarise: Summariser
    paper_ref: str = ""
    description: str = ""
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    knobs: Mapping[str, object] = field(default_factory=dict)
    format_result: Optional[ResultFormatter] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "description": self.description,
            "config": {
                f.name: getattr(self.config, f.name)
                for f in dataclass_fields(ExperimentConfig)
            },
            "knobs": {key: _listify(value) for key, value in self.knobs.items()},
            "build_grid": _hook_ref(self.build_grid),
            "summarise": _hook_ref(self.summarise),
            "format_result": _hook_ref(self.format_result),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (hooks re-imported)."""
        return cls(
            name=data["name"],
            title=data["title"],
            paper_ref=data.get("paper_ref", ""),
            description=data.get("description", ""),
            config=config_from_mapping(data.get("config", {})),
            knobs=_normalise_knobs(data.get("knobs", {})),
            build_grid=_resolve_hook(data["build_grid"]),
            summarise=_resolve_hook(data["summarise"]),
            format_result=_resolve_hook(data.get("format_result")),
        )


#: The registry, in registration order (the order modules are imported).
_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(
    *,
    name: str,
    title: str,
    summarise: Summariser,
    paper_ref: str = "",
    description: str = "",
    config: Optional[ExperimentConfig] = None,
    knobs: Optional[Mapping[str, object]] = None,
    format_result: Optional[ResultFormatter] = None,
) -> Callable[[GridBuilder], GridBuilder]:
    """Decorator registering a grid builder as an experiment.

    Returns the builder unchanged so the module can keep using it directly.
    Raises :class:`DuplicateExperimentError` if the name is taken.
    """

    def decorate(build_grid: GridBuilder) -> GridBuilder:
        if name in _REGISTRY:
            raise DuplicateExperimentError(
                f"experiment {name!r} is already registered "
                f"(by {_hook_ref(_REGISTRY[name].build_grid)})"
            )
        shadowed = sorted(set(knobs or {}) & set(CONFIG_FIELDS))
        if shadowed:
            # split_overrides routes config fields first, so a knob sharing a
            # config field's name could never be overridden -- fail fast.
            raise ValueError(
                f"experiment {name!r} knob(s) {shadowed} shadow "
                "ExperimentConfig fields; rename the knobs"
            )
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            title=title,
            paper_ref=paper_ref,
            description=description,
            config=config or ExperimentConfig(),
            knobs=_normalise_knobs(knobs or {}),
            build_grid=build_grid,
            summarise=summarise,
            format_result=format_result,
        )
        return build_grid

    return decorate


def experiment_names() -> List[str]:
    """All registered experiment names, in registration order."""
    return list(_REGISTRY)


def experiment_specs() -> List[ExperimentSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


def get_experiment(name: str) -> ExperimentSpec:
    """The spec registered under ``name``.

    Raises :class:`UnknownExperimentError` (with the known names) otherwise.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; known: {', '.join(_REGISTRY) or '(none)'}"
        ) from None


def split_overrides(
    spec: ExperimentSpec, overrides: Mapping[str, object]
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split flat overrides into (config fields, experiment knobs).

    Raises :class:`UnknownOverrideError` for keys that are neither.
    """
    config_overrides: Dict[str, object] = {}
    knob_overrides: Dict[str, object] = {}
    valid_knobs = set(spec.knobs)
    for key, value in overrides.items():
        if key in CONFIG_FIELDS:
            config_overrides[key] = value
        elif key in valid_knobs:
            knob_overrides[key] = value
        else:
            raise UnknownOverrideError(
                f"experiment {spec.name!r} accepts no override {key!r}; "
                f"config fields: {sorted(CONFIG_FIELDS)}; "
                f"knobs: {sorted(valid_knobs) or '(none)'}"
            )
    return config_overrides, knob_overrides


def _check_knob_values(
    experiment: str,
    defaults: Mapping[str, object],
    overrides: Mapping[str, object],
) -> None:
    """Reject knob overrides whose shape cannot match the default's.

    The default value of every knob documents its expected shape; an
    override must be a sequence where the default is a sequence, a string
    where it is a string, and a number where it is a number.  This turns
    typo'd CLI input (``--set top=2.5`` on an integer knob) into an
    :class:`InvalidOverrideError` instead of a deep TypeError mid-run.
    """
    def scalar_ok(value: object, model: object) -> bool:
        if isinstance(model, bool):
            return isinstance(value, bool)
        if isinstance(model, int):
            return isinstance(value, int) and not isinstance(value, bool)
        if isinstance(model, float):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if isinstance(model, str):
            return isinstance(value, str)
        return True

    for key, value in overrides.items():
        default = defaults[key]
        if isinstance(default, tuple):
            # Elements must match the default's element shape too, so a
            # 10.5 in an integer axis fails here, not mid-build.
            ok = isinstance(value, tuple) and (
                not default
                or all(scalar_ok(item, default[0]) for item in value)
            )
        else:
            ok = scalar_ok(value, default)
        if not ok:
            raise InvalidOverrideError(
                f"experiment {experiment!r} knob {key!r} expects a value "
                f"like {default!r}, got {value!r}"
            )


def execute(
    name: str,
    config: Optional[ExperimentConfig] = None,
    knobs: Optional[Mapping[str, object]] = None,
    jobs: int = 1,
) -> object:
    """The shared driver: build the grid, sweep it, summarise.

    ``config`` replaces the spec's default config wholesale (legacy module
    ``run(config=...)`` wrappers use this); ``knobs`` overrides individual
    experiment knobs and must name existing ones.
    """
    spec = get_experiment(name)
    config = config if config is not None else spec.config
    merged = dict(spec.knobs)
    if knobs:
        unknown = sorted(set(knobs) - set(merged))
        if unknown:
            raise UnknownOverrideError(
                f"experiment {spec.name!r} has no knob(s) {unknown}; "
                f"knobs: {sorted(merged) or '(none)'}"
            )
        overrides = _normalise_knobs(dict(knobs))
        _check_knob_values(spec.name, merged, overrides)
        merged.update(overrides)
    grid = spec.build_grid(config, merged)
    sweep = SweepRunner(jobs=jobs).run(list(grid.points), dict(grid.scenarios))
    context = ExperimentContext(
        config=config, knobs=merged, sweep=sweep, extras=dict(grid.context), jobs=jobs
    )
    return spec.summarise(context)


def run_experiment(
    name: str, overrides: Optional[Mapping[str, object]] = None, jobs: int = 1
) -> object:
    """Run a registered experiment with flat overrides.

    Override keys naming :class:`ExperimentConfig` fields replace scenario
    knobs (e.g. ``query_count``); keys naming experiment knobs replace those
    (e.g. ``fractions`` for ``cache_size``); anything else raises
    :class:`UnknownOverrideError`.
    """
    spec = get_experiment(name)
    config_overrides, knob_overrides = split_overrides(spec, dict(overrides or {}))
    if config_overrides:
        # Rebuild through the validating path so a non-numeric or
        # out-of-range value fails here with the offending key, not as a
        # TypeError deep inside trace generation.
        base = {
            f.name: getattr(spec.config, f.name)
            for f in dataclass_fields(ExperimentConfig)
        }
        config = config_from_mapping({**base, **config_overrides})
    else:
        config = spec.config
    return execute(name, config=config, knobs=knob_overrides, jobs=jobs)
