"""Experiment E5 -- the paper's headline claims (Section 6 text).

The abstract and Section 6 make three quantitative claims:

1. "Delta (using VCover) reduces the traffic by nearly half even with a cache
   that is one-fifth the size of the server repository."
2. "VCover outperforms Benefit by a factor that varies between 2-5 under
   different conditions."
3. VCover "closely follows SOptimal", ending roughly 40 % above it.

Claim 1 is specifically about a one-fifth cache, so it is measured with the
cache at 20 % of the server; claims 2 and 3 are quoted from the paper's
default setup (cache 30 %, Section 6.1), so they are measured there.
``EXPERIMENTS.md`` records paper-vs-measured values for all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint


@dataclass
class HeadlineResult:
    """Measured values for the paper's headline claims.

    ``small_cache_comparison`` holds the one-fifth-cache run (claim 1);
    ``default_comparison`` holds the paper's default 30 %-cache setup
    (claims 2 and 3).
    """

    small_cache_comparison: ComparisonResult
    default_comparison: ComparisonResult
    small_cache_fraction: float
    default_cache_fraction: float

    @property
    def traffic_reduction_vs_nocache(self) -> float:
        """Fraction of NoCache traffic VCover eliminates with a 1/5 cache (paper ~0.5)."""
        nocache = self.small_cache_comparison.traffic_of("nocache")
        vcover = self.small_cache_comparison.traffic_of("vcover")
        if nocache == 0:
            return 0.0
        return 1.0 - vcover / nocache

    @property
    def benefit_over_vcover(self) -> float:
        """Benefit traffic over VCover traffic at the default cache (paper: 2-5)."""
        return self.default_comparison.ratio("benefit", "vcover")

    @property
    def vcover_over_soptimal(self) -> float:
        """VCover traffic over SOptimal traffic at the default cache (paper: ~1.4)."""
        return self.default_comparison.ratio("vcover", "soptimal")

    def summary(self) -> Dict[str, float]:
        """Flat summary for reports and benchmark extra_info."""
        return {
            "small_cache_fraction": self.small_cache_fraction,
            "default_cache_fraction": self.default_cache_fraction,
            "traffic_reduction_vs_nocache": self.traffic_reduction_vs_nocache,
            "benefit_over_vcover": self.benefit_over_vcover,
            "vcover_over_soptimal": self.vcover_over_soptimal,
            **{f"default_{k}": v for k, v in self.default_comparison.summary().items()},
        }


def run(
    config: Optional[ExperimentConfig] = None,
    cache_fraction: float = 0.2,
    jobs: int = 1,
) -> HeadlineResult:
    """Measure the headline claims (registry-driven; kept for back-compat).

    Both cache sizes run as one ``fraction x policy`` sweep over a single
    scenario, so ``jobs > 1`` runs all ten policy runs in parallel.

    Parameters
    ----------
    config:
        Scenario configuration (the cache fraction inside it is used for the
        claims 2/3 run).
    cache_fraction:
        Cache size for the claim-1 run (the paper's "one-fifth of the server").
    jobs:
        Worker processes to fan the runs out over (1 = serial).
    """
    return execute(
        "headline",
        config=config,
        knobs={"small_cache_fraction": cache_fraction},
        jobs=jobs,
    )


def format_report(result: HeadlineResult) -> str:
    """The three headline claims, paper value vs measured."""
    lines = ["Headline claims (Section 6)"]
    lines.append(
        f"[cache {result.small_cache_fraction:.0%}] traffic reduction vs NoCache : "
        f"paper ~50%   measured {result.traffic_reduction_vs_nocache:.0%}"
    )
    lines.append(
        f"[cache {result.default_cache_fraction:.0%}] Benefit / VCover             : "
        f"paper 2-5x   measured {result.benefit_over_vcover:.2f}x"
    )
    lines.append(
        f"[cache {result.default_cache_fraction:.0%}] VCover / SOptimal            : "
        f"paper ~1.4x  measured {result.vcover_over_soptimal:.2f}x"
    )
    lines.append("")
    lines.append(f"cache = {result.small_cache_fraction:.0%} of server:")
    lines.append(result.small_cache_comparison.as_table())
    lines.append("")
    lines.append(f"cache = {result.default_cache_fraction:.0%} of server:")
    lines.append(result.default_comparison.as_table())
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> HeadlineResult:
    return HeadlineResult(
        small_cache_comparison=context.sweep.comparison(setup="small"),
        default_comparison=context.sweep.comparison(setup="default"),
        small_cache_fraction=context.knobs["small_cache_fraction"],
        default_cache_fraction=context.config.cache_fraction,
    )


@register_experiment(
    name="headline",
    title="Headline claims (traffic reduction, Benefit/VCover, VCover/SOptimal)",
    paper_ref="Section 6 text",
    description=(
        "Measures the paper's three quantitative claims: ~50% traffic "
        "reduction with a one-fifth cache, Benefit 2-5x above VCover, and "
        "VCover within ~1.4x of SOptimal."
    ),
    knobs={"small_cache_fraction": 0.2},
    summarise=_summarise,
    format_result=format_report,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window)
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    fractions = [
        ("small", knobs["small_cache_fraction"]),
        ("default", config.cache_fraction),
    ]
    points = tuple(
        SweepPoint(
            key=f"{spec.name}@{label}",
            spec=spec,
            cache_fraction=fraction,
            engine=engine,
            seed=config.seed,
            tags=(("setup", label),),
        )
        for label, fraction in fractions
        for spec in specs
    )
    # The recipe, not a built trace: workers rebuild it deterministically,
    # memoised per process, so nothing big crosses the pool boundary.
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: ScenarioSpec(config)},
    )
