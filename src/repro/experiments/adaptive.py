"""Experiment E14 -- adaptive meta-policy vs the static roster (beyond the paper).

The ``adaptive_vs_static`` experiment asks the question the adaptive layer
exists to answer: over a diverse set of workloads -- every scenario model
plus seeded adversarial draws from the scenario fuzzer -- how close does the
:class:`~repro.core.adaptive.AdaptivePolicy` get to the *per-workload best*
static policy, without being told which workload it is facing?  A static
policy can only win the workloads it suits; the meta-policy is scored
against the best static on each scenario separately, the hardest honest
yardstick short of the offline optimum (which the per-epoch regret numbers
in each adaptive run's :class:`~repro.sim.results.RunResult` cover).

A scenario counts as a *win* when the adaptive policy's total traffic is
within ``tolerance`` (default 2%) of the best static's -- "beats or
matches".  The report prints one row per scenario with the ratio, the
switch count and the summed regret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.adaptive import AdaptiveConfig
from repro.core.benefit import BenefitConfig
from repro.experiments.config import WORKLOAD_MODELS, ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.sweep import ScenarioSource, SweepPoint
from repro.workload.fuzz import draw_composition_spec

#: Static policies the meta-policy is compared against by default (its own
#: shadowable candidates; SOptimal is excluded because an online policy
#: cannot be expected to match a hindsight schedule on every workload).
DEFAULT_STATIC_POLICIES = ("nocache", "replica", "benefit", "vcover")

#: Seeds for the adversarial fuzzer draws included alongside the models.
DEFAULT_FUZZ_SEEDS = (5,)

#: Relative slack under which "matches the best static" is declared.
DEFAULT_TOLERANCE = 0.02


@dataclass
class AdaptiveScenarioRow:
    """Adaptive vs best-static outcome for one scenario."""

    scenario: str
    comparison: ComparisonResult
    adaptive_traffic: float
    best_static: str
    best_static_traffic: float
    switches: float
    regret_total: Optional[float]

    @property
    def ratio(self) -> float:
        """Adaptive traffic over the best static's (<= 1 means it won)."""
        if self.best_static_traffic == 0.0:
            return 1.0 if self.adaptive_traffic == 0.0 else float("inf")
        return self.adaptive_traffic / self.best_static_traffic


@dataclass
class AdaptiveVsStaticResult:
    """Per-scenario rows plus the experiment-level win count."""

    rows: List[AdaptiveScenarioRow]
    tolerance: float

    def wins(self) -> int:
        """Scenarios where adaptive beat or matched the best static."""
        return sum(1 for row in self.rows if row.ratio <= 1.0 + self.tolerance)


def format_report(result: AdaptiveVsStaticResult) -> str:
    """One row per scenario: adaptive vs the per-scenario best static."""
    lines = [
        f"{'scenario':<24} {'adaptive (MB)':>14} {'best static':>18} "
        f"{'ratio':>7} {'switches':>9} {'regret':>10}",
    ]
    for row in result.rows:
        regret = f"{row.regret_total:.1f}" if row.regret_total is not None else "-"
        verdict = "=" if row.ratio <= 1.0 + result.tolerance else ">"
        lines.append(
            f"{row.scenario:<24} {row.adaptive_traffic:>14.1f} "
            f"{row.best_static:>10} {row.best_static_traffic:>7.1f} "
            f"{row.ratio:>6.3f}{verdict} {row.switches:>8.0f} {regret:>10}"
        )
    lines.append(
        f"adaptive beats or matches the best static on {result.wins()} of "
        f"{len(result.rows)} scenarios (tolerance {result.tolerance:.0%})"
    )
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> AdaptiveVsStaticResult:
    rows: List[AdaptiveScenarioRow] = []
    for scenario_name in context.extras["scenario_names"]:
        comparison = context.sweep.comparison(source=scenario_name)
        adaptive_run = comparison["adaptive"]
        statics = {
            name: run.total_traffic
            for name, run in comparison.runs.items()
            if name != "adaptive"
        }
        best_traffic, best_name = min(
            (traffic, name) for name, traffic in statics.items()
        )
        regret = adaptive_run.regret
        rows.append(
            AdaptiveScenarioRow(
                scenario=scenario_name,
                comparison=comparison,
                adaptive_traffic=adaptive_run.total_traffic,
                best_static=best_name,
                best_static_traffic=best_traffic,
                switches=adaptive_run.policy_stats.get("switches", 0.0),
                regret_total=regret.get("total") if regret else None,
            )
        )
    return AdaptiveVsStaticResult(
        rows=rows, tolerance=float(context.knobs["tolerance"])
    )


@register_experiment(
    name="adaptive_vs_static",
    title="Adaptive meta-policy vs the per-workload best static policy",
    paper_ref="beyond the paper",
    description=(
        "Runs the adaptive meta-policy and the static roster over every "
        "scenario model plus seeded adversarial fuzzer draws, scoring the "
        "meta-policy against the best static policy of each scenario "
        "separately; per-epoch regret vs the offline decoupling optimum is "
        "reported for every adaptive run."
    ),
    config=ExperimentConfig(object_count=32, query_count=1500, update_count=1500),
    knobs={
        "policies": DEFAULT_STATIC_POLICIES,
        "models": WORKLOAD_MODELS,
        "fuzz_seeds": DEFAULT_FUZZ_SEEDS,
        "tolerance": DEFAULT_TOLERANCE,
        "streaming": True,
    },
    summarise=_summarise,
    format_result=format_report,
)
def _adaptive_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    """Adaptive plus the static roster over each model and fuzzer draw."""
    from repro.sim.runner import adaptive_spec, default_policy_specs

    statics: Tuple[str, ...] = tuple(knobs["policies"])  # type: ignore[arg-type]
    benefit_config = BenefitConfig(window_size=config.benefit_window)
    specs = default_policy_specs(benefit_config=benefit_config, include=statics)
    specs.append(
        adaptive_spec(AdaptiveConfig(benefit_window=config.benefit_window))
    )
    streaming = bool(knobs["streaming"])
    scenarios: Dict[str, ScenarioSource] = {}
    points: List[SweepPoint] = []
    scenario_names: List[str] = []

    def add_scenario(
        name: str,
        source: ScenarioSource,
        cache_fraction: float,
        engine: EngineConfig,
        seed: int,
    ) -> None:
        scenarios[name] = source
        scenario_names.append(name)
        points.extend(
            SweepPoint(
                key=f"{spec.name}-{name}",
                spec=spec,
                scenario=name,
                cache_fraction=cache_fraction,
                engine=engine,
                seed=seed,
                tags=(("source", name),),
                streaming=streaming,
            )
            for spec in specs
        )

    for model in knobs["models"]:  # type: ignore[attr-defined]
        model_config = config.scaled(workload_model=str(model))
        add_scenario(
            str(model),
            ScenarioSpec(model_config, name=str(model)),
            cache_fraction=model_config.cache_fraction,
            engine=EngineConfig(
                sample_every=model_config.sample_every,
                measure_from=model_config.measure_from,
            ),
            seed=model_config.seed,
        )
    for fuzz_seed in knobs["fuzz_seeds"]:  # type: ignore[attr-defined]
        composition = draw_composition_spec(int(fuzz_seed))
        name = f"fuzz-{int(fuzz_seed)}"
        add_scenario(
            name,
            composition,
            cache_fraction=composition.cache_fraction,
            engine=EngineConfig(sample_every=config.sample_every),
            seed=composition.seed,
        )
    return ExperimentGrid(
        points=tuple(points),
        scenarios=scenarios,
        context={"scenario_names": tuple(scenario_names)},
    )
