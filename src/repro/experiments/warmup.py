"""Experiment E7 -- warm-up behaviour (supporting, Section 6.1).

The paper reports an unusually long warm-up (roughly 250k of 500k events,
and 150k-300k on comparable traces): early queries in the SDSS trace are
cheap, so no object accumulates enough attributed shipping cost to justify a
load, and the cache stays nearly empty while almost all queries are shipped.

This experiment replays the default scenario with VCover and records cache
occupancy and the cache-answer rate over the event sequence, so the warm-up
knee is visible: occupancy stays near zero during the cheap-query prefix and
climbs only once full-cost queries start arriving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.experiments.config import ExperimentConfig, Scenario
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.workload.trace import QueryEvent, UpdateEvent


@dataclass
class WarmupResult:
    """Occupancy and hit-rate trajectories for a VCover run."""

    #: (event index, fraction of cache capacity in use).
    occupancy: List[Tuple[int, float]]
    #: (event index, cache-answer rate over the trailing window).
    hit_rate: List[Tuple[int, float]]
    #: Event index at which occupancy first exceeds 50 % of its final value.
    warmup_knee: int
    #: The configured warm-up boundary (end of the cheap-query prefix).
    configured_warmup_end: int


def run(
    config: Optional[ExperimentConfig] = None,
    sample_every: int = 250,
    window: int = 500,
) -> WarmupResult:
    """Replay the scenario with VCover, sampling occupancy and hit rate."""
    return execute(
        "warmup",
        config=config,
        knobs={"occupancy_sample_every": sample_every, "hit_rate_window": window},
    )


def _replay(
    scenario: Scenario,
    config: ExperimentConfig,
    sample_every: int,
    window: int,
) -> WarmupResult:
    """The instrumented serial replay behind the experiment."""
    repository = Repository(scenario.catalog)
    link = NetworkLink()
    policy = VCoverPolicy(repository, scenario.cache_capacity, link, VCoverConfig())

    occupancy: List[Tuple[int, float]] = []
    hit_rate: List[Tuple[int, float]] = []
    recent_outcomes: List[bool] = []

    for index, event in enumerate(scenario.trace):
        if isinstance(event, UpdateEvent):
            repository.ingest_update(event.update)
            policy.on_update(event.update)
        elif isinstance(event, QueryEvent):
            outcome = policy.on_query(event.query)
            recent_outcomes.append(outcome.answered_at_cache)
            if len(recent_outcomes) > window:
                recent_outcomes.pop(0)
        if (index + 1) % sample_every == 0:
            used_fraction = (
                policy.store.used / policy.store.capacity if policy.store.capacity else 0.0
            )
            occupancy.append((index + 1, used_fraction))
            rate = (
                sum(recent_outcomes) / len(recent_outcomes) if recent_outcomes else 0.0
            )
            hit_rate.append((index + 1, rate))

    final_occupancy = occupancy[-1][1] if occupancy else 0.0
    knee = 0
    for event_index, used_fraction in occupancy:
        if final_occupancy > 0 and used_fraction >= 0.5 * final_occupancy:
            knee = event_index
            break

    return WarmupResult(
        occupancy=occupancy,
        hit_rate=hit_rate,
        warmup_knee=knee,
        configured_warmup_end=config.measure_from,
    )


def format_report(result: WarmupResult) -> str:
    """Readable summary of the warm-up trajectory."""
    lines = ["Warm-up behaviour (VCover)"]
    lines.append(f"configured cheap-query prefix ends at event {result.configured_warmup_end}")
    lines.append(f"occupancy reaches half its final level at event {result.warmup_knee}")
    for (event_index, used), (_, rate) in zip(result.occupancy[::4], result.hit_rate[::4], strict=False):
        lines.append(f"event {event_index:>8}: occupancy {used:>6.1%}, hit rate {rate:>6.1%}")
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> WarmupResult:
    return _replay(
        context.extras["scenario"],
        context.config,
        sample_every=context.knobs["occupancy_sample_every"],
        window=context.knobs["hit_rate_window"],
    )


@register_experiment(
    name="warmup",
    title="Warm-up trajectory of cache occupancy and hit rate",
    paper_ref="Section 6.1",
    description=(
        "Replays the default scenario with VCover, sampling cache occupancy "
        "and the trailing-window cache-answer rate so the warm-up knee after "
        "the cheap-query prefix is visible."
    ),
    # Named distinctly from ExperimentConfig.sample_every (the engine's
    # traffic-sampling grid): these control the warm-up replay's own
    # occupancy sampling and trailing hit-rate window.
    knobs={"occupancy_sample_every": 250, "hit_rate_window": 500},
    summarise=_summarise,
    format_result=format_report,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    # Serial instrumented replay: per-event occupancy sampling cannot be
    # expressed as sweep points, so the scenario rides in the context.
    return ExperimentGrid(context={"scenario": ScenarioSpec(config).build()})
