"""Experiment E8 -- ablations of Delta's design choices (ours).

The paper motivates several design decisions without isolating their impact.
This experiment quantifies them on the standard scenario:

* **Loading mechanism** -- randomized cost attribution (the paper's choice,
  space-efficient) vs. explicit per-object counters (the behaviour it
  emulates in expectation).
* **Eviction policy** -- Greedy-Dual-Size (the paper's choice) vs. LRU, LFU
  and Landlord.
* **Max-flow solver** -- Edmonds-Karp (named in the paper) vs. Dinic;
  decisions must be identical, only runtime differs, so this doubles as a
  correctness cross-check.
* **Benefit window and smoothing** -- sensitivity of the Benefit baseline to
  its two tuning knobs, supporting the paper's point that heuristic
  approaches are brittle.
* **Preshipping** -- the response-time extension sketched in the paper's
  discussion: proactively pushing updates for recently used cached objects
  reduces the fraction of queries delayed by synchronous update shipping, at
  the cost of some extra update traffic.

Every variant is a picklable :class:`repro.sim.runner.PolicySpec` built with
:func:`repro.sim.runner.vcover_spec` / :func:`repro.sim.runner.benefit_spec`,
and each ablation runs its variants as one :class:`repro.sim.sweep.SweepRunner`
sweep, so ``jobs > 1`` runs them in parallel worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.benefit import BenefitConfig
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.experiments.config import ExperimentConfig, Scenario, build_scenario
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.network.latency import LatencyModel, ResponseTimeSummary, summarise_response_times
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig
from repro.sim.results import RunResult
from repro.sim.runner import PolicySpec, benefit_spec, vcover_spec
from repro.sim.sweep import DEFAULT_SCENARIO, InlineScenario, SweepPoint, SweepRunner
from repro.workload.trace import QueryEvent, UpdateEvent

#: The sweep-shaped ablations the registered experiment runs, in order.
DEFAULT_ABLATIONS = ("loading", "eviction", "flow_method", "benefit")

#: Eviction policies compared by the eviction ablation.
DEFAULT_EVICTION_POLICIES = ("gds", "lru", "lfu", "landlord")

#: Benefit-window sizes probed by the sensitivity ablation.
DEFAULT_WINDOWS = (250, 500, 1000, 2000)

#: Benefit smoothing parameters probed by the sensitivity ablation.
DEFAULT_ALPHAS = (0.1, 0.3, 0.6, 0.9)


@dataclass
class AblationResult:
    """Final measured traffic for every ablated variant."""

    #: variant label -> final measured traffic.
    traffic: Dict[str, float] = field(default_factory=dict)
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def record(self, label: str, run_result: RunResult) -> None:
        """Add one variant's outcome."""
        self.traffic[label] = run_result.measured_traffic
        self.runs[label] = run_result

    def relative_to(self, baseline: str) -> Dict[str, float]:
        """Every variant's traffic normalised to a baseline variant."""
        base = self.traffic[baseline]
        if base == 0:
            return {label: float("inf") for label in self.traffic}
        return {label: value / base for label, value in self.traffic.items()}


def _engine_config(config: ExperimentConfig) -> EngineConfig:
    return EngineConfig(sample_every=config.sample_every, measure_from=config.measure_from)


def _run_variants(
    variants: Sequence[Tuple[str, PolicySpec]],
    config: ExperimentConfig,
    scenario: Scenario,
    jobs: int,
) -> AblationResult:
    """Run labelled policy variants over one scenario as a single sweep."""
    points = [
        SweepPoint(
            key=spec.name,
            spec=spec,
            cache_capacity=scenario.cache_capacity,
            engine=_engine_config(config),
            seed=config.seed,
            tags=(("label", label),),
        )
        for label, spec in variants
    ]
    sweep = SweepRunner(jobs=jobs).run(
        points,
        scenarios={DEFAULT_SCENARIO: InlineScenario(scenario.catalog, scenario.trace)},
    )
    result = AblationResult()
    for point_result in sweep.points:
        result.record(point_result.point.tag("label"), point_result.run)
    return result


def _loading_variants(config: ExperimentConfig) -> List[Tuple[str, PolicySpec]]:
    """Randomized vs counter-based loading in the LoadManager."""
    return [
        (
            label,
            vcover_spec(
                VCoverConfig(randomized_loading=randomized), name=f"vcover-{label}"
            ),
        )
        for label, randomized in (("randomized", True), ("counter", False))
    ]


def _eviction_variants(
    config: ExperimentConfig, policies: Sequence[str]
) -> List[Tuple[str, PolicySpec]]:
    """GDS vs LRU vs LFU vs Landlord as the LoadManager's object cache."""
    return [
        (name, vcover_spec(VCoverConfig(eviction_policy=name), name=f"vcover-{name}"))
        for name in policies
    ]


def _flow_method_variants(config: ExperimentConfig) -> List[Tuple[str, PolicySpec]]:
    """The max-flow solvers in the UpdateManager (results must agree)."""
    return [
        (method, vcover_spec(VCoverConfig(flow_method=method), name=f"vcover-{method}"))
        for method in ("edmonds-karp", "dinic", "push-relabel")
    ]


def _benefit_variants(
    config: ExperimentConfig, windows: Sequence[int], alphas: Sequence[float]
) -> List[Tuple[str, PolicySpec]]:
    """Benefit's sensitivity to its window size and smoothing parameter."""
    variants = [
        (
            f"window={window}",
            benefit_spec(BenefitConfig(window_size=window), name=f"benefit-w{window}"),
        )
        for window in windows
    ]
    variants.extend(
        (
            f"alpha={alpha}",
            benefit_spec(
                BenefitConfig(window_size=config.benefit_window, alpha=alpha),
                name=f"benefit-a{alpha}",
            ),
        )
        for alpha in alphas
    )
    return variants


def run_loading_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    jobs: int = 1,
) -> AblationResult:
    """Randomized vs counter-based loading in the LoadManager."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    return _run_variants(_loading_variants(config), config, scenario, jobs)


def run_eviction_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    policies: Sequence[str] = DEFAULT_EVICTION_POLICIES,
    jobs: int = 1,
) -> AblationResult:
    """GDS vs LRU vs LFU vs Landlord as the LoadManager's object cache."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    return _run_variants(_eviction_variants(config, policies), config, scenario, jobs)


def run_flow_method_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    jobs: int = 1,
) -> AblationResult:
    """Edmonds-Karp vs Dinic in the UpdateManager (results must agree)."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    return _run_variants(_flow_method_variants(config), config, scenario, jobs)


def run_benefit_sensitivity(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    jobs: int = 1,
) -> AblationResult:
    """Benefit's sensitivity to its window size and smoothing parameter."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    return _run_variants(
        _benefit_variants(config, windows, alphas), config, scenario, jobs
    )


@dataclass
class PreshipVariantResult:
    """Traffic plus response-time summary for one preshipping setting."""

    total_traffic: float
    response_times: ResponseTimeSummary


def run_preship_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    latency_model: Optional[LatencyModel] = None,
) -> Dict[str, PreshipVariantResult]:
    """Compare VCover with and without preshipping (traffic and latency).

    Preshipping is the paper's discussion-section extension: it cannot reduce
    traffic (it only ships updates earlier, sometimes unnecessarily) but it
    reduces the fraction of queries that must wait for synchronous update
    shipping before they can be answered at the cache.

    Runs serially: it needs the per-query outcome stream for the latency
    summary, which the sweep runner's aggregated results do not carry.
    """
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    latency_model = latency_model or LatencyModel()
    results: Dict[str, PreshipVariantResult] = {}
    for label, preship in (("baseline", False), ("preship", True)):
        repository = Repository(scenario.catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository, scenario.cache_capacity, link, VCoverConfig(preship=preship)
        )
        outcomes = []
        for event in scenario.trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            elif isinstance(event, QueryEvent):
                outcomes.append(policy.on_query(event.query))
        results[label] = PreshipVariantResult(
            total_traffic=link.total_cost,
            response_times=summarise_response_times(outcomes, latency_model),
        )
    return results


def format_table(title: str, result: AblationResult) -> str:
    """Fixed-width table of variant traffic."""
    lines = [title, f"{'variant':<20} {'traffic (MB)':>14}"]
    for label, value in result.traffic.items():
        lines.append(f"{label:<20} {value:>14.1f}")
    return "\n".join(lines)


def format_all(results: Dict[str, AblationResult]) -> str:
    """All ablation tables, one block per ablation."""
    return "\n\n".join(
        format_table(f"Ablation: {name}", result) for name, result in results.items()
    )


def _variants_for(
    ablation: str, config: ExperimentConfig, knobs: Mapping[str, object]
) -> List[Tuple[str, PolicySpec]]:
    if ablation == "loading":
        return _loading_variants(config)
    if ablation == "eviction":
        return _eviction_variants(config, knobs["eviction_policies"])
    if ablation == "flow_method":
        return _flow_method_variants(config)
    if ablation == "benefit":
        return _benefit_variants(config, knobs["windows"], knobs["alphas"])
    raise ValueError(f"unknown ablation {ablation!r}; known: {DEFAULT_ABLATIONS}")


def run(
    config: Optional[ExperimentConfig] = None,
    ablations: Sequence[str] = DEFAULT_ABLATIONS,
    jobs: int = 1,
) -> Dict[str, AblationResult]:
    """Run the selected sweep-shaped ablations as one grid.

    Returns ``{ablation name: AblationResult}``; the per-variant numbers are
    identical to the individual ``run_*_ablation`` functions (same specs,
    same scenario).  The preshipping ablation needs the per-query outcome
    stream and therefore stays separate (:func:`run_preship_ablation`).
    """
    return execute(
        "ablations", config=config, knobs={"ablations": tuple(ablations)}, jobs=jobs
    )


def _summarise(context: ExperimentContext) -> Dict[str, AblationResult]:
    results: Dict[str, AblationResult] = {}
    for ablation in context.knobs["ablations"]:
        result = AblationResult()
        for point_result in context.sweep.points:
            if point_result.point.tag("ablation") == ablation:
                result.record(point_result.point.tag("label"), point_result.run)
        results[ablation] = result
    return results


@register_experiment(
    name="ablations",
    title="Design-choice ablations (loading, eviction, max-flow, Benefit knobs)",
    paper_ref="(ours)",
    description=(
        "Quantifies the paper's undocumented design decisions on the "
        "standard scenario: randomized vs counter loading, GDS vs "
        "LRU/LFU/Landlord eviction, Edmonds-Karp vs Dinic, and Benefit's "
        "window/alpha sensitivity -- all as one sweep grid."
    ),
    knobs={
        "ablations": DEFAULT_ABLATIONS,
        "eviction_policies": DEFAULT_EVICTION_POLICIES,
        "windows": DEFAULT_WINDOWS,
        "alphas": DEFAULT_ALPHAS,
    },
    summarise=_summarise,
    format_result=format_all,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    # Built in the parent: the per-variant cache capacity needs the
    # catalogue's total size before any point can be constructed.
    scenario = ScenarioSpec(config).build()
    engine = _engine_config(config)
    points: List[SweepPoint] = []
    for ablation in knobs["ablations"]:
        points.extend(
            SweepPoint(
                key=f"{ablation}:{spec.name}",
                spec=spec,
                cache_capacity=scenario.cache_capacity,
                engine=engine,
                seed=config.seed,
                tags=(("ablation", ablation), ("label", label)),
            )
            for label, spec in _variants_for(ablation, config, knobs)
        )
    return ExperimentGrid(
        points=tuple(points),
        scenarios={DEFAULT_SCENARIO: InlineScenario(scenario.catalog, scenario.trace)},
    )
