"""Experiment E8 -- ablations of Delta's design choices (ours).

The paper motivates several design decisions without isolating their impact.
This experiment quantifies them on the standard scenario:

* **Loading mechanism** -- randomized cost attribution (the paper's choice,
  space-efficient) vs. explicit per-object counters (the behaviour it
  emulates in expectation).
* **Eviction policy** -- Greedy-Dual-Size (the paper's choice) vs. LRU, LFU
  and Landlord.
* **Max-flow solver** -- Edmonds-Karp (named in the paper) vs. Dinic;
  decisions must be identical, only runtime differs, so this doubles as a
  correctness cross-check.
* **Benefit window and smoothing** -- sensitivity of the Benefit baseline to
  its two tuning knobs, supporting the paper's point that heuristic
  approaches are brittle.
* **Preshipping** -- the response-time extension sketched in the paper's
  discussion: proactively pushing updates for recently used cached objects
  reduces the fraction of queries delayed by synchronous update shipping, at
  the cost of some extra update traffic.

Every variant is a picklable :class:`repro.sim.runner.PolicySpec` built with
:func:`repro.sim.runner.vcover_spec` / :func:`repro.sim.runner.benefit_spec`,
and each ablation runs its variants as one :class:`repro.sim.sweep.SweepRunner`
sweep, so ``jobs > 1`` runs them in parallel worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.benefit import BenefitConfig
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.experiments.config import ExperimentConfig, Scenario, build_scenario
from repro.network.latency import LatencyModel, ResponseTimeSummary, summarise_response_times
from repro.network.link import NetworkLink
from repro.repository.server import Repository
from repro.sim.engine import EngineConfig
from repro.sim.results import RunResult
from repro.sim.runner import PolicySpec, benefit_spec, vcover_spec
from repro.sim.sweep import DEFAULT_SCENARIO, InlineScenario, SweepPoint, SweepRunner
from repro.workload.trace import QueryEvent, UpdateEvent


@dataclass
class AblationResult:
    """Final measured traffic for every ablated variant."""

    #: variant label -> final measured traffic.
    traffic: Dict[str, float] = field(default_factory=dict)
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def record(self, label: str, run_result: RunResult) -> None:
        """Add one variant's outcome."""
        self.traffic[label] = run_result.measured_traffic
        self.runs[label] = run_result

    def relative_to(self, baseline: str) -> Dict[str, float]:
        """Every variant's traffic normalised to a baseline variant."""
        base = self.traffic[baseline]
        if base == 0:
            return {label: float("inf") for label in self.traffic}
        return {label: value / base for label, value in self.traffic.items()}


def _engine_config(config: ExperimentConfig) -> EngineConfig:
    return EngineConfig(sample_every=config.sample_every, measure_from=config.measure_from)


def _run_variants(
    variants: Sequence[Tuple[str, PolicySpec]],
    config: ExperimentConfig,
    scenario: Scenario,
    jobs: int,
) -> AblationResult:
    """Run labelled policy variants over one scenario as a single sweep."""
    points = [
        SweepPoint(
            key=spec.name,
            spec=spec,
            cache_capacity=scenario.cache_capacity,
            engine=_engine_config(config),
            seed=config.seed,
            tags=(("label", label),),
        )
        for label, spec in variants
    ]
    sweep = SweepRunner(jobs=jobs).run(
        points,
        scenarios={DEFAULT_SCENARIO: InlineScenario(scenario.catalog, scenario.trace)},
    )
    result = AblationResult()
    for point_result in sweep.points:
        result.record(point_result.point.tag("label"), point_result.run)
    return result


def run_loading_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    jobs: int = 1,
) -> AblationResult:
    """Randomized vs counter-based loading in the LoadManager."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    variants = [
        (
            label,
            vcover_spec(
                VCoverConfig(randomized_loading=randomized), name=f"vcover-{label}"
            ),
        )
        for label, randomized in (("randomized", True), ("counter", False))
    ]
    return _run_variants(variants, config, scenario, jobs)


def run_eviction_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    policies: Sequence[str] = ("gds", "lru", "lfu", "landlord"),
    jobs: int = 1,
) -> AblationResult:
    """GDS vs LRU vs LFU vs Landlord as the LoadManager's object cache."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    variants = [
        (name, vcover_spec(VCoverConfig(eviction_policy=name), name=f"vcover-{name}"))
        for name in policies
    ]
    return _run_variants(variants, config, scenario, jobs)


def run_flow_method_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    jobs: int = 1,
) -> AblationResult:
    """Edmonds-Karp vs Dinic in the UpdateManager (results must agree)."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    variants = [
        (method, vcover_spec(VCoverConfig(flow_method=method), name=f"vcover-{method}"))
        for method in ("edmonds-karp", "dinic")
    ]
    return _run_variants(variants, config, scenario, jobs)


def run_benefit_sensitivity(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    windows: Sequence[int] = (250, 500, 1000, 2000),
    alphas: Sequence[float] = (0.1, 0.3, 0.6, 0.9),
    jobs: int = 1,
) -> AblationResult:
    """Benefit's sensitivity to its window size and smoothing parameter."""
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    variants = [
        (
            f"window={window}",
            benefit_spec(BenefitConfig(window_size=window), name=f"benefit-w{window}"),
        )
        for window in windows
    ]
    variants.extend(
        (
            f"alpha={alpha}",
            benefit_spec(
                BenefitConfig(window_size=config.benefit_window, alpha=alpha),
                name=f"benefit-a{alpha}",
            ),
        )
        for alpha in alphas
    )
    return _run_variants(variants, config, scenario, jobs)


@dataclass
class PreshipVariantResult:
    """Traffic plus response-time summary for one preshipping setting."""

    total_traffic: float
    response_times: ResponseTimeSummary


def run_preship_ablation(
    config: Optional[ExperimentConfig] = None,
    scenario: Optional[Scenario] = None,
    latency_model: Optional[LatencyModel] = None,
) -> Dict[str, PreshipVariantResult]:
    """Compare VCover with and without preshipping (traffic and latency).

    Preshipping is the paper's discussion-section extension: it cannot reduce
    traffic (it only ships updates earlier, sometimes unnecessarily) but it
    reduces the fraction of queries that must wait for synchronous update
    shipping before they can be answered at the cache.

    Runs serially: it needs the per-query outcome stream for the latency
    summary, which the sweep runner's aggregated results do not carry.
    """
    config = config or ExperimentConfig()
    scenario = scenario or build_scenario(config)
    latency_model = latency_model or LatencyModel()
    results: Dict[str, PreshipVariantResult] = {}
    for label, preship in (("baseline", False), ("preship", True)):
        repository = Repository(scenario.catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository, scenario.cache_capacity, link, VCoverConfig(preship=preship)
        )
        outcomes = []
        for event in scenario.trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            elif isinstance(event, QueryEvent):
                outcomes.append(policy.on_query(event.query))
        results[label] = PreshipVariantResult(
            total_traffic=link.total_cost,
            response_times=summarise_response_times(outcomes, latency_model),
        )
    return results


def format_table(title: str, result: AblationResult) -> str:
    """Fixed-width table of variant traffic."""
    lines = [title, f"{'variant':<20} {'traffic (MB)':>14}"]
    for label, value in result.traffic.items():
        lines.append(f"{label:<20} {value:>14.1f}")
    return "\n".join(lines)
