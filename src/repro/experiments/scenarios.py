"""Experiments E10-E12 -- scenario-diversity workloads (beyond the paper).

The paper's evaluation replays one workload family (evolving hotspots over
an SDSS-shaped catalogue).  Context-aware middleware surveys stress that
middleware evaluation lives or dies on workload diversity, and adversarial
traffic shapes are exactly where smoothing policies break: these three
experiments compare the policy set under the scenario models of
:mod:`repro.workload.scenarios`:

* ``flash_crowd`` -- sudden hotspot migration,
* ``diurnal`` -- day/night load cycles with anti-phase update traffic,
* ``update_storm`` -- correlated update bursts on the cached hotspot,
* ``cache_adversary`` -- eviction-busting cyclic/scan access sized just
  past the cache capacity.

All three run their grid points with ``streaming=True`` by default: the
workers replay the lazily-generated model streams directly, demonstrating
the constant-memory pipeline end to end (results are byte-identical to a
materialised replay; the equivalence tests pin that).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint

#: Policies compared under every scenario model by default.
DEFAULT_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass
class ScenarioModelResult:
    """Policy comparison under one scenario-diversity workload model."""

    model: str
    comparison: ComparisonResult
    streaming: bool

    @property
    def vcover_over_nocache(self) -> float:
        """VCover traffic relative to NoCache (< 1 means caching still wins)."""
        return self.comparison.ratio("vcover", "nocache")


def format_report(result: ScenarioModelResult) -> str:
    """Comparison table plus the headline caching ratio for the model."""
    replay = "streaming" if result.streaming else "materialised"
    lines = [
        f"Scenario model: {result.model} ({replay} replay)",
        result.comparison.as_table(),
        f"vcover / nocache traffic: {result.vcover_over_nocache:.2f}x",
    ]
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> ScenarioModelResult:
    return ScenarioModelResult(
        # The grid builder pins the model regardless of the caller's config
        # (see _model_grid), so report the one that actually ran.
        model=context.extras["model"],
        comparison=context.sweep.comparison(),
        streaming=bool(context.knobs["streaming"]),
    )


def _model_grid(
    model: str, config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    """One point per policy over the model's (streaming) scenario source."""
    if config.workload_model != model:
        # The experiment names the model; a caller-supplied config keeps its
        # scale knobs but always runs the experiment's own workload shape.
        config = replace(config, workload_model=model)
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=knobs["policies"],
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    points = tuple(
        SweepPoint(
            key=spec.name,
            spec=spec,
            cache_fraction=config.cache_fraction,
            engine=engine,
            seed=config.seed,
            streaming=bool(knobs["streaming"]),
        )
        for spec in specs
    )
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: ScenarioSpec(config, name=model)},
        context={"model": model},
    )


def run(
    model: str = "flash_crowd",
    config: Optional[ExperimentConfig] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    streaming: bool = True,
    jobs: int = 1,
) -> ScenarioModelResult:
    """Run one scenario-model experiment by model name (back-compat face)."""
    return execute(
        model,
        config=config,
        knobs={"policies": tuple(policies), "streaming": streaming},
        jobs=jobs,
    )


@register_experiment(
    name="flash_crowd",
    title="Flash-crowd workload: sudden hotspot migration",
    paper_ref="beyond the paper",
    description=(
        "Compares the policy set under flash crowds that abruptly migrate "
        "the query hotspot to fresh sky regions; replayed through the "
        "streaming trace pipeline."
    ),
    config=ExperimentConfig(workload_model="flash_crowd"),
    knobs={"policies": DEFAULT_POLICIES, "streaming": True},
    summarise=_summarise,
    format_result=format_report,
)
def _flash_crowd_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    return _model_grid("flash_crowd", config, knobs)


@register_experiment(
    name="diurnal",
    title="Diurnal workload: day/night load cycles",
    paper_ref="beyond the paper",
    description=(
        "Compares the policy set under sinusoidal day cycles where query "
        "traffic peaks while update traffic troughs (and vice versa); "
        "replayed through the streaming trace pipeline."
    ),
    config=ExperimentConfig(workload_model="diurnal"),
    knobs={"policies": DEFAULT_POLICIES, "streaming": True},
    summarise=_summarise,
    format_result=format_report,
)
def _diurnal_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    return _model_grid("diurnal", config, knobs)


@register_experiment(
    name="update_storm",
    title="Update-storm workload: correlated update bursts",
    paper_ref="beyond the paper",
    description=(
        "Compares the policy set under bursts of correlated updates that "
        "hammer contiguous sky blocks -- half the time the query hotspot "
        "itself; replayed through the streaming trace pipeline."
    ),
    config=ExperimentConfig(workload_model="update_storm"),
    knobs={"policies": DEFAULT_POLICIES, "streaming": True},
    summarise=_summarise,
    format_result=format_report,
)
def _update_storm_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    return _model_grid("update_storm", config, knobs)


@register_experiment(
    name="cache_adversary",
    title="Cache-adversary workload: eviction-busting cyclic scans",
    paper_ref="beyond the paper",
    description=(
        "Compares the policy set under a cyclic working set sized just past "
        "the cache capacity, punctured by sequential catalogue scans -- the "
        "recency-eviction worst case; replayed through the streaming trace "
        "pipeline."
    ),
    config=ExperimentConfig(workload_model="cache_adversary"),
    knobs={"policies": DEFAULT_POLICIES, "streaming": True},
    summarise=_summarise,
    format_result=format_report,
)
def _cache_adversary_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    return _model_grid("cache_adversary", config, knobs)
