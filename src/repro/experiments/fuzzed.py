"""Experiment E13 -- fuzzed scenario compositions (beyond the paper).

The ``fuzzed`` experiment turns the adversarial scenario fuzzer
(:mod:`repro.workload.fuzz`) into a registry citizen: one run draws a
multi-segment composition from the config seed (so ``repro experiment run
fuzzed --set seed=K`` replays draw ``K`` exactly), checks the structural
stream invariants, replays the composition against the policy roster
through the streaming pipeline, and -- the fuzzer's whole point -- *flags*
any draw where VCover loses to the NoCache yardstick by saving the
composition as a minimal repro file (:func:`repro.workload.fuzz.save_regression`)
under the ``repro_dir`` knob.  A saved file replays with
``repro.workload.fuzz.load_composition`` or the docs walkthrough, so a
policy regression found by fuzzing is pinned as data, not as a seed that a
refactor may silently remap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    register_experiment,
)
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint
from repro.workload.fuzz import (
    CompositionSpec,
    check_stream_invariants,
    draw_composition_spec,
    save_regression,
)

#: Policies compared for every fuzzed draw by default.
DEFAULT_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass
class FuzzedScenarioResult:
    """Policy comparison under one fuzzed scenario composition."""

    spec: CompositionSpec
    comparison: ComparisonResult
    streaming: bool
    #: Minimal repro file saved because VCover lost to NoCache (else None).
    regression_path: Optional[Path] = None

    @property
    def vcover_over_nocache(self) -> float:
        """VCover traffic relative to NoCache (< 1 means caching wins)."""
        return self.comparison.ratio("vcover", "nocache")

    @property
    def models(self) -> str:
        """The drawn segment chain, e.g. ``diurnal+update_storm``."""
        return "+".join(segment.model for segment in self.spec.segments)


def maybe_save_regression(
    spec: CompositionSpec,
    comparison: ComparisonResult,
    directory: Optional[Path],
) -> Optional[Path]:
    """Save ``spec`` as a repro file iff VCover lost to NoCache.

    The comparison only needs ``traffic_of``, so tests can drive this with a
    stub.  Returns the saved path, or ``None`` when VCover held up (or when
    either policy is missing from the comparison, or saving is disabled).
    """
    try:
        vcover = comparison.traffic_of("vcover")
        nocache = comparison.traffic_of("nocache")
    except KeyError:
        return None
    if vcover <= nocache or directory is None:
        return None
    return save_regression(spec, directory)


def format_report(result: FuzzedScenarioResult) -> str:
    """Comparison table plus the drawn composition and the regression flag."""
    replay = "streaming" if result.streaming else "materialised"
    lines = [
        f"Fuzzed composition: {result.spec.name} "
        f"[{result.models}] ({replay} replay)",
        f"  seed={result.spec.seed} object_count={result.spec.object_count} "
        f"cache_fraction={result.spec.cache_fraction} "
        f"events={result.spec.query_count}q/{result.spec.update_count}u",
        result.comparison.as_table(),
        f"vcover / nocache traffic: {result.vcover_over_nocache:.2f}x",
    ]
    if result.regression_path is not None:
        lines.append(
            f"REGRESSION: vcover lost to nocache; minimal repro saved to "
            f"{result.regression_path}"
        )
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> FuzzedScenarioResult:
    spec: CompositionSpec = context.extras["composition"]
    comparison = context.sweep.comparison()
    repro_dir = context.knobs["repro_dir"]
    return FuzzedScenarioResult(
        spec=spec,
        comparison=comparison,
        streaming=bool(context.knobs["streaming"]),
        regression_path=maybe_save_regression(
            spec, comparison, Path(repro_dir) if repro_dir else None
        ),
    )


@register_experiment(
    name="fuzzed",
    title="Fuzzed workload: random multi-model compositions",
    paper_ref="beyond the paper",
    description=(
        "Draws a random multi-segment composition of the scenario models "
        "(flash crowd, diurnal, update storm, cache adversary) from the "
        "config seed, verifies the structural stream invariants, and "
        "compares the policy set over it; draws where VCover loses to the "
        "NoCache yardstick are saved as minimal repro files."
    ),
    knobs={
        "policies": DEFAULT_POLICIES,
        "streaming": True,
        "max_segments": 3,
        #: Directory regression repro files are saved into ("" disables).
        "repro_dir": "fuzz-repros",
    },
    summarise=_summarise,
    format_result=format_report,
)
def _fuzzed_grid(
    config: ExperimentConfig, knobs: Mapping[str, object]
) -> ExperimentGrid:
    """One point per policy over the composition drawn from the config seed."""
    composition = draw_composition_spec(
        config.seed, max_segments=int(knobs["max_segments"])
    )
    # Every draw must be structurally sound before any policy sees it; a
    # violation here is a fuzzer bug, not a policy regression.
    catalog, stream = composition.realise_stream()
    check_stream_invariants(stream, catalog)
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=knobs["policies"],
    )
    engine = EngineConfig(sample_every=config.sample_every)
    points = tuple(
        SweepPoint(
            key=spec.name,
            spec=spec,
            cache_fraction=composition.cache_fraction,
            engine=engine,
            seed=composition.seed,
            streaming=bool(knobs["streaming"]),
        )
        for spec in specs
    )
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: composition},
        context={"composition": composition},
    )
