"""Experiment E4 -- choice of object granularity (Figure 8b).

Figure 8(b) replays the same workload against partitionings of the sky into
10, 20, 68, 91, 134, 285 and 532 data objects and plots VCover's cumulative
traffic for each.  The paper's finding: performance improves sharply as
objects get smaller (less cache space is wasted, hotspot decoupling is finer)
down to roughly the 91-object level, then slowly degrades again because very
small objects make it less likely that a whole query footprint is resident.

Because the partitionings differ, the query/update traces are regenerated per
level from the *same* generator seeds and the same total traffic volumes, so
the only thing that changes is the granularity at which the sky is cut --
mirroring how the paper re-partitions the same underlying table.

Each level is one grid point of a :class:`repro.sim.sweep.SweepRunner` sweep
(the scenario is rebuilt inside the worker from its config recipe), so
``jobs > 1`` replays the levels in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.repository.catalog import PARTITION_LEVELS
from repro.sim.engine import EngineConfig
from repro.sim.results import RunResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import SweepPoint


@dataclass
class GranularityResult:
    """VCover's traffic for each object-count level."""

    object_counts: List[int]
    #: object count -> final measured traffic.
    traffic: Dict[int, float]
    #: object count -> cumulative series (event index, traffic).
    series: Dict[int, List[Tuple[int, float]]]
    runs: Dict[int, RunResult] = field(default_factory=dict)

    def best_level(self) -> int:
        """The object count with the lowest final traffic."""
        return min(self.traffic, key=self.traffic.get)


def run(
    config: Optional[ExperimentConfig] = None,
    object_counts: Sequence[int] = PARTITION_LEVELS,
    policy: str = "vcover",
    jobs: int = 1,
) -> GranularityResult:
    """Replay the workload against every requested partitioning level."""
    return execute(
        "fig8b",
        config=config,
        knobs={"object_counts": tuple(object_counts), "policy": policy},
        jobs=jobs,
    )


def format_table(result: GranularityResult) -> str:
    """Fixed-width table of final traffic per object-count level."""
    lines = ["Figure 8(b) -- VCover traffic for different object granularities"]
    lines.append(f"{'objects':>10} {'traffic (MB)':>14} {'cache answers':>14}")
    for object_count in result.object_counts:
        run_result = result.runs[object_count]
        lines.append(
            f"{object_count:>10} {result.traffic[object_count]:>14.1f} "
            f"{run_result.cache_answer_fraction:>14.2%}"
        )
    lines.append(f"best level: {result.best_level()} objects")
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> GranularityResult:
    traffic: Dict[int, float] = {}
    series: Dict[int, List[Tuple[int, float]]] = {}
    runs: Dict[int, RunResult] = {}
    for point_result in context.sweep.points:
        object_count = point_result.point.tag("object_count")
        run_result = point_result.run
        traffic[object_count] = run_result.measured_traffic
        series[object_count] = run_result.time_series.as_rows()
        runs[object_count] = run_result
    return GranularityResult(
        object_counts=list(context.knobs["object_counts"]),
        traffic=traffic,
        series=series,
        runs=runs,
    )


@register_experiment(
    name="fig8b",
    title="Object-granularity sweep (sky partitioning levels)",
    paper_ref="Figure 8(b)",
    description=(
        "Replays the same workload against partitionings of the sky into "
        "10..532 data objects; traffic improves sharply down to ~91 objects "
        "and then slowly degrades."
    ),
    knobs={"object_counts": PARTITION_LEVELS, "policy": "vcover"},
    summarise=_summarise,
    format_result=format_table,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    spec = default_policy_specs(include=(knobs["policy"],))[0]
    scenarios: Dict[str, ScenarioSpec] = {}
    points: List[SweepPoint] = []
    for object_count in knobs["object_counts"]:
        level_config = replace(config, object_count=object_count)
        scenario_name = f"objects-{object_count}"
        scenarios[scenario_name] = ScenarioSpec(level_config, name=scenario_name)
        points.append(
            SweepPoint(
                key=f"{spec.name}-{object_count}",
                spec=spec,
                scenario=scenario_name,
                cache_fraction=config.cache_fraction,
                engine=EngineConfig(
                    sample_every=config.sample_every,
                    measure_from=level_config.measure_from,
                ),
                seed=config.seed,
                tags=(("object_count", object_count),),
            )
        )
    return ExperimentGrid(points=tuple(points), scenarios=scenarios)
