"""Experiment E9 -- scaling the cache fleet (ours).

The paper evaluates one middleware cache; its deployment setting has many
client sites, each fronted by its own cache, all sharing one repository.
This experiment asks how VCover behaves as that fleet grows: the same
workload is partitioned across 1, 2, 4 and 8 sites (sky-region slices by
default), updates are broadcast to every site, and each site runs its own
policy instance over its own link.

Compared policies: VCover with its default GDS eviction, VCover over
LRU/Landlord eviction (does the paper's eviction choice still matter when
each site sees a thinner query stream?), and the NoCache yardstick (whose
traffic is independent of the site count -- every query is shipped
regardless of where it lands).  The headline check: VCover's fleet-wide
traffic stays at or below the yardstick at every site count.

One ``site count x policy`` sweep grid; every point is an independent
multi-cache replay, so ``jobs=N`` fans the grid out over worker processes
with results identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.vcover import VCoverConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import RunResult
from repro.sim.runner import PolicySpec, nocache_spec, vcover_spec
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint
from repro.topology.spec import TopologySpec

#: Site counts the experiment sweeps (the fleet-growth axis).
DEFAULT_SITE_COUNTS = (1, 2, 4, 8)

#: Policies compared at every site count.
DEFAULT_POLICIES = ("vcover", "vcover-lru", "vcover-landlord", "nocache")

#: The yardstick policy VCover is held against.
YARDSTICK = "nocache"


def _policy_spec(name: str) -> PolicySpec:
    """Resolve one experiment policy name to a picklable spec."""
    if name == "vcover":
        return vcover_spec()
    if name == "vcover-lru":
        return vcover_spec(VCoverConfig(eviction_policy="lru"), name="vcover-lru")
    if name == "vcover-landlord":
        return vcover_spec(
            VCoverConfig(eviction_policy="landlord"), name="vcover-landlord"
        )
    if name == "nocache":
        return nocache_spec()
    raise ValueError(
        f"unknown multisite policy {name!r}; known: {DEFAULT_POLICIES}"
    )


@dataclass
class MultisiteResult:
    """Fleet-wide traffic per policy and site count."""

    site_counts: List[int]
    policies: List[str]
    strategy: str
    #: Aggregate run (fleet-wide) per ``(policy, site_count)``.
    runs: Dict[Tuple[str, int], RunResult] = field(default_factory=dict)

    def traffic(self, policy: str, site_count: int, measured_only: bool = True) -> float:
        """Fleet-wide traffic of one grid point."""
        run = self.runs[(policy, site_count)]
        return run.measured_traffic if measured_only else run.total_traffic

    def site_traffic(self, policy: str, site_count: int) -> List[float]:
        """Per-site measured traffic of one grid point (from folded stats)."""
        run = self.runs[(policy, site_count)]
        return [
            run.policy_stats[f"site{site}_measured_traffic"]
            for site in range(site_count)
        ]

    def vcover_within_yardstick(self, tolerance: float = 0.0) -> bool:
        """Whether VCover stays at or below the yardstick at every site count."""
        if "vcover" not in self.policies or YARDSTICK not in self.policies:
            return True
        return all(
            self.traffic("vcover", count)
            <= self.traffic(YARDSTICK, count) * (1.0 + tolerance)
            for count in self.site_counts
        )

    def summary(self) -> Dict[str, float]:
        """Flat summary for reports and benchmark extra_info."""
        data: Dict[str, float] = {}
        for (policy, count), run in self.runs.items():
            data[f"{policy}_x{count}_traffic"] = run.measured_traffic
            data[f"{policy}_x{count}_cache_answer_fraction"] = run.cache_answer_fraction
        return data


def run(
    config: Optional[ExperimentConfig] = None,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    strategy: str = "region",
    jobs: int = 1,
) -> MultisiteResult:
    """Run the fleet-growth grid.

    Parameters
    ----------
    config:
        Scenario configuration; its ``cache_fraction`` sizes every site's
        cache (each site gets that fraction of the server).
    site_counts:
        Fleet sizes to sweep.
    policies:
        Policy names from :data:`DEFAULT_POLICIES`.
    strategy:
        Object-to-site assignment strategy (``"region"`` or ``"affinity"``).
    jobs:
        Worker processes to fan the grid out over (1 = serial).
    """
    return execute(
        "multisite",
        config=config,
        knobs={
            "site_counts": tuple(site_counts),
            "policies": tuple(policies),
            "strategy": strategy,
        },
        jobs=jobs,
    )


def format_table(result: MultisiteResult) -> str:
    """Measured fleet traffic (MB): one row per site count, one column per policy."""
    width = max(12, *(len(name) + 2 for name in result.policies))
    header = f"{'sites':<6}" + "".join(f"{name:>{width}}" for name in result.policies)
    lines = [f"Fleet growth (strategy={result.strategy})", header]
    for count in result.site_counts:
        row = f"{count:<6}"
        for policy in result.policies:
            row += f"{result.traffic(policy, count):>{width}.1f}"
        lines.append(row)
    verdict = "yes" if result.vcover_within_yardstick() else "NO"
    lines.append(f"vcover <= {YARDSTICK} at every site count: {verdict}")
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> MultisiteResult:
    result = MultisiteResult(
        site_counts=list(context.knobs["site_counts"]),
        policies=list(context.knobs["policies"]),
        strategy=context.knobs["strategy"],
    )
    for point_result in context.sweep.points:
        policy = point_result.point.tag("policy")
        count = point_result.point.tag("sites")
        result.runs[(policy, count)] = point_result.run
    return result


@register_experiment(
    name="multisite",
    title="Fleet growth: one workload over 1/2/4/8 cache sites",
    paper_ref="(ours)",
    description=(
        "Partitions the query stream across a growing fleet of caches "
        "sharing one repository (updates broadcast) and checks that "
        "VCover's fleet-wide traffic stays at or below the NoCache "
        "yardstick at every site count."
    ),
    knobs={
        "site_counts": DEFAULT_SITE_COUNTS,
        "policies": DEFAULT_POLICIES,
        "strategy": "region",
    },
    summarise=_summarise,
    format_result=format_table,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    specs = [(name, _policy_spec(name)) for name in knobs["policies"]]
    points = tuple(
        SweepPoint(
            key=f"{name}-x{count}",
            spec=spec,
            engine=engine,
            seed=config.seed,
            tags=(("sites", count), ("policy", name)),
            topology=TopologySpec.uniform(
                spec,
                count,
                cache_fraction=config.cache_fraction,
                strategy=knobs["strategy"],
            ),
        )
        for count in knobs["site_counts"]
        for name, spec in specs
    )
    # The recipe, not a built trace: workers rebuild it deterministically,
    # memoised per process, so nothing big crosses the pool boundary.
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: ScenarioSpec(config)},
    )
