"""Declarative scenario specification.

A :class:`ScenarioSpec` is the one representation of "a workload scenario"
shared by the experiment registry, the sweep runner, the CLI and config
files.  It subsumes the two representations that used to coexist:

* the *recipe* path (formerly ``ConfiguredScenario``): only the small,
  picklable spec crosses a process boundary and each worker rebuilds the
  catalogue + trace deterministically from its seeds, memoised per process;
* the *prebuilt* path (:class:`repro.sim.sweep.InlineScenario`): when the
  caller already holds a built scenario, :meth:`ScenarioSpec.inline` derives
  the inline form from the same spec in one place, so the two paths can
  never drift apart (a regression test asserts they build byte-identical
  traces for the same knobs).

Because the spec is pure data, scenarios can also live in JSON or TOML
files: :func:`load_scenario` reads one back, validating every knob against
:class:`repro.experiments.config.ExperimentConfig` and raising
:class:`ScenarioError` with the offending key on any mismatch.
"""

from __future__ import annotations

import json
from dataclasses import asdict, astuple, dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

from repro.experiments.config import (
    WORKLOAD_MODELS,
    ExperimentConfig,
    Scenario,
    build_scenario,
    build_scenario_stream,
)
from repro.repository.objects import ObjectCatalog
from repro.sim.sweep import InlineScenario, ScenarioSource
from repro.workload.trace import Trace, TraceStream

#: Name used when a spec (or scenario file) does not set one.
DEFAULT_SCENARIO_NAME = "default"

#: Field names an ExperimentConfig accepts (the valid scenario knobs).
CONFIG_FIELDS = tuple(f.name for f in fields(ExperimentConfig))

#: Declared annotation per config field ("int" or "float"; the module uses
#: postponed evaluation, so dataclass field types are strings).
_CONFIG_FIELD_TYPES = {f.name: str(f.type) for f in fields(ExperimentConfig)}


class ScenarioError(ValueError):
    """A scenario description is malformed (unknown knob, bad value, ...)."""


@dataclass(frozen=True)
class ScenarioSpec(ScenarioSource):
    """A scenario as pure data: a name plus the :class:`ExperimentConfig` knobs.

    The spec is frozen and picklable, so it can be a sweep scenario source
    directly (workers rebuild it via :meth:`realise`, memoised through
    :meth:`cache_key`), round-trip through :meth:`to_dict`/:meth:`from_dict`,
    and live in JSON/TOML files (see :func:`load_scenario`).
    """

    config: ExperimentConfig
    name: str = DEFAULT_SCENARIO_NAME

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_knobs(cls, name: str = DEFAULT_SCENARIO_NAME, **knobs: Any) -> "ScenarioSpec":
        """A spec from individual config knobs (defaults for the rest)."""
        return cls(config=config_from_mapping(knobs), name=name)

    def scaled(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given config knobs replaced."""
        return replace(self, config=self.config.scaled(**overrides))

    # ------------------------------------------------------------------
    # ScenarioSource contract
    # ------------------------------------------------------------------
    def realise(self) -> Tuple[ObjectCatalog, Trace]:
        """Build the catalogue and trace (deterministic in the config seeds)."""
        scenario = self.build()
        return scenario.catalog, scenario.trace

    def realise_stream(self) -> Tuple[ObjectCatalog, TraceStream]:
        """The catalogue plus a lazy event source for the same scenario.

        The stream generates the byte-identical event sequence
        :meth:`realise` would materialise (see
        :func:`repro.experiments.config.build_scenario_stream`), so sweep
        points flagged ``streaming=True`` replay it in constant memory with
        identical results.
        """
        return build_scenario_stream(self.config)

    def cache_key(self) -> Tuple[object, ...]:
        """Hashable identity of the build recipe (all config knobs).

        The name is deliberately excluded: it is a label, not a build input,
        so same-config specs under different names (or a legacy
        ``ConfiguredScenario``) memoise to one build per worker.
        """
        return ("scenario", astuple(self.config))

    # ------------------------------------------------------------------
    # Derived forms
    # ------------------------------------------------------------------
    def build(self) -> Scenario:
        """The fully built :class:`~repro.experiments.config.Scenario`."""
        return build_scenario(self.config)

    def inline(self) -> InlineScenario:
        """The prebuilt (:class:`InlineScenario`) form of this spec.

        This is the single place the inline representation is derived from
        the declarative one; experiments that want the trace built once in
        the parent process call this instead of hand-wiring
        ``InlineScenario(catalog, trace)`` from a config.
        """
        catalog, trace = self.realise()
        return InlineScenario(catalog, trace)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable description (``from_dict`` round-trips it)."""
        return {"name": self.name, "config": asdict(self.config)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a hand-written file).

        Accepts either the nested form ``{"name": ..., "config": {...}}`` or
        a flat mapping of config knobs with an optional ``"name"`` key.
        Raises :class:`ScenarioError` on unknown knobs or invalid values.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario description must be a mapping, got {type(data).__name__}"
            )
        data = dict(data)
        name = data.pop("name", DEFAULT_SCENARIO_NAME)
        if not isinstance(name, str) or not name:
            raise ScenarioError(f"scenario name must be a non-empty string, got {name!r}")
        if "config" in data:
            knobs = data.pop("config")
            if data:
                raise ScenarioError(
                    f"unexpected top-level keys {sorted(data)}; a nested scenario "
                    "holds only 'name' and 'config'"
                )
            if not isinstance(knobs, Mapping):
                raise ScenarioError(
                    f"'config' must be a mapping of knobs, got {type(knobs).__name__}"
                )
        else:
            knobs = data
        return cls(config=config_from_mapping(knobs), name=name)


def config_from_mapping(knobs: Mapping[str, object]) -> ExperimentConfig:
    """Validate a knob mapping into an :class:`ExperimentConfig`."""
    unknown = sorted(set(knobs) - set(CONFIG_FIELDS))
    if unknown:
        raise ScenarioError(
            f"unknown scenario knob(s) {unknown}; valid knobs: {sorted(CONFIG_FIELDS)}"
        )
    for key, value in knobs.items():
        declared = _CONFIG_FIELD_TYPES.get(key)
        if declared == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ScenarioError(
                    f"scenario knob {key!r} must be an integer, got {value!r}"
                )
        elif declared == "str":
            if not isinstance(value, str):
                raise ScenarioError(
                    f"scenario knob {key!r} must be a string, got {value!r}"
                )
            if key == "workload_model" and value not in WORKLOAD_MODELS:
                # Report the offending key *and* value at the boundary
                # instead of letting ExperimentConfig's ValueError surface
                # as a generic "invalid scenario config" wrapper.
                raise ScenarioError(
                    f"unknown workload_model {value!r} for scenario knob "
                    f"{key!r}; known models: {', '.join(WORKLOAD_MODELS)}"
                )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"scenario knob {key!r} must be a number, got {value!r}"
            )
    try:
        return ExperimentConfig(**knobs)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"invalid scenario config: {exc}") from exc


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario spec from a JSON or TOML file.

    The format is chosen by suffix (``.toml`` = TOML, anything else = JSON).
    A file is either the nested ``{"name": ..., "config": {...}}`` form or a
    flat mapping of config knobs; unnamed scenarios take the file stem as
    their name.  Raises :class:`ScenarioError` on unreadable or invalid
    content (including a missing file).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            raise ScenarioError(
                f"cannot load {path}: TOML scenario files need Python 3.11+ "
                "(tomllib); use JSON instead"
            ) from None

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path} is not valid TOML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path} is not valid JSON: {exc}") from exc
    if isinstance(data, Mapping) and "name" not in data:
        data = {"name": path.stem, **data}
    return ScenarioSpec.from_dict(data)


def save_scenario(spec: ScenarioSpec, path: Union[str, Path]) -> Path:
    """Write a spec as a JSON scenario file (the :func:`load_scenario` format)."""
    path = Path(path)
    path.write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
