"""Experiment E3 -- varying the number of updates (Figure 8a).

Figure 8(a) keeps the query workload fixed and sweeps the number of updates
(the paper sweeps 125k..375k against 250k queries), reporting each policy's
*final* traffic.  The qualitative findings to regenerate:

* NoCache is flat -- it never ships updates, so more updates cost it nothing,
* Replica grows linearly -- it ships every update, so tripling the updates
  triples its cost,
* VCover, Benefit and SOptimal grow only slightly -- they compensate for a
  hotter update stream by caching fewer (or different) objects.

The sweep is expressed as multipliers of the baseline update count; update
*traffic* scales proportionally with update count, as in the paper (each
update's size distribution is unchanged; there are simply more of them).

Each multiplier defines its own scenario, so the grid is handed to
:class:`repro.sim.sweep.SweepRunner` as declarative recipes
(:class:`repro.experiments.spec.ScenarioSpec`): workers rebuild each
scenario deterministically from its seeds, memoised per process, and
``jobs > 1`` runs the ``multiplier x policy`` grid in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import SweepPoint

#: Default sweep: x0.5 .. x1.5 of the baseline update count (paper: 125k..375k
#: against a 250k baseline).
DEFAULT_MULTIPLIERS = (0.5, 0.75, 1.0, 1.25, 1.5)

#: Policies compared at every multiplier by default.
DEFAULT_POLICIES = ("nocache", "replica", "benefit", "vcover", "soptimal")


@dataclass
class UpdateSweepResult:
    """Final traffic per policy for each update-count multiplier."""

    multipliers: List[float]
    update_counts: List[int]
    #: policy name -> list of final measured traffic, one per multiplier.
    traffic: Dict[str, List[float]]
    comparisons: List[ComparisonResult] = field(default_factory=list)

    def growth(self, policy: str) -> float:
        """Ratio of the policy's traffic at the largest vs. smallest sweep point."""
        series = self.traffic[policy]
        if not series or series[0] == 0:
            return float("inf")
        return series[-1] / series[0]


def run(
    config: Optional[ExperimentConfig] = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    jobs: int = 1,
) -> UpdateSweepResult:
    """Run the update-count sweep."""
    return execute(
        "fig8a",
        config=config,
        knobs={"multipliers": tuple(multipliers), "policies": tuple(policies)},
        jobs=jobs,
    )


def format_table(result: UpdateSweepResult) -> str:
    """Fixed-width table: one row per policy, one column per update count."""
    header = f"{'policy':<10}" + "".join(f"{count:>12}" for count in result.update_counts)
    lines = ["Figure 8(a) -- final traffic (MB) for varying number of updates", header]
    for policy, series in result.traffic.items():
        lines.append(f"{policy:<10}" + "".join(f"{value:>12.1f}" for value in series))
    lines.append("")
    for policy in result.traffic:
        lines.append(f"growth x{result.multipliers[-1]/result.multipliers[0]:.1f} updates -> "
                     f"{policy}: x{result.growth(policy):.2f}")
    return "\n".join(lines)


def _swept_config(config: ExperimentConfig, multiplier: float) -> ExperimentConfig:
    """The per-multiplier scenario config (update traffic scales with count)."""
    return replace(
        config,
        update_count=int(round(config.update_count * multiplier)),
        # Update traffic scales with the number of updates (same per-update
        # size distribution), exactly as in the paper's sweep.
        update_traffic_fraction=config.update_traffic_fraction * multiplier,
    )


def _summarise(context: ExperimentContext) -> UpdateSweepResult:
    multipliers = context.knobs["multipliers"]
    policies = context.knobs["policies"]
    traffic: Dict[str, List[float]] = {name: [] for name in policies}
    comparisons: List[ComparisonResult] = []
    for multiplier in multipliers:
        comparison = context.sweep.comparison(multiplier=multiplier)
        comparisons.append(comparison)
        for name in policies:
            traffic[name].append(comparison.traffic_of(name))
    return UpdateSweepResult(
        multipliers=list(multipliers),
        update_counts=[
            _swept_config(context.config, multiplier).update_count
            for multiplier in multipliers
        ],
        traffic=traffic,
        comparisons=comparisons,
    )


@register_experiment(
    name="fig8a",
    title="Final traffic while sweeping the number of updates",
    paper_ref="Figure 8(a)",
    description=(
        "Keeps the query workload fixed and sweeps the update count; NoCache "
        "stays flat, Replica grows linearly, and the caching policies "
        "compensate with only slight growth."
    ),
    knobs={"multipliers": DEFAULT_MULTIPLIERS, "policies": DEFAULT_POLICIES},
    summarise=_summarise,
    format_result=format_table,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=knobs["policies"],
    )
    scenarios: Dict[str, ScenarioSpec] = {}
    points: List[SweepPoint] = []
    for multiplier in knobs["multipliers"]:
        swept = _swept_config(config, multiplier)
        scenario_name = f"updates-x{multiplier:g}"
        scenarios[scenario_name] = ScenarioSpec(swept, name=scenario_name)
        engine = EngineConfig(
            sample_every=config.sample_every, measure_from=swept.measure_from
        )
        points.extend(
            SweepPoint(
                key=f"{spec.name}-x{multiplier:g}",
                spec=spec,
                scenario=scenario_name,
                cache_fraction=config.cache_fraction,
                engine=engine,
                seed=config.seed,
                tags=(("multiplier", multiplier),),
            )
            for spec in specs
        )
    return ExperimentGrid(points=tuple(points), scenarios=scenarios)
