"""Experiment E1 -- workload characterisation (Figure 7a).

Figure 7(a) of the paper plots, for a sample of the trace, the object-ID
touched by every query (yellow dots) and update (blue diamonds) against the
event-sequence position.  The visual point is twofold: query hotspots and
update hotspots sit on *different* objects, and the queried objects *evolve*
over the trace.

This module regenerates the underlying data: the scatter points, the
per-object access counts for queries and updates, and two summary statistics
that make the figure's claims checkable without eyeballs:

* ``hotspot_overlap`` -- Jaccard overlap between the top-k query-hot and
  top-k update-hot objects (the paper's figure shows essentially disjoint
  sets, so this should be small),
* ``evolution_distance`` -- average Jaccard distance between the sets of
  queried objects in consecutive trace segments (positive means the queried
  set drifts, as the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.workload.trace import QueryEvent, Trace, UpdateEvent


@dataclass
class WorkloadCharacterisation:
    """The regenerated data behind Figure 7(a)."""

    #: (event_index, object_id) for every query access.
    query_points: List[Tuple[int, int]]
    #: (event_index, object_id) for every update.
    update_points: List[Tuple[int, int]]
    #: Top query-hot objects with access counts.
    query_hotspots: List[Tuple[int, int]]
    #: Top update-hot objects with update counts.
    update_hotspots: List[Tuple[int, int]]
    #: Jaccard overlap of the two top-k hotspot sets (0 = disjoint).
    hotspot_overlap: float
    #: Mean Jaccard distance between queried-object sets of consecutive segments.
    evolution_distance: float

    def scatter_sample(self, stride: int = 50) -> List[Tuple[int, int, str]]:
        """A thinned (event, object, kind) sample suitable for plotting."""
        sample: List[Tuple[int, int, str]] = []
        sample.extend(
            (event, obj, "query") for event, obj in self.query_points[::stride]
        )
        sample.extend(
            (event, obj, "update") for event, obj in self.update_points[::stride]
        )
        return sorted(sample)


def characterise_trace(trace: Trace, top: int = 6, segments: int = 8) -> WorkloadCharacterisation:
    """Compute the Figure 7(a) characterisation of an arbitrary trace."""
    query_points: List[Tuple[int, int]] = []
    update_points: List[Tuple[int, int]] = []
    for index, event in enumerate(trace):
        if isinstance(event, QueryEvent):
            for object_id in sorted(event.query.object_ids):
                query_points.append((index, object_id))
        elif isinstance(event, UpdateEvent):
            update_points.append((index, event.update.object_id))

    query_hot = trace.query_hotspots(top)
    update_hot = trace.update_hotspots(top)
    query_set = {object_id for object_id, _ in query_hot}
    update_set = {object_id for object_id, _ in update_hot}
    union = query_set | update_set
    overlap = len(query_set & update_set) / len(union) if union else 0.0

    # Evolution: Jaccard distance between queried sets of consecutive segments.
    segment_length = max(1, len(trace) // segments)
    segment_sets: List[set] = []
    for start in range(0, len(trace), segment_length):
        touched = set()
        for event in trace[start : start + segment_length]:
            if isinstance(event, QueryEvent):
                touched |= set(event.query.object_ids)
        if touched:
            segment_sets.append(touched)
    distances = []
    for earlier, later in zip(segment_sets, segment_sets[1:], strict=False):
        union_size = len(earlier | later)
        if union_size:
            distances.append(1.0 - len(earlier & later) / union_size)
    evolution = sum(distances) / len(distances) if distances else 0.0

    return WorkloadCharacterisation(
        query_points=query_points,
        update_points=update_points,
        query_hotspots=query_hot,
        update_hotspots=update_hot,
        hotspot_overlap=overlap,
        evolution_distance=evolution,
    )


def run(config: Optional[ExperimentConfig] = None) -> WorkloadCharacterisation:
    """Build the default scenario and characterise its trace."""
    return execute("fig7a", config=config)


def format_report(result: WorkloadCharacterisation) -> str:
    """Human-readable rows mirroring what Figure 7(a) conveys."""
    lines = ["Figure 7(a) -- workload characterisation"]
    lines.append(
        "query hotspots  : "
        + ", ".join(f"obj {oid} ({count} accesses)" for oid, count in result.query_hotspots)
    )
    lines.append(
        "update hotspots : "
        + ", ".join(f"obj {oid} ({count} updates)" for oid, count in result.update_hotspots)
    )
    lines.append(f"hotspot overlap (Jaccard)      : {result.hotspot_overlap:.2f}")
    lines.append(f"workload evolution (Jaccard dist): {result.evolution_distance:.2f}")
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> WorkloadCharacterisation:
    return characterise_trace(
        context.extras["scenario"].trace,
        top=context.knobs["top"],
        segments=context.knobs["segments"],
    )


@register_experiment(
    name="fig7a",
    title="Workload characterisation (hotspot overlap, evolution)",
    paper_ref="Figure 7(a)",
    description=(
        "Regenerates the figure's query/update scatter data plus two "
        "checkable statistics: Jaccard overlap of the query-hot vs "
        "update-hot object sets and the drift of the queried set over time."
    ),
    knobs={"top": 6, "segments": 8},
    summarise=_summarise,
    format_result=format_report,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    # Pure trace analysis: no sweep points, just the built scenario.
    return ExperimentGrid(context={"scenario": ScenarioSpec(config).build()})
