"""Experiment harness: one registered experiment per table/figure of the paper.

Every experiment module declares itself to the registry in
:mod:`repro.experiments.registry` via :func:`register_experiment`: a default
:class:`~repro.experiments.config.ExperimentConfig`, experiment-specific
knobs, a grid builder producing sweep points and scenario sources, and a
summarise hook.  One shared driver executes them all; each module also keeps
its ``run(...)`` function (a thin wrapper over the driver) plus a
``format_*`` helper producing the rows the paper reports.

Importing this package imports every experiment module, which populates the
registry -- :mod:`repro.api` relies on that.  The shared scenario layer lives
in :mod:`repro.experiments.spec` (:class:`ScenarioSpec`) and
:mod:`repro.experiments.config`; the mapping from paper figure/table to
module is documented in ``DESIGN.md`` and ``docs/experiments.md``.
"""

from repro.experiments import registry
from repro.experiments import (
    ablations,
    adaptive,
    cache_size,
    fig7a,
    fig7b,
    fig8a,
    fig8b,
    fuzzed,
    headline,
    multisite,
    scenarios,
    warmup,
)
from repro.experiments.config import (
    ExperimentConfig,
    Scenario,
    build_scenario,
    build_scenario_stream,
)
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    ExperimentSpec,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec, ScenarioError, load_scenario

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentGrid",
    "ExperimentSpec",
    "Scenario",
    "ScenarioError",
    "ScenarioSpec",
    "build_scenario",
    "build_scenario_stream",
    "load_scenario",
    "register_experiment",
    "registry",
    "ablations",
    "cache_size",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fuzzed",
    "headline",
    "multisite",
    "scenarios",
    "warmup",
]
