"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes a ``run(...)`` function that returns a result
dataclass plus a ``format_*`` helper producing the rows the paper reports.
The shared scenario builder lives in :mod:`repro.experiments.config`; the
mapping from paper figure/table to module is documented in ``DESIGN.md``.
"""

from repro.experiments import (
    ablations,
    cache_size,
    fig7a,
    fig7b,
    fig8a,
    fig8b,
    headline,
    multisite,
    warmup,
)
from repro.experiments.config import ExperimentConfig, Scenario, build_scenario

__all__ = [
    "ExperimentConfig",
    "Scenario",
    "build_scenario",
    "ablations",
    "cache_size",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "headline",
    "multisite",
    "warmup",
]
