"""Experiment E6 -- cache-size sensitivity (supporting, Section 6.1).

The paper sets the default cache to 30 % of the server after "varying the
parameters in the experiment to obtain the optimal value" and quotes the
headline result at 20 %.  This experiment sweeps the cache fraction and
reports VCover's (and optionally the other policies') final traffic, showing
the diminishing returns of a larger cache: most of the benefit is already
there at 20-30 % because the query hotspots are much smaller than the server.

The whole ``fraction x policy`` grid is one :class:`repro.sim.sweep.SweepRunner`
sweep over a single scenario, so ``jobs > 1`` runs the grid points in
parallel worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.benefit import BenefitConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import (
    ExperimentContext,
    ExperimentGrid,
    execute,
    register_experiment,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.engine import EngineConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import default_policy_specs
from repro.sim.sweep import DEFAULT_SCENARIO, SweepPoint

#: Default sweep of cache sizes, as fractions of the server size.
DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.5, 0.75, 1.0)

#: Policies compared at every cache size by default.
DEFAULT_POLICIES = ("nocache", "benefit", "vcover", "soptimal")


@dataclass
class CacheSizeSweepResult:
    """Final traffic per policy for each cache fraction."""

    fractions: List[float]
    #: policy -> list of final measured traffic, one per fraction.
    traffic: Dict[str, List[float]]
    comparisons: List[ComparisonResult] = field(default_factory=list)

    def marginal_gain(self, policy: str = "vcover") -> List[float]:
        """Traffic saved by each step up in cache size (positive = helps)."""
        series = self.traffic[policy]
        return [earlier - later for earlier, later in zip(series, series[1:], strict=False)]


def run(
    config: Optional[ExperimentConfig] = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    jobs: int = 1,
) -> CacheSizeSweepResult:
    """Sweep the cache size over the same scenario (trace built once)."""
    return execute(
        "cache_size",
        config=config,
        knobs={"fractions": tuple(fractions), "policies": tuple(policies)},
        jobs=jobs,
    )


def format_table(result: CacheSizeSweepResult) -> str:
    """Fixed-width table: one row per policy, one column per cache fraction."""
    header = f"{'policy':<10}" + "".join(f"{fraction:>10.0%}" for fraction in result.fractions)
    lines = ["Cache-size sweep -- final traffic (MB)", header]
    for policy, series in result.traffic.items():
        lines.append(f"{policy:<10}" + "".join(f"{value:>10.1f}" for value in series))
    return "\n".join(lines)


def _summarise(context: ExperimentContext) -> CacheSizeSweepResult:
    fractions = context.knobs["fractions"]
    policies = context.knobs["policies"]
    traffic: Dict[str, List[float]] = {name: [] for name in policies}
    comparisons: List[ComparisonResult] = []
    for fraction in fractions:
        comparison = context.sweep.comparison(fraction=fraction)
        comparisons.append(comparison)
        for name in policies:
            traffic[name].append(comparison.traffic_of(name))
    return CacheSizeSweepResult(
        fractions=list(fractions), traffic=traffic, comparisons=comparisons
    )


@register_experiment(
    name="cache_size",
    title="Cache-size sensitivity sweep",
    paper_ref="Section 6.1",
    description=(
        "Sweeps the cache fraction over one scenario and reports each "
        "policy's final traffic, showing the diminishing returns past the "
        "paper's 20-30% setting."
    ),
    knobs={"fractions": DEFAULT_FRACTIONS, "policies": DEFAULT_POLICIES},
    summarise=_summarise,
    format_result=format_table,
)
def _grid(config: ExperimentConfig, knobs: Mapping[str, object]) -> ExperimentGrid:
    specs = default_policy_specs(
        benefit_config=BenefitConfig(window_size=config.benefit_window),
        include=knobs["policies"],
    )
    engine = EngineConfig(
        sample_every=config.sample_every, measure_from=config.measure_from
    )
    points = tuple(
        SweepPoint(
            key=f"{spec.name}@{fraction:g}",
            spec=spec,
            cache_fraction=fraction,
            engine=engine,
            seed=config.seed,
            tags=(("fraction", fraction),),
        )
        for fraction in knobs["fractions"]
        for spec in specs
    )
    # The recipe, not a built trace: workers rebuild it deterministically,
    # memoised per process, so nothing big crosses the pool boundary.
    return ExperimentGrid(
        points=points,
        scenarios={DEFAULT_SCENARIO: ScenarioSpec(config)},
    )
