"""Delta: a dynamic data middleware cache for rapidly-growing scientific repositories.

This library is a from-scratch reproduction of the system described in

    Malik, Wang, Little, Chaudhary, Thakar.
    "A Dynamic Data Middleware Cache for Rapidly-Growing Scientific
    Repositories", Middleware 2010.

The public API is organised as follows:

* :mod:`repro.core` -- the decision framework: the :class:`repro.core.Delta`
  facade, the :class:`repro.core.VCoverPolicy` online algorithm, the
  :class:`repro.core.BenefitPolicy` baseline and the three yardstick policies,
* :mod:`repro.flow` -- max-flow / minimum-weight vertex-cover substrate,
* :mod:`repro.cache` -- the space-constrained object store and eviction
  policies (Greedy-Dual-Size and friends),
* :mod:`repro.repository` -- data objects, queries, updates and the server,
* :mod:`repro.sky` -- the hierarchical triangular mesh and sky partitioning,
* :mod:`repro.workload` -- SDSS-style trace generators,
* :mod:`repro.network` -- traffic cost accounting,
* :mod:`repro.sim` -- the event-driven simulator and multi-policy runner,
* :mod:`repro.experiments` -- the declarative experiment registry, with one
  registered experiment per table/figure of the paper,
* :mod:`repro.api` -- the stable facade: ``list_experiments`` /
  ``run_experiment`` / ``load_scenario`` / ``run_scenario`` (what the CLI,
  examples and benchmarks use).

Quickstart::

    from repro.core import Delta, DeltaConfig
    from repro.repository.catalog import sdss_catalog
    from repro.workload import SDSSQueryGenerator, SurveyUpdateGenerator, interleave

    catalog = sdss_catalog(object_count=68)
    delta = Delta(catalog, DeltaConfig(policy="vcover", cache_fraction=0.3))
    trace = interleave(
        SDSSQueryGenerator(catalog).generate(),
        SurveyUpdateGenerator(catalog).generate(),
    )
    for event in trace:
        if event.kind == "update":
            delta.ingest_update(event.update)
        else:
            delta.submit_query(event.query)
    print(delta.traffic_report())
"""

from repro.core import (
    BenefitConfig,
    BenefitPolicy,
    Delta,
    DeltaConfig,
    NoCachePolicy,
    ReplicaPolicy,
    SOptimalPolicy,
    VCoverConfig,
    VCoverPolicy,
)
from repro.repository import DataObject, ObjectCatalog, Query, Repository, Update

__version__ = "1.2.0"

__all__ = [
    "BenefitConfig",
    "BenefitPolicy",
    "Delta",
    "DeltaConfig",
    "NoCachePolicy",
    "ReplicaPolicy",
    "SOptimalPolicy",
    "VCoverConfig",
    "VCoverPolicy",
    "DataObject",
    "ObjectCatalog",
    "Query",
    "Repository",
    "Update",
    "__version__",
]
