"""Setuptools entry point.

The canonical project metadata lives in ``pyproject.toml``; this shim exists
so that ``pip install -e .`` keeps working on environments whose setuptools
predates PEP 660 editable-wheel support (it lets pip fall back to the legacy
``setup.py develop`` code path, which needs no ``wheel`` package).
"""

from setuptools import setup

setup()
