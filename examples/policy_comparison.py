#!/usr/bin/env python3
"""Compare every policy on the paper's default scenario (Figure 7b in small).

Runs the two algorithms (VCover, Benefit) and the three yardsticks (NoCache,
Replica, SOptimal) over the same SDSS-shaped trace, prints the cumulative
traffic table and the headline ratios, and writes the cumulative series of
each policy to a CSV file that can be plotted with any tool.

Run with::

    python examples/policy_comparison.py [--events 8000] [--cache 0.3] [--csv out.csv]
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path

from repro import api
from repro.experiments.fig7b import POLICY_ORDER


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=8000,
                        help="total number of trace events (queries + updates)")
    parser.add_argument("--cache", type=float, default=0.3,
                        help="cache size as a fraction of the server size")
    parser.add_argument("--objects", type=int, default=68,
                        help="number of spatial data objects")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--csv", type=Path, default=None,
                        help="optional path for the cumulative-traffic CSV")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the per-policy runs")
    args = parser.parse_args()
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    return args


def main() -> None:
    args = parse_args()
    overrides = {
        "object_count": args.objects,
        "query_count": args.events // 2,
        "update_count": args.events // 2,
        "cache_fraction": args.cache,
        "seed": args.seed,
    }
    print(f"scenario: {2 * (args.events // 2)} events over {args.objects} objects, "
          f"cache {args.cache:.0%} of server")
    print("running all five policies (this takes a few seconds)...")
    result = api.run_experiment("fig7b", overrides=overrides, jobs=args.jobs)

    print()
    print(api.format_result("fig7b", result))

    if args.csv is not None:
        with args.csv.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["policy", "event_index", "cumulative_traffic_mb"])
            for policy in POLICY_ORDER:
                for event_index, traffic in result.series(policy):
                    writer.writerow([policy, event_index, f"{traffic:.3f}"])
        print(f"\ncumulative series written to {args.csv}")


if __name__ == "__main__":
    main()
