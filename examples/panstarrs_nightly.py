#!/usr/bin/env python3
"""A Pan-STARRS-style nightly-operations scenario.

The paper motivates Delta with surveys such as Pan-STARRS and LSST, where the
telescope adds on the order of 100 GB of new observations every night while
astronomers keep querying the latest data (time-domain studies and light-curve
analysis need zero staleness).  This example simulates several observing
nights:

* each night the telescope sweeps a set of great-circle scans, producing a
  burst of updates clustered on the scanned sky region,
* during the day astronomers issue queries: most target the currently popular
  follow-up fields, a fraction chase last night's transients (zero tolerance
  for staleness), and the rest browse the archive with a relaxed currency
  requirement,
* Delta (with VCover) sits between the community and the repository; we track
  how much traffic it moves per night compared with re-shipping every query
  (NoCache) or mirroring every update (Replica).

Run with::

    python examples/panstarrs_nightly.py [--nights 5]
"""

from __future__ import annotations

import argparse

from repro.core import Delta, DeltaConfig
from repro.repository.catalog import sdss_catalog
from repro.workload import (
    SDSSQueryGenerator,
    SDSSWorkloadConfig,
    SurveyUpdateGenerator,
    UpdateWorkloadConfig,
    interleave,
)


def build_generators(catalog, events_per_night: int, seed: int):
    """Persistent query/update generators shared by every night.

    Using one generator pair for the whole campaign is what makes the scenario
    realistic: the survey's scan pattern progresses night over night, and the
    community's follow-up fields persist and drift slowly instead of being
    redrawn from scratch each morning.
    """
    update_config = UpdateWorkloadConfig(
        update_count=events_per_night // 2,
        # ~100 GB/night in paper units; scaled with the catalogue.
        target_total_cost=catalog.total_size * 0.125,
        scan_width=5,
        scan_length=120,
        region_fraction=0.3,
        seed=seed,
    )
    update_generator = SurveyUpdateGenerator(catalog, update_config)
    query_config = SDSSWorkloadConfig(
        query_count=events_per_night // 2,
        target_total_cost=catalog.total_size * 0.2,
        focus_size=6,
        phase_length=1500,
        drift=0.2,
        # Transient chasers: half the queries demand strictly current data.
        tolerant_fraction=0.5,
        tolerance_window=200.0,
        flare_probability=0.15,
        excluded_hotspots=tuple(update_generator.observed_region),
        seed=seed + 100,
    )
    query_generator = SDSSQueryGenerator(catalog, query_config)
    return query_generator, update_generator


def build_night_trace(query_generator, update_generator):
    """One night's interleaved update burst and daytime query load."""
    return interleave(query_generator.generate(), update_generator.generate())


def run_policy(policy_name: str, catalog, nights, cache_fraction: float):
    """Replay all nights against one policy; return per-night traffic."""
    delta = Delta(catalog, DeltaConfig(policy=policy_name, cache_fraction=cache_fraction))
    nightly_traffic = []
    for trace in nights:
        before = delta.traffic_report()["total"]
        for event in trace:
            if event.kind == "update":
                delta.ingest_update(event.update)
            else:
                delta.submit_query(event.query)
        nightly_traffic.append(delta.traffic_report()["total"] - before)
    return nightly_traffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nights", type=int, default=5, help="number of observing nights")
    parser.add_argument("--events", type=int, default=2000, help="events per night")
    parser.add_argument("--cache", type=float, default=0.25,
                        help="cache size as a fraction of the server")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    args = parser.parse_args()

    catalog = sdss_catalog(object_count=68)
    print(f"repository: {catalog.total_size:.0f} MB over {len(catalog)} sky partitions")
    print(f"simulating {args.nights} nights, {args.events} events each\n")

    query_generator, update_generator = build_generators(catalog, args.events, args.seed)
    nights = [
        build_night_trace(query_generator, update_generator) for _ in range(args.nights)
    ]

    results = {}
    for policy in ("nocache", "replica", "vcover"):
        results[policy] = run_policy(policy, catalog, nights, args.cache)

    header = f"{'night':>6}" + "".join(f"{policy:>12}" for policy in results)
    print(header)
    for night in range(args.nights):
        row = f"{night + 1:>6}" + "".join(
            f"{results[policy][night]:>12.1f}" for policy in results
        )
        print(row)
    totals = {policy: sum(values) for policy, values in results.items()}
    print(f"{'total':>6}" + "".join(f"{totals[policy]:>12.1f}" for policy in results))
    print()
    if totals["vcover"] < min(totals["nocache"], totals["replica"]):
        saving = 1.0 - totals["vcover"] / totals["nocache"]
        print(f"Delta/VCover moved {saving:.0%} less traffic than shipping every query, "
              "while always meeting each query's currency requirement.")
    else:
        print("On this short run VCover has not amortised its loads yet; "
              "try more nights (--nights 10).")


if __name__ == "__main__":
    main()
