#!/usr/bin/env python3
"""Quickstart: stand up a Delta middleware cache and run a small workload.

This example builds a scaled-down SDSS-shaped repository (68 spatial data
objects), deploys Delta in front of it with the VCover decision policy and a
cache 30 % of the server size, replays a short interleaved stream of updates
(from the telescope pipeline) and queries (from astronomers), and prints the
traffic ledger broken down by data-communication mechanism.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Delta, DeltaConfig
from repro.repository.catalog import sdss_catalog
from repro.workload import (
    SDSSQueryGenerator,
    SDSSWorkloadConfig,
    SurveyUpdateGenerator,
    UpdateWorkloadConfig,
    interleave,
)


def main() -> None:
    # 1. The server: an SDSS PhotoObj-shaped catalogue of 68 spatial objects,
    #    scaled down ~1000x so everything runs instantly on a laptop.
    catalog = sdss_catalog(object_count=68)
    print(f"server: {len(catalog)} data objects, {catalog.total_size:.0f} MB total")

    # 2. The middleware deployment: VCover decision policy, cache = 30 % of
    #    the server (the paper's default configuration).
    delta = Delta(catalog, DeltaConfig(policy="vcover", cache_fraction=0.3))
    print(f"cache : {delta.policy.store.capacity:.0f} MB "
          f"({delta.config.cache_fraction:.0%} of the server)")

    # 3. A workload: an update stream clustered along survey scans and a query
    #    stream with evolving hotspots, interleaved 1:1.
    updates = SurveyUpdateGenerator(
        catalog, UpdateWorkloadConfig(update_count=2000, target_total_cost=400.0)
    )
    queries = SDSSQueryGenerator(
        catalog,
        SDSSWorkloadConfig(
            query_count=2000,
            target_total_cost=400.0,
            excluded_hotspots=tuple(updates.observed_region),
        ),
    )
    trace = interleave(queries.generate(), updates.generate())
    print(f"trace : {len(trace)} events "
          f"({trace.query_count} queries, {trace.update_count} updates)")

    # 4. Replay the trace through the deployment.
    answered_at_cache = 0
    for event in trace:
        if event.kind == "update":
            delta.ingest_update(event.update)
        else:
            outcome = delta.submit_query(event.query)
            if outcome.answered_at_cache:
                answered_at_cache += 1

    # 5. Read the ledger.
    report = delta.traffic_report()
    print()
    print("traffic report (MB)")
    for key in ("query_shipping", "update_shipping", "object_loading", "total"):
        print(f"  {key:<16} {report[key]:>10.1f}")
    print()
    print(f"queries answered at the cache : {answered_at_cache}/{trace.query_count} "
          f"({answered_at_cache / trace.query_count:.0%})")
    print(f"no-cache baseline would have paid {trace.total_query_cost():.1f} MB "
          f"of query shipping")


if __name__ == "__main__":
    main()
