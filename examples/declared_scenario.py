#!/usr/bin/env python3
"""Run a scenario declared purely as data (no experiment code authored).

The scenario lives in ``examples/scenarios/smallsky.json`` -- just a name
and the :class:`repro.experiments.config.ExperimentConfig` knobs.  This
script shows the whole declarative workflow through :mod:`repro.api`:

1. load and validate the file (``api.load_scenario``),
2. run it against a subset of policies (``api.run_scenario``),
3. print the comparison table.

The same file works from the command line with no Python at all::

    python -m repro scenario validate examples/scenarios/smallsky.json
    python -m repro scenario run examples/scenarios/smallsky.json --jobs 2

Run with::

    python examples/declared_scenario.py
"""

from __future__ import annotations

from pathlib import Path

from repro import api

SCENARIO_FILE = Path(__file__).parent / "scenarios" / "smallsky.json"


def main() -> None:
    spec = api.load_scenario(SCENARIO_FILE)
    config = spec.config
    print(f"scenario {spec.name!r}: {config.total_events} events over "
          f"{config.object_count} objects, cache {config.cache_fraction:.0%} "
          f"of the server")

    comparison = api.run_scenario(spec, policies=("nocache", "benefit", "vcover"))
    print()
    print(comparison.as_table())
    print()
    print(f"NoCache / VCover traffic: {comparison.ratio('nocache', 'vcover'):.2f}x")


if __name__ == "__main__":
    main()
