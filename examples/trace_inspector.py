#!/usr/bin/env python3
"""Generate, persist and characterise an SDSS-style workload trace.

Shows the workload-substrate half of the library in isolation: build a
partitioned catalogue, generate a query trace with evolving hotspots and an
update trace clustered along survey scans, interleave them, save the result
as JSONL, reload it, and print the Figure 7(a)-style characterisation
(hotspots, hotspot overlap, workload evolution) plus an ASCII sketch of the
object-id/event scatter.

Run with::

    python examples/trace_inspector.py [--out trace.jsonl]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import fig7a
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.workload.trace import Trace


def ascii_scatter(result, object_count: int, width: int = 72, height: int = 20) -> str:
    """A rough text rendering of Figure 7(a): '.' = query access, 'x' = update."""
    grid = [[" " for _ in range(width)] for _ in range(height)]
    points = result.scatter_sample(stride=5)
    if not points:
        return "(empty trace)"
    max_event = max(event for event, _, _ in points) or 1
    for event, object_id, kind in points:
        column = min(width - 1, int(event / max_event * (width - 1)))
        row = min(height - 1, int((object_id - 1) / max(object_count - 1, 1) * (height - 1)))
        grid[height - 1 - row][column] = "x" if kind == "update" else "."
    lines = ["object-id ^"]
    lines.extend("".join(row) for row in grid)
    lines.append("-" * width + "> event sequence   ('.'=query access, 'x'=update)")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=68, help="number of data objects")
    parser.add_argument("--events", type=int, default=6000, help="total trace events")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--out", type=Path, default=Path("delta_trace.jsonl"),
                        help="where to write the JSONL trace")
    args = parser.parse_args()

    config = ExperimentConfig(
        object_count=args.objects,
        query_count=args.events // 2,
        update_count=args.events // 2,
        seed=args.seed,
    )
    scenario = build_scenario(config)
    trace = scenario.trace

    print(f"generated {len(trace)} events over {args.objects} objects")
    stats = trace.describe()
    print(f"  query traffic : {stats['total_query_cost']:.1f} MB")
    print(f"  update traffic: {stats['total_update_cost']:.1f} MB")

    trace.to_jsonl(args.out)
    reloaded = Trace.from_jsonl(args.out)
    print(f"  round-trip    : wrote and reloaded {len(reloaded)} events via {args.out}")

    result = fig7a.characterise_trace(reloaded)
    print()
    print(fig7a.format_report(result))
    print()
    print(ascii_scatter(result, object_count=args.objects))


if __name__ == "__main__":
    main()
