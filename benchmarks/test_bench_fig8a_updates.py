"""Benchmark/regeneration of Figure 8(a): final traffic vs number of updates.

The sweep keeps the query workload fixed and scales the update stream from
x0.5 to x1.5 of the default.  The paper's claims: NoCache is flat, Replica
grows linearly with the update count, and the caching policies grow only
slightly because they compensate by caching fewer objects.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, bench_jobs
from repro.experiments import fig8a

#: Smaller trace per sweep point: the sweep runs 5 policies x 3 multipliers.
SWEEP_CONFIG = bench_config(query_count=4000, update_count=4000)
MULTIPLIERS = (0.5, 1.0, 1.5)


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_varying_updates(benchmark):
    result = benchmark.pedantic(
        fig8a.run, args=(SWEEP_CONFIG,), kwargs={"multipliers": MULTIPLIERS, "jobs": bench_jobs()}, rounds=1,
        iterations=1,
    )
    print()
    print(fig8a.format_table(result))
    for policy in result.traffic:
        benchmark.extra_info[f"growth_{policy}"] = round(result.growth(policy), 3)

    # NoCache never ships updates: flat.
    assert result.growth("nocache") == pytest.approx(1.0, rel=0.05)
    # Replica ships every update: tripling updates triples its traffic.
    assert result.growth("replica") == pytest.approx(3.0, rel=0.2)
    # The adaptive policies grow much more slowly than Replica.
    assert result.growth("vcover") < 0.6 * result.growth("replica")
    assert result.growth("soptimal") < 0.6 * result.growth("replica")
    # At every sweep point VCover stays below NoCache.
    for index in range(len(MULTIPLIERS)):
        assert result.traffic["vcover"][index] < result.traffic["nocache"][index]
