"""Benchmarks of the design-choice ablations (experiment E8, ours).

Quantifies the impact of Delta's individual design choices: randomized vs
counter-based loading, the eviction policy behind the LoadManager, the
max-flow solver, and Benefit's sensitivity to its tuning knobs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, bench_jobs
from repro.experiments import ablations
from repro.experiments.config import build_scenario

ABLATION_CONFIG = bench_config(query_count=4000, update_count=4000)


@pytest.fixture(scope="module")
def ablation_scenario():
    return build_scenario(ABLATION_CONFIG)


@pytest.mark.benchmark(group="ablations")
def test_ablation_loading_mechanism(benchmark, ablation_scenario):
    result = benchmark.pedantic(
        ablations.run_loading_ablation, args=(ABLATION_CONFIG, ablation_scenario),
        kwargs={"jobs": bench_jobs()}, rounds=1, iterations=1,
    )
    print()
    print(ablations.format_table("Loading mechanism (randomized vs counter)", result))
    relative = result.relative_to("randomized")
    benchmark.extra_info["counter_over_randomized"] = round(relative["counter"], 3)
    # The randomized mechanism emulates the counters in expectation, so the
    # two variants must land in the same ballpark.
    assert 0.6 <= relative["counter"] <= 1.6


@pytest.mark.benchmark(group="ablations")
def test_ablation_eviction_policy(benchmark, ablation_scenario):
    result = benchmark.pedantic(
        ablations.run_eviction_ablation, args=(ABLATION_CONFIG, ablation_scenario),
        kwargs={"jobs": bench_jobs()}, rounds=1, iterations=1,
    )
    print()
    print(ablations.format_table("Eviction policy behind the LoadManager", result))
    relative = result.relative_to("gds")
    for name, value in relative.items():
        benchmark.extra_info[f"{name}_over_gds"] = round(value, 3)
    # GDS (the paper's choice) should be competitive with every alternative.
    assert min(relative.values()) >= 0.75


@pytest.mark.benchmark(group="ablations")
def test_ablation_flow_method(benchmark, ablation_scenario):
    result = benchmark.pedantic(
        ablations.run_flow_method_ablation, args=(ABLATION_CONFIG, ablation_scenario),
        kwargs={"jobs": bench_jobs()}, rounds=1, iterations=1,
    )
    print()
    print(ablations.format_table("Max-flow solver (decisions must agree)", result))
    assert result.traffic["edmonds-karp"] == pytest.approx(result.traffic["dinic"])


@pytest.mark.benchmark(group="ablations")
def test_ablation_preshipping(benchmark, ablation_scenario):
    result = benchmark.pedantic(
        ablations.run_preship_ablation, args=(ABLATION_CONFIG, ablation_scenario),
        rounds=1, iterations=1,
    )
    baseline = result["baseline"]
    preship = result["preship"]
    print()
    print("Preshipping (paper discussion): traffic vs response time")
    print(f"{'variant':<10} {'traffic (MB)':>14} {'mean RT (s)':>12} {'delayed':>9}")
    for label, variant in result.items():
        print(f"{label:<10} {variant.total_traffic:>14.1f} "
              f"{variant.response_times.mean:>12.4f} "
              f"{variant.response_times.delayed_fraction:>9.1%}")
    benchmark.extra_info["preship_extra_traffic"] = round(
        preship.total_traffic - baseline.total_traffic, 1
    )
    benchmark.extra_info["delayed_fraction_baseline"] = round(
        baseline.response_times.delayed_fraction, 3
    )
    benchmark.extra_info["delayed_fraction_preship"] = round(
        preship.response_times.delayed_fraction, 3
    )
    # Preshipping trades (at most a little) extra update traffic for fewer
    # queries waiting on synchronous update shipping.
    assert preship.total_traffic >= baseline.total_traffic - 1e-6
    assert (
        preship.response_times.delayed_fraction
        <= baseline.response_times.delayed_fraction + 1e-9
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_benefit_sensitivity(benchmark, ablation_scenario):
    result = benchmark.pedantic(
        ablations.run_benefit_sensitivity, args=(ABLATION_CONFIG, ablation_scenario),
        kwargs={"windows": (250, 1000, 2000), "alphas": (0.1, 0.3, 0.9),
                "jobs": bench_jobs()},
        rounds=1, iterations=1,
    )
    print()
    print(ablations.format_table("Benefit sensitivity to window / alpha", result))
    values = list(result.traffic.values())
    spread = max(values) / min(values)
    benchmark.extra_info["benefit_tuning_spread"] = round(spread, 3)
    # Benefit's outcome depends visibly on its tuning (the paper's point about
    # heuristic brittleness); a >5 % spread across settings demonstrates it.
    assert spread >= 1.02
