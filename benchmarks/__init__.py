"""Benchmark harness regenerating every figure and table of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates one
figure/table of the evaluation (see DESIGN.md's per-experiment index), prints
the corresponding rows/series, and attaches the headline numbers to the
pytest-benchmark ``extra_info`` so they appear in the saved benchmark JSON.
"""
