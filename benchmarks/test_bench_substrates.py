"""Microbenchmarks of the substrates the decision framework is built on.

These are conventional timing benchmarks (multiple rounds) rather than
figure regenerations: the incremental max-flow solver, the Greedy-Dual-Size
cache, the workload generators and the end-to-end per-event cost of the
VCover policy.  They exist to catch performance regressions in the hot paths
the experiment harness depends on.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.gds import GreedyDualSize
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.flow.graph import FlowNetwork
from repro.flow.incremental import IncrementalMaxFlow
from repro.flow.maxflow import dinic_max_flow, edmonds_karp_max_flow
from repro.network.link import NetworkLink
from repro.repository.catalog import sdss_catalog
from repro.repository.server import Repository
from repro.workload.mixer import interleave
from repro.workload.sdss import SDSSQueryGenerator, SDSSWorkloadConfig
from repro.workload.trace import QueryEvent, UpdateEvent
from repro.workload.updates import SurveyUpdateGenerator, UpdateWorkloadConfig


def _random_flow_network(seed: int, nodes: int, edges: int) -> FlowNetwork:
    rng = np.random.default_rng(seed)
    network = FlowNetwork()
    for _ in range(edges):
        tail = int(rng.integers(0, nodes))
        head = int(rng.integers(0, nodes))
        if tail != head:
            network.add_edge(tail, head, float(rng.integers(1, 50)))
    network.add_vertex(0)
    network.add_vertex(nodes - 1)
    return network


@pytest.mark.benchmark(group="substrate-flow")
def test_bench_edmonds_karp(benchmark):
    def run():
        network = _random_flow_network(3, nodes=60, edges=400)
        return edmonds_karp_max_flow(network, 0, 59)

    value = benchmark(run)
    assert value >= 0.0


@pytest.mark.benchmark(group="substrate-flow")
def test_bench_dinic(benchmark):
    def run():
        network = _random_flow_network(3, nodes=60, edges=400)
        return dinic_max_flow(network, 0, 59)

    value = benchmark(run)
    assert value >= 0.0


@pytest.mark.benchmark(group="substrate-flow")
def test_bench_incremental_cover_stream(benchmark):
    """Cost of a stream of 200 incremental cover computations."""

    def run():
        rng = np.random.default_rng(7)
        solver = IncrementalMaxFlow()
        for step in range(200):
            query = f"q{step}"
            solver.add_left(query, float(rng.integers(1, 20)))
            update = f"u{step % 40}"
            # Each update id keeps a fixed weight so re-registration after the
            # vertex was retired in an earlier cover is a no-op.
            solver.add_right(update, float(1 + step % 40))
            solver.add_edge(query, update)
            cover = solver.compute_cover()
            solver.retire(right=list(cover.right_in_cover))
        return solver.augmentation_count

    assert benchmark(run) == 200


@pytest.mark.benchmark(group="substrate-cache")
def test_bench_gds_churn(benchmark):
    """Load/hit/evict churn through Greedy-Dual-Size."""

    def run():
        gds = GreedyDualSize()
        rng = random.Random(5)
        resident = set()
        for step in range(5000):
            object_id = rng.randint(1, 300)
            if object_id in resident:
                gds.on_hit(object_id, timestamp=float(step))
            else:
                gds.on_load(object_id, size=rng.uniform(1, 50), cost=rng.uniform(1, 50),
                            timestamp=float(step))
                resident.add(object_id)
                if len(resident) > 100:
                    victim = gds.victim(resident)
                    gds.on_evict(victim)
                    resident.discard(victim)
        return len(resident)

    assert benchmark(run) <= 101


@pytest.mark.benchmark(group="substrate-workload")
def test_bench_trace_generation(benchmark):
    """Generating a 10k-event interleaved SDSS-style trace."""

    def run():
        catalog = sdss_catalog(object_count=68)
        queries = SDSSQueryGenerator(
            catalog, SDSSWorkloadConfig(query_count=5000, target_total_cost=1000.0)
        ).generate()
        updates = SurveyUpdateGenerator(
            catalog, UpdateWorkloadConfig(update_count=5000, target_total_cost=1000.0)
        ).generate()
        return len(interleave(queries, updates))

    assert benchmark(run) == 10000


@pytest.mark.benchmark(group="substrate-policy")
def test_bench_vcover_events_per_second(benchmark, benchmark_scenario):
    """End-to-end per-event cost of the VCover policy on the default trace."""
    trace = benchmark_scenario.trace[:4000]

    def run():
        repository = Repository(benchmark_scenario.catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository, benchmark_scenario.cache_capacity, link, VCoverConfig()
        )
        for event in trace:
            if isinstance(event, UpdateEvent):
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            elif isinstance(event, QueryEvent):
                policy.on_query(event.query)
        return link.total_cost

    total = benchmark(run)
    assert total > 0.0
