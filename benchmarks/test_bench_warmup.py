"""Benchmark of the warm-up behaviour (Section 6.1).

The paper reports that during the warm-up prefix of cheap queries the cache
stays nearly empty and almost every query is shipped; occupancy and hit rate
climb only once full-cost queries arrive.
"""

from __future__ import annotations

import pytest

from repro.experiments import warmup


@pytest.mark.benchmark(group="warmup")
def test_warmup_behaviour(benchmark, benchmark_config):
    result = benchmark.pedantic(
        warmup.run, args=(benchmark_config,), kwargs={"sample_every": 500}, rounds=1,
        iterations=1,
    )
    print()
    print(warmup.format_report(result))
    benchmark.extra_info["warmup_knee_event"] = result.warmup_knee
    benchmark.extra_info["configured_warmup_end"] = result.configured_warmup_end

    early = [used for event, used in result.occupancy if event <= result.configured_warmup_end]
    late = [used for event, used in result.occupancy if event > result.configured_warmup_end]
    assert early and late
    # The cache is (nearly) empty during the cheap-query prefix and fills
    # afterwards.
    assert max(early) <= 0.5
    assert max(late) > max(early)
    # The occupancy knee falls at or after the configured warm-up boundary's
    # neighbourhood (the cache cannot fill while queries are cheap).
    assert result.warmup_knee >= result.configured_warmup_end * 0.5
