"""Benchmark/regeneration of Figure 7(a): workload characterisation.

Regenerates the query/update scatter data and prints the hotspot summary; the
paper's claims (distinct query vs update hotspots, evolving queried set) are
asserted as loose qualitative bounds.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig7a


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_workload_characterisation(benchmark, benchmark_config, benchmark_scenario):
    result = benchmark.pedantic(
        fig7a.characterise_trace, args=(benchmark_scenario.trace,), rounds=1, iterations=1
    )
    print()
    print(fig7a.format_report(result))
    benchmark.extra_info["hotspot_overlap"] = result.hotspot_overlap
    benchmark.extra_info["evolution_distance"] = result.evolution_distance
    # Figure 7a's two visual claims.
    assert result.hotspot_overlap <= 0.35, "query and update hotspots should be largely distinct"
    assert result.evolution_distance >= 0.05, "the queried object set should evolve over the trace"
