"""Benchmark/regeneration of the paper's headline claims (Section 6 text).

Claim 1: with a cache one-fifth the server size, Delta/VCover cuts traffic by
roughly half versus shipping every query.
Claim 2: VCover beats the Benefit heuristic.
Claim 3: VCover tracks the hindsight-optimal static cache (SOptimal).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_jobs
from repro import api


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, benchmark_config):
    result = benchmark.pedantic(
        api.run_experiment,
        args=("headline",),
        kwargs={
            "overrides": {
                "query_count": benchmark_config.query_count,
                "update_count": benchmark_config.update_count,
                "small_cache_fraction": 0.2,
            },
            "jobs": bench_jobs(),
        },
        rounds=1, iterations=1,
    )
    print()
    print(api.format_result("headline", result))
    benchmark.extra_info["traffic_reduction_vs_nocache"] = round(
        result.traffic_reduction_vs_nocache, 3
    )
    benchmark.extra_info["benefit_over_vcover"] = round(result.benefit_over_vcover, 3)
    benchmark.extra_info["vcover_over_soptimal"] = round(result.vcover_over_soptimal, 3)

    # Claim 1 (paper: ~50 % reduction with a one-fifth cache).  Our synthetic
    # trace is shorter than the SDSS trace, so accept anything past 25 %.
    assert result.traffic_reduction_vs_nocache >= 0.25
    # Claim 2 (paper: 2-5x).  Direction must hold; magnitude is workload
    # dependent (see EXPERIMENTS.md).
    assert result.benefit_over_vcover >= 1.0
    # Claim 3 (paper: VCover ends ~40 % above SOptimal).
    assert result.vcover_over_soptimal <= 3.0
