"""Benchmark of the supporting cache-size sweep (Section 6.1 default choice).

Sweeps the cache from 10 % to 100 % of the server and prints the final traffic
per policy, showing the diminishing returns past the 20-30 % the paper uses.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_jobs
from repro import api

FRACTIONS = (0.1, 0.2, 0.3, 0.5, 1.0)


@pytest.mark.benchmark(group="cache-size")
def test_cache_size_sweep(benchmark):
    result = benchmark.pedantic(
        api.run_experiment, args=("cache_size",),
        kwargs={
            "overrides": {
                "query_count": 4000,
                "update_count": 4000,
                "fractions": FRACTIONS,
                "policies": ("nocache", "vcover", "soptimal"),
            },
            "jobs": bench_jobs(),
        },
        rounds=1, iterations=1,
    )
    print()
    print(api.format_result("cache_size", result))
    for fraction, traffic in zip(result.fractions, result.traffic["vcover"], strict=True):
        benchmark.extra_info[f"vcover_at_{int(fraction * 100)}pct"] = round(traffic, 1)

    nocache = result.traffic["nocache"]
    vcover = result.traffic["vcover"]
    # NoCache ignores the cache size entirely.
    assert max(nocache) == pytest.approx(min(nocache))
    # A bigger cache never makes VCover substantially worse, and by 30 % the
    # bulk of the achievable saving is already realised.
    assert vcover[-1] <= vcover[0] * 1.1
    saving_at_30 = nocache[2] - vcover[2]
    saving_at_100 = nocache[-1] - vcover[-1]
    assert saving_at_30 >= 0.5 * saving_at_100
