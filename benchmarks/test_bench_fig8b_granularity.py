"""Benchmark/regeneration of Figure 8(b): VCover traffic vs object granularity.

Replays the workload against the paper's seven partitioning levels (10 to 532
objects) and prints VCover's final traffic for each.  The paper's claim: the
coarsest partitionings waste cache space and decouple poorly; performance
improves toward an intermediate level and then degrades slowly again for very
fine partitionings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, bench_jobs
from repro.experiments import fig8b
from repro.repository.catalog import PARTITION_LEVELS

#: One VCover run per level; keep the per-level trace moderate.
SWEEP_CONFIG = bench_config(query_count=4000, update_count=4000)


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_object_granularity(benchmark):
    result = benchmark.pedantic(
        fig8b.run, args=(SWEEP_CONFIG,), kwargs={"object_counts": PARTITION_LEVELS, "jobs": bench_jobs()},
        rounds=1, iterations=1,
    )
    print()
    print(fig8b.format_table(result))
    for object_count, traffic in result.traffic.items():
        benchmark.extra_info[f"traffic_{object_count}_objects"] = round(traffic, 1)
    benchmark.extra_info["best_level"] = result.best_level()

    coarsest = result.traffic[PARTITION_LEVELS[0]]     # 10 objects
    default = result.traffic[68]
    best = min(result.traffic.values())
    # The default and best levels clearly beat the coarsest partitioning.
    assert default < coarsest
    assert best < coarsest
    # The sweet spot is at an intermediate level, not at the extremes
    # (paper: improvement up to ~91 objects, then slight degradation).
    assert result.best_level() not in (PARTITION_LEVELS[0],)
