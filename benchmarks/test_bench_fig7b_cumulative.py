"""Benchmark/regeneration of Figure 7(b): cumulative traffic for all policies.

Prints the cumulative-traffic endpoints and the headline ratios, and asserts
the orderings the figure shows: SOptimal < VCover < {Replica, NoCache}, with
VCover well below NoCache.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_jobs
from repro.experiments import fig7b


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_cumulative_traffic(benchmark, benchmark_config):
    result = benchmark.pedantic(fig7b.run, args=(benchmark_config,),
                                kwargs={"jobs": bench_jobs()}, rounds=1, iterations=1)
    print()
    print(fig7b.format_table(result))
    costs = result.final_costs()
    ratios = result.headline_ratios()
    for key, value in ratios.items():
        if isinstance(value, float):
            benchmark.extra_info[key] = round(value, 3)

    # Orderings from Figure 7(b).
    assert costs["soptimal"] <= costs["vcover"], "SOptimal is the hindsight floor"
    assert costs["vcover"] < costs["nocache"], "VCover must beat NoCache"
    assert costs["vcover"] < costs["replica"], "VCover must beat Replica"
    assert costs["vcover"] <= costs["benefit"] * 1.05, "VCover should not lose to Benefit"
    # Magnitudes (loose): paper reports ~2x vs NoCache, ~1.5x vs Replica.
    assert ratios["nocache_over_vcover"] >= 1.3
    assert ratios["replica_over_vcover"] >= 1.1
