"""Shared configuration for the benchmark harness.

Benchmarks replay the *benchmark-scale* scenario: the same knobs as the
default :class:`repro.experiments.config.ExperimentConfig` but with a longer
trace, which is what the paper-shape ratios are quoted on.  The experiment
functions themselves are deterministic (seeded), so a single benchmark round
is both a timing measurement and a reproduction run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig, build_scenario

#: Event counts used by the figure-regeneration benchmarks.  Large enough for
#: the paper's qualitative shape to be stable, small enough that the whole
#: benchmark suite finishes in a few minutes of pure Python.
BENCH_QUERY_COUNT = 6000
BENCH_UPDATE_COUNT = 6000


def bench_config(**overrides) -> ExperimentConfig:
    """The benchmark-scale experiment configuration."""
    defaults = dict(query_count=BENCH_QUERY_COUNT, update_count=BENCH_UPDATE_COUNT)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="session")
def benchmark_config() -> ExperimentConfig:
    """Session-wide default benchmark configuration."""
    return bench_config()


@pytest.fixture(scope="session")
def benchmark_scenario(benchmark_config):
    """The default benchmark scenario (catalogue + trace), built once."""
    return build_scenario(benchmark_config)


def bench_jobs() -> int:
    """Worker processes for sweep-capable benchmarks.

    Defaults to 1 so timings stay comparable run-to-run; set the
    ``REPRO_BENCH_JOBS`` environment variable to fan the experiment grids out
    over that many processes on multicore hardware.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
