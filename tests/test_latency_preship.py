"""Tests for the latency model and the preshipping extension."""

from __future__ import annotations

import pytest

from repro.core.decoupling import QueryAction, QueryOutcome
from repro.core.vcover import VCoverConfig, VCoverPolicy
from repro.experiments.ablations import run_preship_ablation
from repro.experiments.config import ExperimentConfig, build_scenario
from repro.network.latency import (
    LatencyModel,
    ResponseTimeSummary,
    summarise_response_times,
)
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from tests.conftest import make_query, make_update


class TestLatencyModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            LatencyModel(round_trip_time=-1.0)

    def test_transfer_time_components(self):
        model = LatencyModel(bandwidth=100.0, round_trip_time=0.05)
        assert model.transfer_time(0.0) == pytest.approx(0.0)
        assert model.transfer_time(50.0) == pytest.approx(0.05 + 0.5)
        with pytest.raises(ValueError):
            model.transfer_time(-1.0)

    def test_cache_answer_is_local_latency(self):
        model = LatencyModel(local_latency=0.01)
        outcome = QueryOutcome(query_id=1, action=QueryAction.ANSWERED_AT_CACHE)
        assert model.response_time(outcome) == pytest.approx(0.01)
        assert not model.is_delayed(outcome)

    def test_shipped_query_pays_wide_area_exchange(self):
        model = LatencyModel(bandwidth=10.0, round_trip_time=0.1, local_latency=0.0)
        outcome = QueryOutcome(
            query_id=1, action=QueryAction.SHIPPED_TO_SERVER, query_shipping_cost=5.0
        )
        assert model.response_time(outcome) == pytest.approx(0.1 + 0.5)
        assert model.is_delayed(outcome)

    def test_update_wait_adds_latency(self):
        model = LatencyModel(bandwidth=10.0, round_trip_time=0.1, local_latency=0.0)
        outcome = QueryOutcome(
            query_id=1, action=QueryAction.ANSWERED_AT_CACHE, update_shipping_cost=2.0
        )
        assert model.response_time(outcome) == pytest.approx(0.1 + 0.2)
        assert model.is_delayed(outcome)

    def test_background_loads_do_not_delay(self):
        model = LatencyModel(local_latency=0.0, round_trip_time=0.1)
        outcome = QueryOutcome(
            query_id=1, action=QueryAction.ANSWERED_AT_CACHE, load_cost=100.0
        )
        assert model.response_time(outcome) == pytest.approx(0.0)

    def test_summary_statistics(self):
        model = LatencyModel(bandwidth=10.0, round_trip_time=0.0, local_latency=0.0)
        outcomes = [
            QueryOutcome(query_id=1, action=QueryAction.ANSWERED_AT_CACHE),
            QueryOutcome(query_id=2, action=QueryAction.SHIPPED_TO_SERVER,
                         query_shipping_cost=10.0),
        ]
        summary = summarise_response_times(outcomes, model)
        assert summary.count == 2
        assert summary.mean == pytest.approx(0.5)
        assert summary.max == pytest.approx(1.0)
        assert summary.delayed_fraction == pytest.approx(0.5)

    def test_empty_summary(self):
        summary = summarise_response_times([], LatencyModel())
        assert summary == ResponseTimeSummary.empty()


class TestPreshipping:
    def _policy(self, preship: bool):
        catalog = ObjectCatalog.from_sizes({1: 10.0, 2: 20.0})
        repository = Repository(catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository, 40.0, link, VCoverConfig(preship=preship, preship_min_hits=1)
        )
        return policy, repository, link

    def _load_and_hit(self, policy):
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))  # load
        policy.on_query(make_query(2, object_ids=[1], cost=5.0, timestamp=2.0))   # hit

    def test_preship_pushes_updates_for_hot_objects(self):
        policy, repository, link = self._policy(preship=True)
        self._load_and_hit(policy)
        update = make_update(1, object_id=1, cost=1.5, timestamp=3.0)
        repository.ingest_update(update)
        policy.on_update(update)
        assert policy.outstanding_updates(1) == []
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(1.5)
        # The next query finds the object fresh: no waiting at all.
        outcome = policy.on_query(make_query(3, object_ids=[1], cost=5.0, timestamp=4.0))
        assert outcome.answered_at_cache
        assert outcome.update_shipping_cost == pytest.approx(0.0)

    def test_without_preship_query_waits_for_update(self):
        policy, repository, link = self._policy(preship=False)
        self._load_and_hit(policy)
        update = make_update(1, object_id=1, cost=1.5, timestamp=3.0)
        repository.ingest_update(update)
        policy.on_update(update)
        assert len(policy.outstanding_updates(1)) == 1
        outcome = policy.on_query(make_query(3, object_ids=[1], cost=5.0, timestamp=4.0))
        # The update is shipped synchronously as part of answering the query.
        assert outcome.update_shipping_cost > 0.0 or not outcome.answered_at_cache

    def test_preship_skips_objects_without_hits(self):
        policy, repository, link = self._policy(preship=True)
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))  # load, 0 hits
        update = make_update(1, object_id=1, cost=1.5, timestamp=2.0)
        repository.ingest_update(update)
        policy.on_update(update)
        assert len(policy.outstanding_updates(1)) == 1

    def test_preship_drops_shipped_updates_from_interaction_graph(self):
        # Regression: preshipping used to ship outstanding updates without
        # telling the UpdateManager, leaving stale vertices in the
        # interaction graph that inflate later cover weights.
        catalog = ObjectCatalog.from_sizes({1: 10.0})
        repository = Repository(catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository, 40.0, link, VCoverConfig(preship=True, preship_min_hits=1)
        )
        graph = policy.update_manager.graph

        # Load object 1 (expensive first query justifies the load).
        policy.on_query(make_query(1, object_ids=[1], cost=50.0, timestamp=1.0))
        assert policy.is_resident(1)
        # An expensive update arrives before any cache hit: no preship.
        update = make_update(1, object_id=1, cost=100.0, timestamp=2.0)
        repository.ingest_update(update)
        policy.on_update(update)
        assert len(policy.outstanding_updates(1)) == 1
        # A cheap query interacts with it; the cover ships the query and the
        # update vertex stays in the remainder graph.
        policy.on_query(make_query(2, object_ids=[1], cost=1.0, timestamp=3.0))
        assert graph.active_update_ids() == {update.update_id}
        # A tolerant query is answered at the cache, making the object hot.
        policy.on_query(
            make_query(3, object_ids=[1], cost=5.0, timestamp=4.0, tolerance=100.0)
        )
        # The next update triggers preshipping of everything outstanding;
        # the shipped updates must leave the graph too.
        second = make_update(2, object_id=1, cost=2.0, timestamp=5.0)
        repository.ingest_update(second)
        policy.on_update(second)
        assert policy.outstanding_updates(1) == []
        assert graph.active_update_ids() == frozenset()

    def test_graph_never_tracks_non_outstanding_updates(self):
        # Invariant behind the fix: every update vertex in the interaction
        # graph corresponds to an update the policy still holds outstanding.
        config = ExperimentConfig(
            object_count=20, query_count=600, update_count=600, sample_every=200
        )
        scenario = build_scenario(config)
        repository = Repository(scenario.catalog)
        link = NetworkLink()
        policy = VCoverPolicy(
            repository,
            scenario.cache_capacity,
            link,
            VCoverConfig(preship=True, preship_min_hits=1),
        )
        graph = policy.update_manager.graph
        for event in scenario.trace:
            if event.kind == "update":
                repository.ingest_update(event.update)
                policy.on_update(event.update)
            else:
                policy.on_query(event.query)
            outstanding = {
                update.update_id
                for object_id in policy.resident_objects()
                for update in policy.outstanding_updates(object_id)
            }
            assert graph.active_update_ids() <= outstanding

    def test_preship_ablation_improves_latency_not_traffic(self):
        config = ExperimentConfig(
            object_count=20, query_count=800, update_count=800, sample_every=200
        )
        scenario = build_scenario(config)
        results = run_preship_ablation(config, scenario)
        assert set(results) == {"baseline", "preship"}
        baseline = results["baseline"]
        preship = results["preship"]
        # Preshipping can only add traffic...
        assert preship.total_traffic >= baseline.total_traffic - 1e-6
        # ...but it reduces (or at least never increases) the fraction of
        # queries that wait on synchronous update shipping.
        assert (
            preship.response_times.delayed_fraction
            <= baseline.response_times.delayed_fraction + 1e-9
        )
