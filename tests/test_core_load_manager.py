"""Tests for the LoadManager (randomized and counter-based loading)."""

from __future__ import annotations

import random

import pytest

from repro.cache.gds import GreedyDualSize
from repro.cache.store import CacheStore
from repro.core.load_manager import LoadManager
from tests.conftest import make_query


def make_manager(capacity=100.0, sizes=None, randomized=True, seed=0):
    sizes = sizes or {1: 10.0, 2: 20.0, 3: 30.0, 4: 15.0, 5: 25.0}
    store = CacheStore(capacity)
    manager = LoadManager(
        store=store,
        policy=GreedyDualSize(),
        load_cost_of=lambda object_id: sizes[object_id],
        rng=random.Random(seed),
        randomized=randomized,
    )
    return manager, store, sizes


class TestConstruction:
    def test_load_cost_callback_required(self):
        with pytest.raises(ValueError):
            LoadManager(store=CacheStore(10.0), load_cost_of=None)


class TestCounterVariant:
    def test_object_loaded_only_after_cost_accumulates(self):
        manager, _, _ = make_manager(randomized=False)
        # Object 3 costs 30; queries of cost 10 each should take 3 arrivals.
        decisions = []
        for step in range(1, 4):
            query = make_query(step, object_ids=[3], cost=10.0, timestamp=float(step))
            decisions.append(manager.consider(query, timestamp=float(step)))
        assert decisions[0].load_object_ids == []
        assert decisions[1].load_object_ids == []
        assert decisions[2].load_object_ids == [3]

    def test_single_large_query_triggers_immediate_load(self):
        manager, _, _ = make_manager(randomized=False)
        query = make_query(1, object_ids=[1], cost=50.0, timestamp=1.0)
        decision = manager.consider(query, timestamp=1.0)
        assert decision.load_object_ids == [1]

    def test_counter_resets_after_load(self):
        manager, store, _ = make_manager(randomized=False)
        query = make_query(1, object_ids=[1], cost=15.0, timestamp=1.0)
        decision = manager.consider(query, timestamp=1.0)
        assert decision.load_object_ids == [1]
        store.insert(1, size=10.0, version=0, timestamp=1.0)
        manager.note_load(1, size=10.0, timestamp=1.0)
        # Object now resident: further queries on it do not produce loads.
        follow_up = make_query(2, object_ids=[1], cost=15.0, timestamp=2.0)
        assert manager.consider(follow_up, timestamp=2.0).load_object_ids == []


class TestRandomizedVariant:
    def test_expected_load_rate_matches_attribution(self):
        """With cost/load ratio r, the load probability is approximately r."""
        loads = 0
        trials = 400
        for seed in range(trials):
            manager, _, _ = make_manager(randomized=True, seed=seed)
            query = make_query(1, object_ids=[3], cost=7.5, timestamp=1.0)  # 7.5 / 30 = 0.25
            if manager.consider(query, timestamp=1.0).load_object_ids:
                loads += 1
        assert 0.15 < loads / trials < 0.35

    def test_full_cost_coverage_always_loads(self):
        manager, _, _ = make_manager(randomized=True)
        query = make_query(1, object_ids=[1], cost=10.0, timestamp=1.0)
        assert manager.consider(query, timestamp=1.0).load_object_ids == [1]

    def test_large_query_can_load_several_objects(self):
        manager, _, _ = make_manager(randomized=True, capacity=200.0)
        query = make_query(1, object_ids=[1, 2, 4], cost=60.0, timestamp=1.0)
        decision = manager.consider(query, timestamp=1.0)
        # 60 >= 10 + 20 + 15: all three are fully covered.
        assert set(decision.load_object_ids) == {1, 2, 4}

    def test_seeded_runs_are_reproducible(self):
        first, _, _ = make_manager(randomized=True, seed=3)
        second, _, _ = make_manager(randomized=True, seed=3)
        query = make_query(1, object_ids=[2, 3, 5], cost=18.0, timestamp=1.0)
        assert (
            first.consider(query, timestamp=1.0).load_object_ids
            == second.consider(query, timestamp=1.0).load_object_ids
        )


class TestCapacityInteraction:
    def test_objects_larger_than_cache_are_never_candidates(self):
        manager, _, _ = make_manager(capacity=20.0)
        query = make_query(1, object_ids=[3], cost=100.0, timestamp=1.0)  # size 30 > 20
        decision = manager.consider(query, timestamp=1.0)
        assert decision.load_object_ids == []

    def test_eviction_planned_when_cache_full(self):
        manager, store, _ = make_manager(capacity=25.0, randomized=False)
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        manager.note_load(1, size=10.0, timestamp=0.0)
        query = make_query(1, object_ids=[2], cost=40.0, timestamp=1.0)  # object 2 size 20
        decision = manager.consider(query, timestamp=1.0)
        assert decision.load_object_ids == [2]
        assert decision.evict_object_ids == [1]

    def test_resident_objects_not_reconsidered(self):
        manager, store, _ = make_manager()
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        manager.note_load(1, size=10.0, timestamp=0.0)
        query = make_query(1, object_ids=[1], cost=100.0, timestamp=1.0)
        assert manager.consider(query, timestamp=1.0).load_object_ids == []

    def test_note_hit_refreshes_resident_objects_only(self):
        manager, store, _ = make_manager()
        store.insert(1, size=10.0, version=0, timestamp=0.0)
        manager.note_load(1, size=10.0, timestamp=0.0)
        query = make_query(1, object_ids=[1, 2], cost=1.0, timestamp=1.0)
        manager.note_hit(query)  # must not raise for the non-resident object 2

    def test_stats(self):
        manager, _, _ = make_manager(randomized=False)
        query = make_query(1, object_ids=[1], cost=50.0, timestamp=1.0)
        manager.consider(query, timestamp=1.0)
        stats = manager.stats()
        assert stats["invocations"] == 1
        assert stats["candidates_emitted"] == 1
