"""Tests for the in-memory repository (server) substrate."""

from __future__ import annotations

import pytest

from tests.conftest import make_query, make_update


class TestIngest:
    def test_ingest_bumps_version_and_size(self, repository):
        update = make_update(1, object_id=2, cost=4.0, timestamp=1.0)
        repository.ingest_update(update)
        assert repository.object_version(2) == 1
        assert repository.object_size(2) == pytest.approx(24.0)

    def test_ingest_unknown_object_raises(self, repository):
        with pytest.raises(KeyError):
            repository.ingest_update(make_update(1, object_id=99, cost=1.0, timestamp=0.0))

    def test_total_size_grows_with_updates(self, repository):
        base = repository.total_size
        repository.ingest_updates(
            [make_update(i, object_id=1, cost=2.0, timestamp=float(i)) for i in range(3)]
        )
        assert repository.total_size == pytest.approx(base + 6.0)

    def test_update_log_preserves_order(self, repository):
        updates = [make_update(i, object_id=1, cost=1.0, timestamp=float(i)) for i in range(4)]
        repository.ingest_updates(updates)
        assert [u.update_id for u in repository.update_log(1)] == [0, 1, 2, 3]


class TestUpdateShipping:
    def test_updates_since_version(self, repository):
        updates = [make_update(i, object_id=1, cost=1.0, timestamp=float(i)) for i in range(5)]
        repository.ingest_updates(updates)
        missing = repository.updates_since(1, version=2)
        assert [u.update_id for u in missing] == [2, 3, 4]

    def test_updates_since_negative_version_raises(self, repository):
        with pytest.raises(ValueError):
            repository.updates_since(1, version=-1)

    def test_outstanding_update_cost(self, repository):
        repository.ingest_updates(
            [make_update(i, object_id=1, cost=2.0, timestamp=float(i)) for i in range(3)]
        )
        assert repository.outstanding_update_cost(1, version=1) == pytest.approx(4.0)

    def test_ship_updates_returns_cost(self, repository):
        repository.ingest_updates(
            [make_update(i, object_id=1, cost=3.0, timestamp=float(i)) for i in range(2)]
        )
        updates, cost = repository.ship_updates(1, version=0)
        assert len(updates) == 2
        assert cost == pytest.approx(6.0)


class TestQueryAnswering:
    def test_answer_query_returns_cost(self, repository):
        query = make_query(1, object_ids=[1, 2], cost=9.0, timestamp=1.0)
        assert repository.answer_query(query) == pytest.approx(9.0)

    def test_answer_query_unknown_object_raises(self, repository):
        query = make_query(1, object_ids=[99], cost=9.0, timestamp=1.0)
        with pytest.raises(KeyError):
            repository.answer_query(query)


class TestObjectLoading:
    def test_load_object_returns_current_snapshot(self, repository):
        repository.ingest_update(make_update(1, object_id=3, cost=5.0, timestamp=1.0))
        snapshot, cost = repository.load_object(3, timestamp=2.0)
        assert snapshot.version == 1
        assert cost == pytest.approx(35.0)
        assert snapshot.size == pytest.approx(35.0)

    def test_stats_counters(self, repository):
        repository.ingest_update(make_update(1, object_id=1, cost=1.0, timestamp=0.0))
        repository.answer_query(make_query(1, object_ids=[1], cost=1.0, timestamp=1.0))
        stats = repository.stats()
        assert stats["updates_received"] == 1
        assert stats["queries_answered"] == 1
        assert stats["object_count"] == 5


class TestHistoryFreeRepository:
    """keep_update_log=False: same bookkeeping, no retained history."""

    @pytest.fixture
    def bare(self, small_catalog):
        from repro.repository.server import Repository

        return Repository(small_catalog, keep_update_log=False)

    def test_versions_sizes_and_stats_unaffected(self, bare):
        bare.ingest_update(make_update(1, object_id=2, cost=4.0, timestamp=1.0))
        bare.ingest_update(make_update(2, object_id=2, cost=2.0, timestamp=2.0))
        assert bare.object_version(2) == 2
        assert bare.object_size(2) == pytest.approx(26.0)
        assert bare.stats()["updates_received"] == 2
        snapshot, cost = bare.load_object(2, timestamp=3.0)
        assert snapshot.version == 2
        assert cost == pytest.approx(26.0)

    def test_no_update_objects_are_retained(self, bare):
        for index in range(50):
            bare.ingest_update(
                make_update(index, object_id=1, cost=0.5, timestamp=float(index))
            )
        assert bare._states[1].update_log == []

    def test_history_accessors_fail_loudly(self, bare):
        bare.ingest_update(make_update(1, object_id=1, cost=1.0, timestamp=1.0))
        with pytest.raises(RuntimeError, match="keep_update_log=False"):
            bare.update_log(1)
        with pytest.raises(RuntimeError, match="keep_update_log=False"):
            bare.updates_since(1, 0)
        with pytest.raises(RuntimeError, match="keep_update_log=False"):
            bare.ship_updates(1, 0)

    def test_default_repository_keeps_history(self, repository):
        assert repository.keeps_update_log
        repository.ingest_update(make_update(1, object_id=1, cost=1.0, timestamp=1.0))
        assert len(repository.update_log(1)) == 1
