"""Tests for the Benefit (exponential-smoothing greedy) baseline."""

from __future__ import annotations

import pytest

from repro.core.benefit import BenefitConfig, BenefitPolicy
from repro.network.link import NetworkLink
from repro.repository.objects import ObjectCatalog
from repro.repository.server import Repository
from tests.conftest import make_query, make_update


def make_benefit(capacity=60.0, window_size=4, alpha=0.5):
    catalog = ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0, 4: 15.0})
    repository = Repository(catalog)
    link = NetworkLink()
    policy = BenefitPolicy(
        repository, capacity, link, BenefitConfig(window_size=window_size, alpha=alpha)
    )
    return policy, repository, link


def feed_update(policy, repository, update):
    repository.ingest_update(update)
    policy.on_update(update)


class TestConfig:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            BenefitConfig(window_size=0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            BenefitConfig(alpha=1.5)


class TestQueryHandling:
    def test_queries_shipped_while_cache_empty(self):
        policy, _, link = make_benefit()
        outcome = policy.on_query(make_query(1, object_ids=[1], cost=5.0, timestamp=1.0))
        assert not outcome.answered_at_cache
        assert link.total_cost == pytest.approx(5.0)

    def test_hot_object_loaded_at_window_boundary(self):
        policy, _, _ = make_benefit(window_size=3)
        # Three expensive queries on object 1 (size 10) within one window.
        for step in range(1, 4):
            policy.on_query(make_query(step, object_ids=[1], cost=20.0, timestamp=float(step)))
        assert policy.window_index == 1
        assert policy.is_resident(1)
        assert policy.forecast_of(1) > 0

    def test_resident_hot_object_answers_queries(self):
        policy, _, link = make_benefit(window_size=3)
        for step in range(1, 4):
            policy.on_query(make_query(step, object_ids=[1], cost=20.0, timestamp=float(step)))
        before = link.total_cost
        outcome = policy.on_query(make_query(9, object_ids=[1], cost=20.0, timestamp=5.0))
        assert outcome.answered_at_cache
        assert link.total_cost == pytest.approx(before)

    def test_cold_object_never_loaded(self):
        policy, _, _ = make_benefit(window_size=3)
        for step in range(1, 7):
            policy.on_query(make_query(step, object_ids=[2], cost=0.1, timestamp=float(step)))
        assert not policy.is_resident(2)


class TestUpdateHandling:
    def test_updates_for_resident_objects_shipped_eagerly(self):
        policy, repository, link = make_benefit(window_size=3)
        for step in range(1, 4):
            policy.on_query(make_query(step, object_ids=[1], cost=20.0, timestamp=float(step)))
        assert policy.is_resident(1)
        before = link.total_by_mechanism()["update_shipping"]
        feed_update(policy, repository, make_update(1, object_id=1, cost=2.5, timestamp=5.0))
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(before + 2.5)
        assert not policy.store.get(1).stale

    def test_updates_for_non_resident_objects_not_shipped(self):
        policy, repository, link = make_benefit()
        feed_update(policy, repository, make_update(1, object_id=3, cost=2.5, timestamp=1.0))
        assert link.total_by_mechanism()["update_shipping"] == pytest.approx(0.0)

    def test_update_heavy_object_evicted_at_replan(self):
        policy, repository, _ = make_benefit(window_size=4, alpha=1.0)
        # Window 1: object 1 looks great -> loaded.
        for step in range(1, 5):
            policy.on_query(make_query(step, object_ids=[1], cost=30.0, timestamp=float(step)))
        assert policy.is_resident(1)
        # Window 2: object 1 receives heavy updates and no query traffic.
        for step in range(5, 9):
            feed_update(
                policy, repository, make_update(step, object_id=1, cost=25.0, timestamp=float(step))
            )
        assert policy.window_index == 2
        assert not policy.is_resident(1)

    def test_forecast_smoothing_uses_alpha(self):
        policy, _, _ = make_benefit(window_size=2, alpha=0.5)
        policy.on_query(make_query(1, object_ids=[1], cost=40.0, timestamp=1.0))
        policy.on_query(make_query(2, object_ids=[1], cost=40.0, timestamp=2.0))
        first_forecast = policy.forecast_of(1)
        # Quiet window: benefit of resident object 1 is zero, forecast decays.
        policy.on_query(make_query(3, object_ids=[4], cost=0.1, timestamp=3.0))
        policy.on_query(make_query(4, object_ids=[4], cost=0.1, timestamp=4.0))
        assert 0 < policy.forecast_of(1) < first_forecast


class TestWindowAccounting:
    def test_window_counter_advances_on_all_events(self):
        policy, repository, _ = make_benefit(window_size=4)
        policy.on_query(make_query(1, object_ids=[1], cost=1.0, timestamp=1.0))
        feed_update(policy, repository, make_update(1, object_id=2, cost=1.0, timestamp=2.0))
        policy.on_query(make_query(2, object_ids=[1], cost=1.0, timestamp=3.0))
        feed_update(policy, repository, make_update(2, object_id=2, cost=1.0, timestamp=4.0))
        assert policy.window_index == 1

    def test_cache_capacity_respected_at_replan(self):
        policy, _, _ = make_benefit(capacity=25.0, window_size=4)
        # Both objects 1 (10) and 2 (20) look attractive but only one fits.
        for step in range(1, 5):
            object_id = 1 if step % 2 else 2
            policy.on_query(
                make_query(step, object_ids=[object_id], cost=50.0, timestamp=float(step))
            )
        assert policy.store.used <= 25.0 + 1e-9

    def test_stats_include_window_counters(self):
        policy, _, _ = make_benefit(window_size=2)
        policy.on_query(make_query(1, object_ids=[1], cost=1.0, timestamp=1.0))
        policy.on_query(make_query(2, object_ids=[1], cost=1.0, timestamp=2.0))
        stats = policy.stats()
        assert stats["windows_completed"] == 1
        assert "positive_forecasts" in stats
