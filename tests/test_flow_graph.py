"""Unit tests for the residual flow-network data structure."""

from __future__ import annotations

import pytest

from repro.flow.graph import FlowNetwork


class TestConstruction:
    def test_add_vertex_is_idempotent(self):
        network = FlowNetwork()
        network.add_vertex("a")
        network.add_vertex("a")
        assert network.vertex_count == 1

    def test_add_edge_creates_both_endpoints(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 5.0)
        assert network.has_vertex("a")
        assert network.has_vertex("b")
        assert network.edge_count == 1

    def test_add_edge_rejects_negative_capacity(self):
        network = FlowNetwork()
        with pytest.raises(ValueError):
            network.add_edge("a", "b", -1.0)

    def test_add_edge_rejects_self_loop(self):
        network = FlowNetwork()
        with pytest.raises(ValueError):
            network.add_edge("a", "a", 1.0)

    def test_readding_edge_increases_capacity(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 5.0)
        network.add_edge("a", "b", 3.0)
        assert network.get_edge("a", "b").capacity == pytest.approx(8.0)
        assert network.edge_count == 1

    def test_set_capacity_cannot_drop_below_flow(self):
        network = FlowNetwork()
        arc = network.add_edge("a", "b", 5.0)
        arc.push(4.0)
        with pytest.raises(ValueError):
            network.set_capacity("a", "b", 3.0)
        network.set_capacity("a", "b", 10.0)
        assert arc.capacity == pytest.approx(10.0)

    def test_set_capacity_on_missing_edge_raises(self):
        network = FlowNetwork()
        with pytest.raises(KeyError):
            network.set_capacity("a", "b", 1.0)


class TestArcs:
    def test_push_updates_partner_residual(self):
        network = FlowNetwork()
        arc = network.add_edge("a", "b", 10.0)
        arc.push(4.0)
        assert arc.residual == pytest.approx(6.0)
        assert arc.partner.residual == pytest.approx(4.0)

    def test_push_beyond_residual_raises(self):
        network = FlowNetwork()
        arc = network.add_edge("a", "b", 2.0)
        with pytest.raises(ValueError):
            arc.push(3.0)

    def test_push_negative_raises(self):
        network = FlowNetwork()
        arc = network.add_edge("a", "b", 2.0)
        with pytest.raises(ValueError):
            arc.push(-0.5)

    def test_backward_arc_allows_cancelling_flow(self):
        network = FlowNetwork()
        arc = network.add_edge("a", "b", 2.0)
        arc.push(2.0)
        # Pushing on the backward arc undoes the flow.
        arc.partner.push(1.5)
        assert arc.flow == pytest.approx(0.5)


class TestFlowAccounting:
    def _diamond(self):
        """s -> a -> t and s -> b -> t, capacities 3/2/2/3."""
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "t", 2.0)
        network.add_edge("s", "b", 2.0)
        network.add_edge("b", "t", 3.0)
        return network

    def test_flow_value_counts_outgoing_flow(self):
        network = self._diamond()
        network.get_edge("s", "a").push(2.0)
        network.get_edge("a", "t").push(2.0)
        assert network.flow_value("s") == pytest.approx(2.0)

    def test_conservation_check_passes_for_valid_flow(self):
        network = self._diamond()
        network.get_edge("s", "a").push(2.0)
        network.get_edge("a", "t").push(2.0)
        network.check_flow_conservation("s", "t")

    def test_conservation_check_detects_imbalance(self):
        network = self._diamond()
        network.get_edge("s", "a").push(2.0)
        with pytest.raises(AssertionError):
            network.check_flow_conservation("s", "t")

    def test_in_and_out_flow(self):
        network = self._diamond()
        network.get_edge("s", "a").push(1.0)
        network.get_edge("a", "t").push(1.0)
        assert network.out_flow("a") == pytest.approx(1.0)
        assert network.in_flow("a") == pytest.approx(1.0)
        assert network.in_flow("t") == pytest.approx(1.0)


class TestResidualReachability:
    def test_reachable_stops_at_saturated_arcs(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("a", "t", 1.0)
        network.get_edge("s", "a").push(1.0)
        network.get_edge("a", "t").push(1.0)
        reachable = network.residual_reachable("s")
        assert reachable == {"s"}

    def test_reachable_follows_backward_arcs(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1.0)
        network.add_edge("a", "t", 2.0)
        network.add_edge("s", "b", 1.0)
        network.add_edge("b", "a", 1.0)
        network.get_edge("s", "a").push(1.0)
        network.get_edge("a", "t").push(1.0)
        reachable = network.residual_reachable("s")
        # s -> b still has residual, b -> a has residual, a -> t has residual.
        assert {"s", "b", "a", "t"} <= reachable

    def test_reachable_of_unknown_vertex_is_empty(self):
        network = FlowNetwork()
        assert network.residual_reachable("missing") == set()


class TestCopy:
    def test_copy_preserves_structure_and_flow(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        network.add_edge("a", "t", 3.0)
        network.get_edge("s", "a").push(2.0)
        clone = network.copy()
        assert clone.edge_count == network.edge_count
        assert clone.get_edge("s", "a").flow == pytest.approx(2.0)

    def test_copy_is_independent(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3.0)
        clone = network.copy()
        clone.get_edge("s", "a").push(1.0)
        assert network.get_edge("s", "a").flow == pytest.approx(0.0)
