"""Tests for the Delta middleware facade."""

from __future__ import annotations

import pytest

from repro.core.delta import Delta, DeltaConfig
from repro.core.vcover import VCoverPolicy
from repro.core.yardsticks import NoCachePolicy, ReplicaPolicy
from repro.network.cost import LinearCostModel
from repro.repository.objects import ObjectCatalog
from tests.conftest import make_query, make_update


@pytest.fixture
def catalog():
    return ObjectCatalog.from_sizes({1: 10.0, 2: 20.0, 3: 30.0, 4: 40.0})


class TestConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DeltaConfig(policy="oracle")

    def test_default_policy_is_vcover(self, catalog):
        delta = Delta(catalog)
        assert isinstance(delta.policy, VCoverPolicy)
        assert delta.config.cache_fraction == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "name,cls", [("nocache", NoCachePolicy), ("replica", ReplicaPolicy)]
    )
    def test_policy_selection_by_name(self, catalog, name, cls):
        delta = Delta(catalog, DeltaConfig(policy=name))
        assert isinstance(delta.policy, cls)

    def test_absolute_capacity_overrides_fraction(self, catalog):
        delta = Delta(catalog, DeltaConfig(cache_capacity=12.0, cache_fraction=0.9))
        assert delta.policy.store.capacity == pytest.approx(12.0)

    def test_fractional_capacity_derived_from_catalog(self, catalog):
        delta = Delta(catalog, DeltaConfig(cache_fraction=0.5))
        assert delta.policy.store.capacity == pytest.approx(50.0)


class TestOperation:
    def test_update_then_query_round_trip(self, catalog):
        delta = Delta(catalog, DeltaConfig(policy="vcover"))
        delta.ingest_update(make_update(1, object_id=1, cost=2.0, timestamp=1.0))
        outcome = delta.submit_query(make_query(1, object_ids=[1], cost=5.0, timestamp=2.0))
        assert outcome.query_id == 1
        report = delta.traffic_report()
        assert report["total"] == pytest.approx(outcome.total_cost)

    def test_traffic_report_breakdown_keys(self, catalog):
        delta = Delta(catalog)
        delta.submit_query(make_query(1, object_ids=[1], cost=5.0, timestamp=1.0))
        report = delta.traffic_report()
        assert {"total", "query_shipping", "update_shipping", "object_loading"} <= set(report)

    def test_cache_report_counts_events(self, catalog):
        delta = Delta(catalog)
        delta.ingest_update(make_update(1, object_id=2, cost=1.0, timestamp=1.0))
        delta.submit_query(make_query(1, object_ids=[2], cost=1.0, timestamp=2.0))
        report = delta.cache_report()
        assert report["queries_processed"] == 1
        assert report["updates_processed"] == 1

    def test_custom_cost_model_scales_traffic(self, catalog):
        delta = Delta(catalog, cost_model=LinearCostModel(factor=2.0))
        delta.submit_query(make_query(1, object_ids=[1], cost=5.0, timestamp=1.0))
        assert delta.traffic_report()["total"] == pytest.approx(10.0)

    def test_repository_receives_updates(self, catalog):
        delta = Delta(catalog)
        delta.ingest_update(make_update(1, object_id=3, cost=7.0, timestamp=1.0))
        assert delta.repository.object_version(3) == 1
        assert delta.repository.object_size(3) == pytest.approx(37.0)

    def test_replica_deployment_is_always_current(self, catalog):
        delta = Delta(catalog, DeltaConfig(policy="replica"))
        delta.ingest_update(make_update(1, object_id=1, cost=2.0, timestamp=1.0))
        outcome = delta.submit_query(make_query(1, object_ids=[1], cost=5.0, timestamp=2.0))
        assert outcome.answered_at_cache
        assert delta.traffic_report()["update_shipping"] == pytest.approx(2.0)
