"""Tests for the incremental (warm-started) max-flow / vertex-cover solver."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.incremental import IncrementalMaxFlow
from repro.flow.vertex_cover import brute_force_min_cover, min_weight_vertex_cover


class TestBasics:
    def test_single_edge_cover(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 10.0)
        solver.add_right("u1", 3.0)
        solver.add_edge("q1", "u1")
        cover = solver.compute_cover()
        assert cover.right_in_cover == frozenset({"u1"})
        assert cover.weight == pytest.approx(3.0)

    def test_edge_requires_registered_vertices(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 1.0)
        with pytest.raises(KeyError):
            solver.add_edge("q1", "u1")

    def test_negative_weight_rejected(self):
        solver = IncrementalMaxFlow()
        with pytest.raises(ValueError):
            solver.add_left("q1", -1.0)

    def test_weight_increase_allowed_decrease_rejected(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 5.0)
        solver.add_left("q1", 8.0)
        with pytest.raises(ValueError):
            solver.add_left("q1", 2.0)

    def test_duplicate_edge_is_idempotent(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 4.0)
        solver.add_right("u1", 10.0)
        solver.add_edge("q1", "u1")
        solver.add_edge("q1", "u1")
        cover = solver.compute_cover()
        assert cover.weight == pytest.approx(4.0)

    def test_has_left_and_right_track_retirement(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 4.0)
        solver.add_right("u1", 1.0)
        assert solver.has_left("q1")
        assert solver.has_right("u1")
        solver.retire(left=["q1"], right=["u1"])
        assert not solver.has_left("q1")
        assert not solver.has_right("u1")


class TestIncrementalEquivalence:
    def test_growing_graph_matches_from_scratch(self):
        """Covers computed incrementally match solving each snapshot fresh."""
        rng = np.random.default_rng(5)
        solver = IncrementalMaxFlow()
        for step in range(20):
            query = f"q{step}"
            solver.add_left(query, float(rng.integers(1, 20)))
            for _ in range(int(rng.integers(1, 4))):
                update = f"u{int(rng.integers(0, 10))}"
                if not solver.has_right(update):
                    solver.add_right(update, float(rng.integers(1, 20)))
                solver.add_edge(query, update)
            incremental = solver.compute_cover()
            fresh = min_weight_vertex_cover(solver.to_instance(active_only=True))
            assert incremental.weight == pytest.approx(fresh.weight)

    def test_total_augmentations_counted(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 1.0)
        solver.add_right("u1", 2.0)
        solver.add_edge("q1", "u1")
        solver.compute_cover()
        solver.compute_cover()
        assert solver.augmentation_count == 2


class TestRetirement:
    def _two_phase_solver(self):
        solver = IncrementalMaxFlow()
        solver.add_left("q1", 10.0)
        solver.add_right("u1", 3.0)
        solver.add_edge("q1", "u1")
        return solver

    def test_retired_updates_leave_active_cover(self):
        solver = self._two_phase_solver()
        first = solver.compute_cover()
        assert first.right_in_cover == frozenset({"u1"})
        solver.retire(right=["u1"])
        second = solver.compute_cover()
        assert "u1" not in second.right_in_cover
        assert second.weight == pytest.approx(0.0)

    def test_consumed_weight_persists_after_retirement(self):
        """A query's weight spent justifying earlier updates stays spent.

        q1 (weight 10) justified shipping u1 (3).  A later update u2 (9)
        interacting with q1 should NOT be shipped: only 7 units of q1's weight
        remain unspent, which is less than u2's cost, so the cover picks q1.
        """
        solver = self._two_phase_solver()
        solver.compute_cover()
        solver.retire(right=["u1"])
        solver.add_right("u2", 9.0)
        solver.add_edge("q1", "u2")
        cover = solver.compute_cover()
        assert cover.right_in_cover == frozenset()
        assert ("q1") in {v for v in cover.left_in_cover}

    def test_cheap_followup_update_still_shipped(self):
        solver = self._two_phase_solver()
        solver.compute_cover()
        solver.retire(right=["u1"])
        solver.add_right("u2", 2.0)
        solver.add_edge("q1", "u2")
        cover = solver.compute_cover()
        assert cover.right_in_cover == frozenset({"u2"})


class TestCompaction:
    def test_compact_preserves_active_decisions(self):
        rng = np.random.default_rng(11)
        solver = IncrementalMaxFlow()
        reference = IncrementalMaxFlow()
        for step in range(30):
            query = f"q{step}"
            weight = float(rng.integers(1, 15))
            solver.add_left(query, weight)
            reference.add_left(query, weight)
            update = f"u{step}"
            update_weight = float(rng.integers(1, 15))
            solver.add_right(update, update_weight)
            reference.add_right(update, update_weight)
            solver.add_edge(query, update)
            reference.add_edge(query, update)
            cover_a = solver.compute_cover()
            cover_b = reference.compute_cover()
            assert cover_a.weight == pytest.approx(cover_b.weight)
            retire_right = list(cover_a.right_in_cover)
            retire_left = [
                vertex for vertex in (f"q{s}" for s in range(step + 1))
                if solver.has_left(vertex) and vertex not in cover_a.left_in_cover
            ]
            solver.retire(left=retire_left, right=retire_right)
            reference.retire(left=retire_left, right=retire_right)
            if step % 5 == 4:
                solver.compact()

    def test_compact_shrinks_network(self):
        solver = IncrementalMaxFlow()
        for step in range(10):
            solver.add_left(f"q{step}", 5.0)
            solver.add_right(f"u{step}", 1.0)
            solver.add_edge(f"q{step}", f"u{step}")
        solver.compute_cover()
        solver.retire(
            left=[f"q{step}" for step in range(10)],
            right=[f"u{step}" for step in range(10)],
        )
        before = solver.network.vertex_count
        solver.compact()
        assert solver.network.vertex_count < before
        assert solver.retired_count == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(min_value=1, max_value=12))
def test_property_incremental_matches_oracle(seed, steps):
    """At every step the incremental cover weight equals the exact optimum."""
    rng = np.random.default_rng(seed)
    solver = IncrementalMaxFlow()
    for step in range(steps):
        query = f"q{step}"
        solver.add_left(query, float(rng.integers(1, 12)))
        for _ in range(int(rng.integers(1, 3))):
            update = f"u{int(rng.integers(0, 6))}"
            if not solver.has_right(update):
                solver.add_right(update, float(rng.integers(1, 12)))
            solver.add_edge(query, update)
        cover = solver.compute_cover()
        oracle = brute_force_min_cover(solver.to_instance(active_only=True))
        assert cover.weight == pytest.approx(oracle.weight)


class TestCompactionDeterminism:
    """compact() must not leak set iteration order into the rebuilt network.

    Arc insertion order steers the augmenting-path search, and string
    vertices hash differently across processes under hash randomisation --
    so the regression is only visible across interpreters with different
    ``PYTHONHASHSEED``.  (Caught by lint rule DET003.)
    """

    _SCRIPT = textwrap.dedent(
        """
        from repro.flow.incremental import IncrementalMaxFlow

        solver = IncrementalMaxFlow()
        for i in range(12):
            solver.add_left(f"q{i}", 3.0 + (i % 4))
            solver.add_right(f"u{i}", 1.0 + (i % 3))
        for i in range(12):
            solver.add_edge(f"q{i}", f"u{i}")
            solver.add_edge(f"q{i}", f"u{(i + 1) % 12}")
        solver.compute_cover()
        solver.retire(
            left=[f"q{i}" for i in range(0, 12, 2)],
            right=[f"u{i}" for i in range(0, 12, 3)],
        )
        solver.compact()
        cover = solver.compute_cover()
        print(list(solver.network.adjacency()))
        print(sorted(cover.left_in_cover), sorted(cover.right_in_cover))
        print(round(cover.weight, 9), round(cover.flow_value, 9))
        """
    )

    def _run(self, hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        result = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        return result.stdout

    def test_compacted_network_identical_across_hash_seeds(self):
        assert self._run("1") == self._run("4242")
